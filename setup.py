"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs cannot build. ``pip install -e . --no-build-isolation``
falls back to ``setup.py develop`` through this shim.
"""

from setuptools import setup

setup()
