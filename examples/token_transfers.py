#!/usr/bin/env python
"""Token economy under contention: hot wallets and the supply counter.

A second smart-contract workload on top of the Nezha pipeline: an
ERC20-style token where Zipfian skew concentrates transfers on a few hot
wallets (think exchanges) and every ``mint`` touches the global supply
counter — a worst-case hot address.  Shows how each concurrency-control
scheme copes as the mint share of the workload grows.

Run:  python examples/token_transfers.py
"""

from __future__ import annotations

from repro.bench import make_scheme, run_scheme
from repro.core import NezhaScheduler
from repro.node import Committer, ConcurrentExecutor
from repro.state import StateDB
from repro.vm.contracts import register_token
from repro.vm.native import ContractRegistry
from repro.workload import TokenConfig, TokenWorkload, flatten_blocks, initial_token_state


def contention_sweep() -> None:
    print("=== Scheme behaviour on the token workload ===")
    header = (
        f"{'skew':>5} {'scheme':<16} {'committed':>9} {'aborted':>7} "
        f"{'groups':>6} {'latency (ms)':>12}"
    )
    print(header)
    print("-" * len(header))
    for skew in (0.2, 0.8, 1.2):
        config = TokenConfig(holder_count=1_000, skew=skew, seed=11)
        txns = flatten_blocks(TokenWorkload(config).generate_blocks(4, 50))
        for scheme_name in ("occ", "pcc", "nezha"):
            run = run_scheme(make_scheme(scheme_name), txns)
            print(
                f"{skew:>5} {scheme_name:<16} {run.schedule.committed_count:>9} "
                f"{run.schedule.aborted_count:>7} {len(run.schedule.groups):>6} "
                f"{run.total_seconds * 1000:>12.2f}"
            )
        print()


def end_to_end() -> None:
    print("=== One epoch end-to-end with conservation checking ===")
    config = TokenConfig(holder_count=500, skew=0.9, seed=3)
    registry = ContractRegistry()
    register_token(registry)

    state = StateDB()
    state.seed(initial_token_state(config))
    supply_before = state.get("sup:total")
    holders_before = sum(
        value for address, value in state.items() if address.startswith("bal:")
    )

    txns = flatten_blocks(TokenWorkload(config).generate_blocks(3, 60))
    executor = ConcurrentExecutor(registry=registry)
    batch = executor.execute_batch(txns, state.snapshot().get)
    result = NezhaScheduler().schedule(batch.transactions())
    Committer().commit(result.schedule, batch.write_values(), state)

    supply_after = state.get("sup:total")
    holders_after = sum(
        value for address, value in state.items() if address.startswith("bal:")
    )
    minted = holders_after - holders_before
    print(f"  committed {result.schedule.committed_count} of {len(txns)} "
          f"({result.schedule.aborted_count} aborted by concurrency control, "
          f"{batch.failed_count} reverted)")
    print(f"  token conservation: holder balances grew by {minted} "
          f"(mints), supply counter grew by {supply_after - supply_before}")
    assert minted == supply_after - supply_before, "conservation violated!"
    print("  supply counter matches the sum of balances: no value created "
          "or destroyed by concurrent commits")


def main() -> None:
    contention_sweep()
    end_to_end()


if __name__ == "__main__":
    main()
