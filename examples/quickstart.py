#!/usr/bin/env python
"""Quickstart: schedule the paper's six-transaction example with Nezha.

Walks through the exact example of Sections IV-B and IV-C (Table III,
Figures 4, 6, and 7): builds the address-based conflict graph, divides
sorting ranks, sorts transactions, and prints the resulting commit
schedule — including the unserializable transaction T1 that Nezha
detects and aborts without any cycle detection.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import NezhaScheduler, make_transaction
from repro.baselines import CGScheduler, OCCScheduler
from repro.core import build_acg, divide_ranks


def paper_example():
    """Table III: the addresses read and written by T1..T6."""
    return [
        make_transaction(1, reads=["A2"], writes=["A1"]),
        make_transaction(2, reads=["A3"], writes=["A2"]),
        make_transaction(3, reads=["A4"], writes=["A2"]),
        make_transaction(4, reads=["A4"], writes=["A3"]),
        make_transaction(5, reads=["A4"], writes=["A4"]),
        make_transaction(6, reads=["A1"], writes=["A3"]),
    ]


def main() -> None:
    transactions = paper_example()

    print("=== Step 1: address-based conflict graph (Figure 4) ===")
    acg = build_acg(transactions)
    for address in acg.addresses:
        print(f"  RW_{address}: {acg.rw_lists[address]!r}")
    print(f"  address dependencies: {sorted(acg.iter_edges())}")

    print("\n=== Step 2: sorting rank division (Figure 6) ===")
    rank_order = divide_ranks(acg)
    for rank, address in enumerate(rank_order, start=1):
        print(f"  rank {rank}: {address}")

    print("\n=== Step 3: hierarchical sorting (Figure 7) ===")
    result = NezhaScheduler().schedule(transactions)
    schedule = result.schedule
    for group in schedule.groups:
        members = ", ".join(f"T{t}" for t in group.txids)
        print(f"  sequence {group.sequence}: commit concurrently [{members}]")
    print(f"  aborted (unserializable): {[f'T{t}' for t in schedule.aborted]}")
    print(f"  commit concurrency: {schedule.mean_group_size:.2f} txns/group")

    print("\n=== Comparison with the baselines ===")
    cg = CGScheduler().schedule(transactions)
    occ = OCCScheduler().schedule(transactions)
    print(f"  CG  : serial order {cg.schedule.committed}, aborted {cg.schedule.aborted}, "
          f"{cg.cycle_count} cycles enumerated")
    print(f"  OCC : serial order {occ.schedule.committed}, aborted {occ.schedule.aborted}")
    print(f"  Nezha spent {result.timings.total * 1000:.2f} ms "
          f"(construction {result.timings.graph_construction * 1000:.2f} ms, "
          f"rank {result.timings.rank_division * 1000:.2f} ms, "
          f"sorting {result.timings.transaction_sorting * 1000:.2f} ms)")


if __name__ == "__main__":
    main()
