#!/usr/bin/env python
"""SmallBank on the SVM: contract execution with read/write logging.

Demonstrates the execution layer the paper builds on top of OHIE:

1. assembles the SmallBank contract from SVM assembly;
2. runs a handful of banking transactions through the bytecode
   interpreter *and* the native twin, showing identical receipts;
3. speculatively executes a contended batch against one state snapshot,
   schedules it with Nezha, commits, and verifies the final MPT state
   root against a serial replay.

Run:  python examples/smallbank_demo.py
"""

from __future__ import annotations

from repro.core import NezhaScheduler
from repro.node import Committer, ConcurrentExecutor
from repro.state import StateDB
from repro.txn import Transaction
from repro.vm import ExecutionContext, LoggedStorage, SVM, disassemble
from repro.vm.contracts import (
    NATIVE_SMALLBANK,
    compile_smallbank,
    default_registry,
    smallbank_key_renderer,
)
from repro.workload import (
    SmallBankConfig,
    SmallBankWorkload,
    flatten_blocks,
    initial_state,
)


def show_bytecode() -> None:
    print("=== SmallBank 'sendPayment' bytecode (SVM assembly) ===")
    code = compile_smallbank()["sendPayment"]
    for line in disassemble(code)[:12]:
        print(f"  {line}")
    print(f"  ... {len(code)} bytes total")


def run_one_call() -> None:
    print("\n=== One call, bytecode vs native ===")
    state = {"chk:000001": 500, "chk:000002": 100}
    code = compile_smallbank()["sendPayment"]

    vm_storage = LoggedStorage(lambda a: state.get(a, 0))
    receipt_vm = SVM().execute(
        code,
        ExecutionContext(
            storage=vm_storage, args=(1, 2, 150), key_renderer=smallbank_key_renderer
        ),
    )
    native_storage = LoggedStorage(lambda a: state.get(a, 0))
    receipt_native = NATIVE_SMALLBANK.call("sendPayment", native_storage, (1, 2, 150))

    print(f"  VM     : ok={receipt_vm.success} gas={receipt_vm.gas_used} "
          f"writes={dict(receipt_vm.rwset.writes)}")
    print(f"  native : ok={receipt_native.success} "
          f"writes={dict(receipt_native.rwset.writes)}")
    assert dict(receipt_vm.rwset.writes) == dict(receipt_native.rwset.writes)


def run_contended_epoch() -> None:
    print("\n=== A contended epoch end-to-end ===")
    config = SmallBankConfig(account_count=200, skew=0.8, seed=7)
    state = StateDB()
    state.seed(initial_state(config))
    snapshot_root = state.root

    workload = SmallBankWorkload(config)
    transactions = flatten_blocks(workload.generate_blocks(4, 50))
    print(f"  generated {len(transactions)} transactions over "
          f"{config.account_count} accounts (skew {config.skew})")

    executor = ConcurrentExecutor(registry=default_registry(), use_vm=True)
    snapshot = state.snapshot()
    batch = executor.execute_batch(transactions, snapshot.get, snapshot_root)
    print(f"  speculative execution: {len(batch.successful())} ok, "
          f"{batch.failed_count} reverted (overdrafts)")

    result = NezhaScheduler().schedule(batch.transactions())
    schedule = result.schedule
    print(f"  nezha: {schedule.committed_count} committed in "
          f"{len(schedule.groups)} concurrent groups, "
          f"{schedule.aborted_count} aborted, "
          f"{len(schedule.reordered)} rescued by reordering, "
          f"{result.timings.total * 1000:.1f} ms")

    report = Committer().commit(schedule, batch.write_values(), state)
    print(f"  committed; new state root {report.state_root.hex()[:16]}...")

    # Verify by *re-executing* the committed transactions one at a time,
    # serially, against live state: the roots must agree (serializability).
    replay = StateDB()
    replay.seed(initial_state(config))
    by_id = {t.txid: t for t in transactions}
    for txid in schedule.committed:
        txn = by_id[txid]
        storage = LoggedStorage(replay.get)
        receipt = NATIVE_SMALLBANK.call(txn.function, storage, tuple(txn.args))
        assert receipt.success, f"T{txid} unexpectedly reverted in serial replay"
        for address, value in receipt.rwset.writes.items():
            replay.set(address, value)
    replay.commit()
    assert replay.root == report.state_root
    print("  serial re-execution reproduces the same root: the schedule is "
          "equivalent to a serial execution")


def main() -> None:
    show_bytecode()
    run_one_call()
    run_contended_epoch()


if __name__ == "__main__":
    main()
