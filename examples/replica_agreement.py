#!/usr/bin/env python
"""Replica agreement: determinism across independently-processing nodes.

The DAG-blockchain design has no post-execution voting — every node must
derive bit-identical state from the same concurrent blocks.  This demo
runs three replicas behind links with different jitter, shows them
agreeing on every epoch's state root, then deliberately breaks one
replica (it runs OCC instead of Nezha) and shows the divergence being
caught immediately.

Run:  python examples/replica_agreement.py
"""

from __future__ import annotations

from repro.baselines import OCCScheduler
from repro.core import NezhaScheduler
from repro.net import ReplicaNetwork, ReplicaNetworkConfig

CONFIG = ReplicaNetworkConfig(
    replica_count=3,
    chain_count=3,
    block_size=30,
    account_count=500,
    skew=0.7,
    seed=12,
)


def healthy_fleet() -> None:
    print("=== Three replicas, identical scheme (Nezha) ===")
    network = ReplicaNetwork(NezhaScheduler, CONFIG)
    for _ in range(3):
        agreement = network.run_epoch()
        deliveries = ", ".join(f"{t * 1000:.1f}ms" for t in agreement.delivery_times)
        print(
            f"  epoch {agreement.epoch_index}: delivered at [{deliveries}] -> "
            f"root {agreement.state_roots[0].hex()[:12]}..., "
            f"{agreement.committed[0]} committed, agreed={agreement.agreed}"
        )
    assert network.all_agreed
    print("  every replica derived the same state root despite different "
          "delivery times\n")


def rogue_replica() -> None:
    print("=== One replica silently runs a different scheme (OCC) ===")
    network = ReplicaNetwork(NezhaScheduler, CONFIG)
    rogue = OCCScheduler()
    network.replicas[2].scheduler = rogue
    network.replicas[2].pipeline.scheduler = rogue
    for agreement in network.run_epochs(3):
        roots = [root.hex()[:10] for root in agreement.state_roots]
        print(
            f"  epoch {agreement.epoch_index}: roots {roots} "
            f"committed {agreement.committed} agreed={agreement.agreed}"
        )
    print("  divergence detected: concurrency control is consensus-critical — "
          "a node with a different scheme forks itself off the network")


def main() -> None:
    healthy_fleet()
    rogue_replica()


if __name__ == "__main__":
    main()
