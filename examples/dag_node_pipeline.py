#!/usr/bin/env python
"""A full OHIE network: miners, a client, and a measuring full node.

Reproduces the paper's deployment in miniature: 12 miners propose blocks
onto parallel chains (the mined hash picks the chain), a client submits
SmallBank transactions, and a full node runs the four-phase pipeline —
validation, concurrent speculative execution, Nezha concurrency control,
and group-concurrent commitment — printing per-epoch statistics and the
evolving MPT state roots.

Run:  python examples/dag_node_pipeline.py
"""

from __future__ import annotations

from repro.core import NezhaScheduler
from repro.dag import EpochCoordinator, Mempool, ParallelChains, PoWParams
from repro.node import FullNode, PipelineConfig
from repro.state import StateDB
from repro.storage import MemStore
from repro.vm.contracts import default_registry
from repro.workload import SmallBankConfig, SmallBankWorkload, initial_state

CHAINS = 6
BLOCK_SIZE = 50
EPOCHS = 5


def main() -> None:
    workload_config = SmallBankConfig(account_count=2_000, skew=0.6, seed=2024)
    pow_params = PoWParams(difficulty_bits=8)

    # The measuring full node (the paper's "full node to synchronize the
    # entire system state").
    state = StateDB(store=MemStore())
    genesis_root = state.seed(initial_state(workload_config))
    node = FullNode(
        chains=ParallelChains(chain_count=CHAINS, pow_params=pow_params),
        state=state,
        scheduler=NezhaScheduler(),
        registry=default_registry(),
        config=PipelineConfig(workers=0),
    )
    print(f"genesis state root: {genesis_root.hex()[:16]}...")

    # Miner-side chain view plus the shared mempool fed by the client.
    miner_chains = ParallelChains(chain_count=CHAINS, pow_params=pow_params)
    coordinator = EpochCoordinator(
        chains=miner_chains,
        miners=[f"miner-{i:02d}" for i in range(12)],
        block_size=BLOCK_SIZE,
    )
    mempool = Mempool()
    client = SmallBankWorkload(workload_config)

    header = (
        f"{'epoch':>5} {'blocks':>6} {'txns':>5} {'committed':>9} "
        f"{'aborted':>7} {'reverted':>8} {'groups':>6} {'cc (ms)':>8} "
        f"{'total (ms)':>10}  state root"
    )
    print(header)
    print("-" * len(header))
    for epoch_index in range(EPOCHS):
        mempool.submit_many(client.generate(CHAINS * BLOCK_SIZE))
        blocks = coordinator.mine_epoch(mempool, state_root=node.state_root)
        report = node.receive_epoch(blocks)
        print(
            f"{epoch_index:>5} {len(blocks):>6} {report.input_transactions:>5} "
            f"{report.committed:>9} {report.aborted:>7} "
            f"{report.failed_simulation:>8} {report.commit_group_count:>6} "
            f"{report.phases.concurrency_control * 1000:>8.1f} "
            f"{report.phases.total * 1000:>10.1f}  "
            f"{report.state_root.hex()[:16]}..."
        )

    total = node.committed_total
    print(f"\n{total} transactions committed over {EPOCHS} epochs")
    print(f"mean commit concurrency: "
          f"{sum(r.commit_concurrency for r in node.reports) / EPOCHS:.1f} "
          f"transactions per commit group")
    print(f"mined blocks accepted by the full node: {node.chains.total_blocks()}")


if __name__ == "__main__":
    main()
