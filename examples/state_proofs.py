#!/usr/bin/env python
"""Authenticated state: Merkle proofs, light clients, and pruning.

The state substrate is more than a map — it is *authenticated*: every
epoch's state root commits to every account balance.  This demo shows
the three things that buys you:

1. a full node hands a light client a balance plus a Merkle proof; the
   client verifies it against just the 32-byte state root;
2. tampered proofs and forged values are rejected;
3. a long-running node prunes historical trie nodes, keeping recent
   snapshots readable while reclaiming the rest.

Run:  python examples/state_proofs.py
"""

from __future__ import annotations

from repro.core import NezhaScheduler
from repro.errors import ProofError, TrieError
from repro.node import Committer, ConcurrentExecutor
from repro.state import StateDB, decode_int, prune, verify_proof
from repro.state.mpt import MerklePatriciaTrie
from repro.vm.contracts import default_registry
from repro.workload import SmallBankConfig, SmallBankWorkload, flatten_blocks, initial_state

CONFIG = SmallBankConfig(account_count=500, skew=0.4, seed=21)


def run_epochs(state: StateDB, epochs: int) -> list[bytes]:
    """Advance the chain state a few epochs; returns the roots."""
    workload = SmallBankWorkload(CONFIG)
    executor = ConcurrentExecutor(registry=default_registry())
    roots = []
    for _ in range(epochs):
        transactions = flatten_blocks(workload.generate_blocks(2, 50))
        batch = executor.execute_batch(transactions, state.snapshot().get)
        result = NezhaScheduler().schedule(batch.transactions())
        report = Committer().commit(result.schedule, batch.write_values(), state)
        roots.append(report.state_root)
    return roots


def light_client_demo(state: StateDB, root: bytes) -> None:
    print("=== Light-client balance verification ===")
    trie = MerklePatriciaTrie(store=state._nodes, root=root)
    address = b"chk:000007"
    proof = trie.prove(address)
    print(f"  full node: balance of {address.decode()} with a "
          f"{len(proof)}-node proof ({sum(len(n) for n in proof)} bytes)")

    # The light client holds ONLY the root.
    value = verify_proof(root, address, proof)
    print(f"  light client: verified balance = {decode_int(value)} "
          f"against root {root.hex()[:12]}...")

    # Exclusion proof: an account that does not exist.
    ghost = b"chk:999999"
    assert verify_proof(root, ghost, trie.prove(ghost)) is None
    print(f"  light client: verified {ghost.decode()} does NOT exist")

    # Forged proofs fail loudly.
    try:
        verify_proof(root, address, [bytes(reversed(n)) for n in proof])
    except ProofError:
        print("  tampered proof: REJECTED (hash mismatch)")
    try:
        verify_proof(b"\x13" * 32, address, proof)
    except ProofError:
        print("  wrong root:     REJECTED")


def pruning_demo(state: StateDB, roots: list[bytes]) -> None:
    print("\n=== History pruning ===")
    nodes_before = len(state._nodes)
    report = prune(state._nodes, roots[-2:])  # keep the last two epochs
    print(f"  node store: {nodes_before} -> {report.kept_nodes} nodes "
          f"({report.removed_nodes} pruned, keeping 2 roots)")

    recent = state.snapshot(roots[-1])
    print(f"  recent snapshot still readable: chk:000007 = "
          f"{recent.get('chk:000007')}")
    try:
        state.snapshot(roots[0]).get("chk:000007")
    except TrieError:
        print("  pruned snapshot correctly unreadable (nodes reclaimed)")


def main() -> None:
    state = StateDB()
    state.seed(initial_state(CONFIG))
    roots = run_epochs(state, epochs=4)
    print(f"processed 4 epochs; roots: {[r.hex()[:10] for r in roots]}\n")
    light_client_demo(state, roots[-1])
    pruning_demo(state, roots)


if __name__ == "__main__":
    main()
