#!/usr/bin/env python
"""Side-by-side comparison of every concurrency-control scheme.

Runs Serial, OCC, CG, and Nezha over identical SmallBank epochs at three
contention levels, printing what each one commits, aborts, and costs —
a miniature of the paper's whole evaluation in one table.

Run:  python examples/scheme_comparison.py
"""

from __future__ import annotations

from repro.bench import SCHEMES, make_scheme, run_scheme, smallbank_epoch
from repro.core import check_invariants

SKEWS = (0.0, 0.6, 1.0)
OMEGA = 4
BLOCK_SIZE = 60


def main() -> None:
    header = (
        f"{'skew':>5} {'scheme':<16} {'committed':>9} {'aborted':>7} "
        f"{'abort %':>8} {'groups':>6} {'latency (ms)':>12}  serializable?"
    )
    print(header)
    print("-" * len(header))
    for skew in SKEWS:
        transactions = smallbank_epoch(OMEGA, BLOCK_SIZE, skew=skew, seed=99)
        for scheme_name in SCHEMES:
            run = run_scheme(make_scheme(scheme_name, cycle_budget=200_000), transactions)
            if run.failed:
                print(f"{skew:>5} {scheme_name:<16} "
                      f"{'FAILED (cycle budget, the paper reports OOM)':>40}")
                continue
            schedule = run.schedule
            if scheme_name == "serial":
                # Serial applies everything in order; it is trivially a
                # serial execution, so skip the invariant check.
                verdict = "serial by construction"
            else:
                sequences = (
                    schedule.sequences()
                    if scheme_name.startswith("nezha")
                    else {t: i + 1 for i, t in enumerate(schedule.committed)}
                )
                problems = check_invariants(
                    transactions, sequences, set(schedule.aborted)
                )
                verdict = "yes" if not problems else f"NO ({len(problems)} issues!)"
            print(
                f"{skew:>5} {scheme_name:<16} {schedule.committed_count:>9} "
                f"{schedule.aborted_count:>7} {100 * schedule.abort_rate:>7.1f}% "
                f"{len(schedule.groups):>6} {run.total_seconds * 1000:>12.2f}  "
                f"{verdict}"
            )
        print()


if __name__ == "__main__":
    main()
