"""Figure 9 — concurrency-control + commitment latency, Nezha vs CG.

Paper setting: skew in {0.2, 0.4, 0.6, 0.8}, block concurrency 2-12,
block size 200.  The paper's findings: CG latency grows much faster than
Nezha's, exceeds 10 s at skew 0.6 / omega 12, and dies of OOM at skew 0.8
beyond omega 4, while Nezha stays under 100 ms throughout.

Our CG implementation fails by exhausting its Johnson cycle budget (the
OOM analogue, reported as FAIL below).  The default block size here is
100 (half the paper's) so the CG cells that the paper could still measure
complete in CI-friendly time; the crossover shape is identical — set
``REPRO_BENCH_SCALE=2`` for paper scale.
"""

from __future__ import annotations

from repro.analysis import Summary
from repro.bench import (
    make_scheme,
    print_table,
    render_series,
    render_table,
    run_scheme,
    scaled,
    smallbank_epoch,
)

SKEWS = (0.2, 0.4, 0.6, 0.8)
CONCURRENCIES = (2, 4, 8, 12)
BLOCK_SIZE = 100
CG_CYCLE_BUDGET = 150_000


def measure_cell(scheme_name, omega, skew, block_size):
    transactions = smallbank_epoch(omega, block_size, skew=skew, seed=42)
    run = run_scheme(
        make_scheme(scheme_name, cycle_budget=CG_CYCLE_BUDGET), transactions
    )
    return run


def sweep():
    block_size = scaled(BLOCK_SIZE)
    rows = []
    failures = []
    for skew in SKEWS:
        for omega in CONCURRENCIES:
            nezha = measure_cell("nezha", omega, skew, block_size)
            cg = measure_cell("cg", omega, skew, block_size)
            cg_cell = "FAIL(budget)" if cg.failed else f"{cg.total_seconds * 1000:,.1f}"
            if cg.failed:
                failures.append((skew, omega))
            rows.append(
                [
                    skew,
                    omega,
                    f"{nezha.total_seconds * 1000:.1f}",
                    cg_cell,
                    f"{nezha.abort_rate:.3f}",
                    "-" if cg.failed else f"{cg.abort_rate:.3f}",
                ]
            )
    return rows, failures


def test_fig9_cc_latency(benchmark, report_table):
    rows, failures = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Figure 9: CC + commitment latency (ms) vs block concurrency",
        ["skew", "omega", "nezha (ms)", "cg (ms)", "nezha aborts", "cg aborts"],
        rows,
        note="FAIL(budget) reproduces the paper's CG out-of-memory failures",
    )
    report_table("fig9_cc_latency", table)
    for skew in SKEWS:
        cells = [row for row in rows if row[0] == skew]
        chart = render_series(
            f"Figure 9 (skew={skew}): CC+commit latency (ms) vs omega",
            [row[1] for row in cells],
            {
                "nezha": [float(row[2]) for row in cells],
                "cg": [
                    None if row[3] == "FAIL(budget)" else float(row[3].replace(",", ""))
                    for row in cells
                ],
            },
            y_label="ms (cg gaps = FAIL)",
        )
        report_table(f"fig9_chart_skew{skew}", chart)
    print_table("Figure 9 failures (CG)", ["skew", "omega"], failures or [["-", "-"]])

    nezha_ms = [float(r[2]) for r in rows]
    # Nezha stays fast everywhere (paper: < 100 ms at full scale).
    assert max(nezha_ms) < 1_000
    # CG is slower than Nezha wherever batches are non-trivial (the paper
    # also shows a negligible gap at small omega).
    for row in rows:
        if row[3] != "FAIL(budget)" and float(row[1]) >= 8:
            assert float(row[3].replace(",", "")) > float(row[2])
    # High contention kills CG somewhere (the paper's OOM region).
    assert failures, "expected CG to blow its cycle budget under high skew"


def test_fig9_nezha_flat_in_skew(benchmark):
    """Nezha's latency moves little as skew rises (paper's observation)."""

    def measure():
        times = {}
        for skew in (0.2, 0.8):
            transactions = smallbank_epoch(4, scaled(BLOCK_SIZE), skew=skew, seed=3)
            runs = [
                run_scheme(make_scheme("nezha"), transactions) for _ in range(3)
            ]
            times[skew] = Summary.of([r.total_seconds for r in runs]).mean
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert times[0.8] < times[0.2] * 5
