"""Ablation — Algorithm 1's cycle-breaking policy.

The paper prioritises the address with the most dependencies (maximum
out-degree) when cycles force a choice, arguing its sorting result
affects the most other addresses.  This ablation compares that policy
against breaking ties by address id alone and by unit count, measuring
abort rate and rank-division latency under contention.
"""

from __future__ import annotations

from repro.bench import render_table, scaled, smallbank_epoch
from repro.core import NezhaConfig, NezhaScheduler, RankPolicy

SKEWS = (0.7, 0.9, 1.1)
OMEGA = 2
BLOCK_SIZE = 150
ROUNDS = 3


def sweep():
    rows = []
    means: dict[RankPolicy, list[float]] = {policy: [] for policy in RankPolicy}
    for skew in SKEWS:
        for policy in RankPolicy:
            scheduler = NezhaScheduler(NezhaConfig(rank_policy=policy))
            rates = []
            latency = []
            for round_no in range(ROUNDS):
                transactions = smallbank_epoch(
                    OMEGA, scaled(BLOCK_SIZE), skew=skew, seed=300 + round_no
                )
                result = scheduler.schedule(transactions)
                rates.append(result.schedule.abort_rate)
                latency.append(result.timings.rank_division)
            mean_rate = sum(rates) / len(rates)
            means[policy].append(mean_rate)
            rows.append(
                [
                    skew,
                    policy.value,
                    f"{100 * mean_rate:.2f}",
                    f"{1000 * sum(latency) / len(latency):.2f}",
                ]
            )
    return rows, means


def test_ablation_rank_policy(benchmark, report_table):
    rows, means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Ablation: Algorithm 1 cycle-breaking policy",
        ["skew", "policy", "abort rate (%)", "rank division (ms)"],
        rows,
        note="paper default is max-out-degree (most dependencies first)",
    )
    report_table("ablation_rank_policy", table)
    # Every policy yields a valid scheduler; the paper's default should
    # never be drastically worse than the alternatives.
    default_mean = sum(means[RankPolicy.MAX_OUT_DEGREE]) / len(SKEWS)
    for policy in RankPolicy:
        other_mean = sum(means[policy]) / len(SKEWS)
        assert default_mean <= other_mean * 1.5 + 0.01


def test_rank_policies_all_serializable(benchmark):
    from repro.core import check_invariants

    transactions = smallbank_epoch(OMEGA, scaled(BLOCK_SIZE), skew=1.1, seed=301)

    def check_all():
        for policy in RankPolicy:
            result = NezhaScheduler(NezhaConfig(rank_policy=policy)).schedule(
                transactions
            )
            problems = check_invariants(
                transactions,
                result.schedule.sequences(),
                set(result.schedule.aborted),
            )
            assert problems == []
        return True

    assert benchmark.pedantic(check_all, rounds=1, iterations=1)
