"""Shared benchmark fixtures.

Every benchmark registers its reproduction table through ``report_table``;
tables are printed in the terminal summary (immune to pytest's output
capture) and persisted under ``benchmarks/results/`` so EXPERIMENTS.md can
reference stable artifacts.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_tables: list[str] = []


@pytest.fixture
def report_table():
    """Register a rendered table for terminal summary and persistence."""

    def _record(name: str, text: str) -> None:
        _tables.append(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", name)
        (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _tables:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "paper reproduction tables")
    for table in _tables:
        terminalreporter.write_line(table)
        terminalreporter.write_line("")
