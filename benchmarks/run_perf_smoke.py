#!/usr/bin/env python
"""Perf smoke gate for the CC fast path (< 30 s).

Re-measures the dense fast path against the string-keyed reference on
the standard contended epoch (skew 0.6, ω=12) and fails when the fast
path has regressed more than 20% against the committed baseline in
``benchmarks/results/BENCH_cc_fastpath.json``.  The comparison uses the
*speedup ratio* (reference p50 / fast p50 on rank_division +
transaction_sorting), which is stable across machines, rather than
absolute milliseconds.  On success (or with ``--update``) the JSON is
rewritten with the fresh numbers.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_smoke.py [--update]

Equivalent pytest entry point::

    PYTHONPATH=src python -m pytest benchmarks -m perf_smoke -q
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_cc_fastpath import (  # noqa: E402
    RESULTS_PATH,
    SPEEDUP_FLOOR,
    measure_fastpath,
    write_results,
)

REGRESSION_TOLERANCE = 0.20
SMOKE_ROUNDS = 5


def load_baseline(path: Path = RESULTS_PATH) -> dict | None:
    """The committed benchmark artifact, or ``None`` when absent."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def main(argv: list[str]) -> int:
    update_only = "--update" in argv
    started = time.perf_counter()
    baseline = load_baseline()
    payload = measure_fastpath(rounds=SMOKE_ROUNDS)
    elapsed = time.perf_counter() - started
    speedup = payload["speedup_rank_plus_sort_p50"]
    print(f"fast-path rank+sort speedup: {speedup:.2f}x ({elapsed:.1f}s)")

    failed = False
    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: speedup below the {SPEEDUP_FLOOR}x floor")
        failed = True
    if baseline is not None and not update_only:
        committed = float(baseline.get("speedup_rank_plus_sort_p50", 0.0))
        minimum = committed * (1.0 - REGRESSION_TOLERANCE)
        print(
            f"committed baseline: {committed:.2f}x "
            f"(tolerated minimum {minimum:.2f}x)"
        )
        if committed and speedup < minimum:
            print("FAIL: fast path regressed >20% against the committed baseline")
            failed = True
    elif baseline is None:
        print("no committed baseline found; writing a fresh one")

    if not failed or update_only:
        write_results(payload)
        print(f"wrote {RESULTS_PATH}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
