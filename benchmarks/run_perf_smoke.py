#!/usr/bin/env python
"""Perf smoke gate for the repo's perf-critical paths (< 60 s).

Three gates.  The first two are compared against committed baselines by
*speedup ratio* (stable across machines) rather than absolute
milliseconds:

* **CC fast path** — the dense path's rank+sort speedup over the
  string-keyed reference on the standard contended epoch (skew 0.6,
  ω=12) must stay within 20% of
  ``benchmarks/results/BENCH_cc_fastpath.json``.
* **Parallel execution** — the process backend's execution-phase
  speedup at 4 workers over the serial backend on SmallBank must clear
  the 2x floor and stay within tolerance of
  ``benchmarks/results/BENCH_exec_parallel.json``, with state roots
  bit-identical across the serial, thread, and process backends.
* **Flight-recorder overhead** — tracing-on and flight-ledger-on must
  each add < 5% to the p50 epoch-processing latency.  These are
  absolute ceilings, no baseline drift: a relative gap between
  interleaved replays on the same machine is already
  machine-independent.
* **Delta-CC abort drop** — operation-level CC must dissolve >= 40% of
  the baseline's ``unserializable_write`` aborts on SmallBank at skew
  0.9.  An abort-count ratio on a fixed seed is deterministic, so this
  gate has no tolerance band at all.
* **Flat-state commit** — the flat journaled state's batched epoch seal
  must be >= 3x cheaper than sequential trie puts at 100k accounts
  (ratio gate, baselined in ``BENCH_state_scale.json``), and its
  per-write cost must stay within 2x across the account sweep
  (absolute ceiling — the whole point of the fast path is that commit
  cost does not grow with state size).
* **Streaming engine** — the streaming epoch engine must hold >= 1.4x
  epochs/sec over the barrier pipeline on the charged synthetic replay
  (skew 0.6, ω=12, 4 thread workers), with every epoch report
  bit-identical between the arms (``BENCH_streaming.json``).
* **Certifier overhead** — the proof-carrying schedule certifier
  (``PipelineConfig(certify=True)``) must add < 5% to the p50
  epoch-processing latency.  Same interleaved-replay design as the
  flight-recorder gate: absolute ceiling, no baseline drift.

On success (or with ``--update``) the JSON artifacts are rewritten with
the fresh numbers.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_smoke.py [--update]

Equivalent pytest entry point::

    PYTHONPATH=src python -m pytest benchmarks -m perf_smoke -q
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_cc_fastpath import (  # noqa: E402
    RESULTS_PATH as CC_RESULTS_PATH,
    SPEEDUP_FLOOR as CC_SPEEDUP_FLOOR,
    measure_fastpath,
    write_results as write_cc_results,
)
from bench_exec_parallel import (  # noqa: E402
    RESULTS_PATH as EXEC_RESULTS_PATH,
    SPEEDUP_FLOOR as EXEC_SPEEDUP_FLOOR,
    measure_exec_parallel,
    write_results as write_exec_results,
)
from bench_obs_overhead import (  # noqa: E402
    OVERHEAD_CEILING as OBS_OVERHEAD_CEILING,
    RESULTS_PATH as OBS_RESULTS_PATH,
    measure_obs_overhead,
    write_results as write_obs_results,
)
from bench_delta_cc import (  # noqa: E402
    ABORT_DROP_FLOOR as DELTA_DROP_FLOOR,
    GATED_SKEW as DELTA_GATED_SKEW,
    RESULTS_PATH as DELTA_RESULTS_PATH,
    measure_delta_cc,
    write_results as write_delta_results,
)
from bench_streaming import (  # noqa: E402
    HIT_RATE_FLOOR as STREAM_HIT_FLOOR,
    RESULTS_PATH as STREAM_RESULTS_PATH,
    SPEEDUP_FLOOR as STREAM_SPEEDUP_FLOOR,
    measure_streaming,
    write_results as write_streaming_results,
)
from bench_certify_overhead import (  # noqa: E402
    OVERHEAD_CEILING as CERTIFY_OVERHEAD_CEILING,
    RESULTS_PATH as CERTIFY_RESULTS_PATH,
    measure_certify_overhead,
    write_results as write_certify_results,
)
from bench_state_scale import (  # noqa: E402
    FLATNESS_CEILING as STATE_FLATNESS_CEILING,
    GATED_SIZE as STATE_GATED_SIZE,
    RESULTS_PATH as STATE_RESULTS_PATH,
    SPEEDUP_FLOOR as STATE_SPEEDUP_FLOOR,
    measure_state_scale,
    write_results as write_state_results,
)

REGRESSION_TOLERANCE = 0.20
SMOKE_ROUNDS = 5
EXEC_SMOKE_ROUNDS = 3
# The exec speedup crosses process boundaries (scheduler noise, host
# core count), so its gate tolerates more drift than the single-process
# CC ratio — the absolute 2x floor still backstops it.
EXEC_REGRESSION_TOLERANCE = 0.35
OBS_SMOKE_ROUNDS = 4
CERTIFY_SMOKE_ROUNDS = 4
DELTA_SMOKE_EPOCHS = 1
STATE_SMOKE_ROUNDS = 3
STREAM_SMOKE_ROUNDS = 3
# The streaming ratio pits wall-clock sleep scheduling against CC +
# commit CPU across two threads; shared single-core hosts drift more
# than the in-process CC ratio, so it gets the exec-style band.
STREAM_REGRESSION_TOLERANCE = 0.35


def load_baseline(path: Path = CC_RESULTS_PATH) -> dict | None:
    """The committed benchmark artifact, or ``None`` when absent."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _gate(
    name: str,
    speedup: float,
    floor: float,
    committed: float | None,
    tolerance: float,
    update_only: bool,
) -> bool:
    """Print one gate's verdict; returns True when it failed."""
    failed = False
    if speedup < floor:
        print(f"FAIL [{name}]: speedup below the {floor}x floor")
        failed = True
    if committed and not update_only:
        minimum = committed * (1.0 - tolerance)
        print(
            f"[{name}] committed baseline: {committed:.2f}x "
            f"(tolerated minimum {minimum:.2f}x)"
        )
        if speedup < minimum:
            print(
                f"FAIL [{name}]: regressed >{tolerance:.0%} against the "
                "committed baseline"
            )
            failed = True
    elif not committed:
        print(f"[{name}] no committed baseline found; writing a fresh one")
    return failed


def main(argv: list[str]) -> int:
    update_only = "--update" in argv
    started = time.perf_counter()
    failed = False

    cc_baseline = load_baseline(CC_RESULTS_PATH) or {}
    cc_payload = measure_fastpath(rounds=SMOKE_ROUNDS)
    cc_speedup = cc_payload["speedup_rank_plus_sort_p50"]
    print(f"cc fast-path rank+sort speedup: {cc_speedup:.2f}x")
    failed |= _gate(
        "cc_fastpath",
        cc_speedup,
        CC_SPEEDUP_FLOOR,
        float(cc_baseline.get("speedup_rank_plus_sort_p50", 0.0)),
        REGRESSION_TOLERANCE,
        update_only,
    )

    exec_baseline = load_baseline(EXEC_RESULTS_PATH) or {}
    exec_payload = measure_exec_parallel(rounds=EXEC_SMOKE_ROUNDS, full=False)
    exec_speedup = exec_payload["headline"]["speedup_p50"]
    print(f"exec-phase speedup (4 process workers): {exec_speedup:.2f}x")
    if not exec_payload["headline"]["process_backend_engaged"]:
        print("FAIL [exec_parallel]: process backend fell back")
        failed = True
    if not exec_payload["roots_identical"]:
        print(
            "FAIL [exec_parallel]: backend state roots diverged: "
            f"{exec_payload['roots']}"
        )
        failed = True
    failed |= _gate(
        "exec_parallel",
        exec_speedup,
        EXEC_SPEEDUP_FLOOR,
        float(exec_baseline.get("headline", {}).get("speedup_p50", 0.0)),
        EXEC_REGRESSION_TOLERANCE,
        update_only,
    )

    obs_payload = measure_obs_overhead(rounds=OBS_SMOKE_ROUNDS)
    obs_overhead = obs_payload["overhead_frac_p50"]
    print(
        f"flight-recorder overhead (p50): {100 * obs_overhead:.2f}% "
        f"(ceiling {100 * OBS_OVERHEAD_CEILING:.0f}%)"
    )
    if obs_overhead >= OBS_OVERHEAD_CEILING:
        print(
            f"FAIL [obs_overhead]: tracing adds >= "
            f"{OBS_OVERHEAD_CEILING:.0%} to p50 epoch latency"
        )
        failed = True
    ledger_overhead = obs_payload["ledger_overhead_frac_p50"]
    print(
        f"flight-ledger overhead (p50): {100 * ledger_overhead:.2f}% "
        f"(ceiling {100 * OBS_OVERHEAD_CEILING:.0f}%)"
    )
    if ledger_overhead >= OBS_OVERHEAD_CEILING:
        print(
            f"FAIL [ledger_overhead]: the flight ledger adds >= "
            f"{OBS_OVERHEAD_CEILING:.0%} to p50 epoch latency"
        )
        failed = True

    certify_payload = measure_certify_overhead(rounds=CERTIFY_SMOKE_ROUNDS)
    certify_overhead = certify_payload["overhead_frac_p50"]
    print(
        f"schedule-certifier overhead (p50): {100 * certify_overhead:.2f}% "
        f"(ceiling {100 * CERTIFY_OVERHEAD_CEILING:.0f}%)"
    )
    if certify_overhead >= CERTIFY_OVERHEAD_CEILING:
        print(
            f"FAIL [certify_overhead]: certification adds >= "
            f"{CERTIFY_OVERHEAD_CEILING:.0%} to p50 epoch latency"
        )
        failed = True

    delta_payload = measure_delta_cc(epochs=DELTA_SMOKE_EPOCHS)
    delta_drop = delta_payload["unserializable_drop_at_gated_skew"]
    print(
        f"delta-CC unserializable_write drop at skew {DELTA_GATED_SKEW}: "
        f"{delta_drop:.1%} (floor {DELTA_DROP_FLOOR:.0%})"
    )
    if delta_drop < DELTA_DROP_FLOOR:
        print(
            f"FAIL [delta_cc]: abort drop below the "
            f"{DELTA_DROP_FLOOR:.0%} floor"
        )
        failed = True

    state_baseline = load_baseline(STATE_RESULTS_PATH) or {}
    state_payload = measure_state_scale(rounds=STATE_SMOKE_ROUNDS)
    state_speedup = state_payload["speedup_at_gated"]
    print(
        f"flat-state commit speedup at {STATE_GATED_SIZE} accounts: "
        f"{state_speedup:.2f}x"
    )
    failed |= _gate(
        "state_scale",
        state_speedup,
        STATE_SPEEDUP_FLOOR,
        float(state_baseline.get("speedup_at_gated", 0.0)),
        REGRESSION_TOLERANCE,
        update_only,
    )
    state_flatness = state_payload["flat_per_write_ratio"]
    print(
        f"flat-state per-write spread across sweep: {state_flatness:.2f}x "
        f"(ceiling {STATE_FLATNESS_CEILING}x)"
    )
    if state_flatness > STATE_FLATNESS_CEILING:
        print(
            f"FAIL [state_scale]: per-write commit cost varies "
            f"{state_flatness:.2f}x across the account sweep"
        )
        failed = True

    stream_baseline = load_baseline(STREAM_RESULTS_PATH) or {}
    stream_payload = measure_streaming(rounds=STREAM_SMOKE_ROUNDS)
    stream_speedup = stream_payload["speedup_best"]
    print(f"streaming engine speedup over barrier: {stream_speedup:.2f}x")
    if not stream_payload["reports_identical"]:
        print("FAIL [streaming]: streaming reports diverged from barrier")
        failed = True
    stream_hit = stream_payload["speculation_hit_rate"]
    if stream_hit < STREAM_HIT_FLOOR:
        print(
            f"FAIL [streaming]: speculation hit rate {stream_hit:.2f} "
            f"below the {STREAM_HIT_FLOOR} floor"
        )
        failed = True
    failed |= _gate(
        "streaming",
        stream_speedup,
        STREAM_SPEEDUP_FLOOR,
        float(stream_baseline.get("speedup_best", 0.0)),
        STREAM_REGRESSION_TOLERANCE,
        update_only,
    )

    elapsed = time.perf_counter() - started
    print(f"smoke wall-clock: {elapsed:.1f}s")
    if not failed or update_only:
        write_cc_results(cc_payload)
        write_exec_results(exec_payload)
        write_obs_results(obs_payload)
        write_certify_results(certify_payload)
        write_delta_results(delta_payload)
        write_state_results(state_payload)
        write_streaming_results(stream_payload)
        print(f"wrote {CC_RESULTS_PATH}")
        print(f"wrote {EXEC_RESULTS_PATH}")
        print(f"wrote {OBS_RESULTS_PATH}")
        print(f"wrote {CERTIFY_RESULTS_PATH}")
        print(f"wrote {DELTA_RESULTS_PATH}")
        print(f"wrote {STATE_RESULTS_PATH}")
        print(f"wrote {STREAM_RESULTS_PATH}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
