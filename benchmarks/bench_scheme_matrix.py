"""Extension — the full scheme matrix across workloads and contention.

Not a paper figure: a summary table covering every implemented scheme
(Serial, OCC, PCC, CG, Nezha, Nezha-no-enhancement) on both contract
workloads (SmallBank and the token economy) at three contention levels.
This is the one-stop comparison Table II gestures at qualitatively.
"""

from __future__ import annotations

from repro.bench import make_scheme, render_table, run_scheme, scaled
from repro.workload import (
    SmallBankConfig,
    SmallBankWorkload,
    TokenConfig,
    TokenWorkload,
    flatten_blocks,
)

SKEWS = (0.2, 0.6, 1.0)
OMEGA = 2
BLOCK_SIZE = 75
SCHEME_NAMES = ("serial", "occ", "pcc", "cg", "nezha", "nezha-noreorder")
CG_CYCLE_BUDGET = 150_000


def batch_for(workload_name: str, skew: float):
    if workload_name == "smallbank":
        workload = SmallBankWorkload(SmallBankConfig(skew=skew, seed=800))
    else:
        workload = TokenWorkload(TokenConfig(skew=skew, seed=800))
    return flatten_blocks(workload.generate_blocks(OMEGA, scaled(BLOCK_SIZE)))


def sweep():
    rows = []
    nezha_beats_occ = 0
    cells = 0
    for workload_name in ("smallbank", "token"):
        for skew in SKEWS:
            transactions = batch_for(workload_name, skew)
            occ_aborts = None
            for scheme_name in SCHEME_NAMES:
                run = run_scheme(
                    make_scheme(scheme_name, cycle_budget=CG_CYCLE_BUDGET),
                    transactions,
                )
                if run.failed:
                    rows.append([workload_name, skew, scheme_name, "-", "-", "-", "FAIL"])
                    continue
                if scheme_name == "occ":
                    occ_aborts = run.schedule.aborted_count
                if scheme_name == "nezha" and occ_aborts is not None:
                    cells += 1
                    if run.schedule.aborted_count <= occ_aborts:
                        nezha_beats_occ += 1
                rows.append(
                    [
                        workload_name,
                        skew,
                        scheme_name,
                        run.schedule.committed_count,
                        f"{100 * run.schedule.abort_rate:.1f}%",
                        f"{run.schedule.mean_group_size:.1f}",
                        f"{run.total_seconds * 1000:.2f}",
                    ]
                )
    return rows, nezha_beats_occ, cells


def test_scheme_matrix(benchmark, report_table):
    rows, nezha_beats_occ, cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Extension: scheme matrix (both workloads, three contention levels)",
        [
            "workload",
            "skew",
            "scheme",
            "committed",
            "aborts",
            "grp size",
            "latency (ms)",
        ],
        rows,
        note="PCC never aborts (locks); Serial commits everything serially",
    )
    report_table("scheme_matrix", table)
    # Nezha commits at least as much as plain OCC on every cell measured.
    assert nezha_beats_occ == cells
    # PCC rows never abort.
    for row in rows:
        if row[2] == "pcc" and row[4] != "-":
            assert row[4] == "0.0%"
