"""Figure 11 — transaction abort rate under rising contention.

Paper setting: block concurrency 1 (CG cannot survive more under high
skew), block size 200, skew from 0.6 to 1.0.  Findings: both schemes stay
low through skew 0.7, both climb steeply after, and Nezha ends ~3.5
percentage points below CG at skew 1.0 thanks to the reordering
enhancement.

We report Nezha, Nezha with the enhanced design disabled (the ablation),
CG, and plain OCC.  Our Python CG exhausts its cycle budget at the
steepest skews even at omega=1 (the paper's Go implementation could
still measure there); those cells print FAIL and the ablation column
carries the comparison — it aborts everything the unenhanced scheme
must, just like CG's cycle-removal does.
"""

from __future__ import annotations

from repro.bench import make_scheme, render_table, run_scheme, scaled, smallbank_epoch

SKEWS = (0.6, 0.7, 0.8, 0.9, 1.0)
OMEGA = 1
BLOCK_SIZE = 200
ROUNDS = 4
CG_CYCLE_BUDGET = 300_000
SCHEMES = ("nezha", "nezha-noreorder", "occ", "cg")


def sweep():
    block_size = scaled(BLOCK_SIZE)
    rows = []
    for skew in SKEWS:
        rates: dict[str, list[float]] = {name: [] for name in SCHEMES}
        reordered = 0
        for round_no in range(ROUNDS):
            transactions = smallbank_epoch(
                OMEGA, block_size, skew=skew, seed=100 + round_no
            )
            for scheme_name in SCHEMES:
                run = run_scheme(
                    make_scheme(scheme_name, cycle_budget=CG_CYCLE_BUDGET),
                    transactions,
                )
                if run.failed:
                    continue
                rates[scheme_name].append(run.abort_rate)
                if scheme_name == "nezha":
                    reordered += len(run.schedule.reordered)
        rows.append(
            [
                skew,
                _mean_pct(rates["nezha"]),
                _mean_pct(rates["nezha-noreorder"]),
                _mean_pct(rates["occ"]),
                _mean_pct(rates["cg"]),
                reordered,
            ]
        )
    return rows


def _mean_pct(values):
    if not values:
        return float("nan")
    return 100.0 * sum(values) / len(values)


def _cell(value):
    return "FAIL" if value != value else f"{value:.2f}"  # NaN check


def test_fig11_abort_rate(benchmark, report_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Figure 11: abort rate (%) vs skew, omega=1",
        ["skew", "nezha", "nezha (no enhance)", "occ", "cg", "reordered"],
        [
            [r[0], _cell(r[1]), _cell(r[2]), _cell(r[3]), _cell(r[4]), r[5]]
            for r in rows
        ],
        note="paper: low through 0.7 then climbing; nezha below cg at 1.0",
    )
    report_table("fig11_abort_rate", table)

    by_skew = {row[0]: row for row in rows}
    # Low contention keeps abort rates small.
    assert by_skew[0.6][1] < 15.0
    # Contention drives abort rates up.
    assert by_skew[1.0][1] > by_skew[0.6][1]
    # The enhanced design reduces aborts at every skew (the paper's gap).
    for row in rows:
        assert row[1] <= row[2] + 0.75
    # The gap widens with contention, as in the paper.
    gap_low = by_skew[0.6][2] - by_skew[0.6][1]
    gap_high = by_skew[1.0][2] - by_skew[1.0][1]
    assert gap_high >= gap_low
    # Wherever CG completes, Nezha is competitive (within 2 points).
    for row in rows:
        if row[4] == row[4]:  # not NaN
            assert row[1] <= row[4] + 2.0


def test_nezha_abort_point(benchmark):
    """Micro-benchmark: full Nezha run at the paper's hardest skew."""
    transactions = smallbank_epoch(OMEGA, scaled(BLOCK_SIZE), skew=1.0, seed=104)
    scheduler = make_scheme("nezha")
    benchmark(lambda: scheduler.schedule(transactions))
