"""Extension — Figure 2: transaction-processing framework comparison.

Section II-B argues the conventional single-chain framework (proposer
executes before consensus, validators *replay* to verify — Figure 2a)
cannot scale to DAG blockchains: with omega concurrent proposers, a
validator must re-execute all omega blocks serially, so verification
cost grows linearly with block concurrency.  The deferred-execution
framework (Figure 2b, the one the paper and this repo implement) executes
once, concurrently, after consensus.

This bench quantifies that argument with the calibrated cost model:

* Fig 2a validator cost  = omega * block_size * serial EVM cost (replay)
* Fig 2b full-node cost  = concurrent execution charge + measured
  concurrency control and commitment on our Nezha implementation.
"""

from __future__ import annotations

from repro.bench import make_scheme, render_table, run_scheme, scaled, smallbank_epoch
from repro.vm.costmodel import ExecutionCostModel

CONCURRENCIES = (2, 4, 8, 12)
BLOCK_SIZE = 100


def sweep():
    cost = ExecutionCostModel()
    rows = []
    ratios = []
    for omega in CONCURRENCIES:
        transactions = smallbank_epoch(omega, scaled(BLOCK_SIZE), skew=0.2, seed=600)
        count = len(transactions)
        replay_seconds = cost.serial_batch_seconds(count)
        deferred_exec = cost.concurrent_batch_seconds(count)
        control = run_scheme(make_scheme("nezha"), transactions)
        deferred_total = deferred_exec + control.total_seconds
        ratio = replay_seconds / deferred_total
        ratios.append(ratio)
        rows.append(
            [
                omega,
                count,
                f"{replay_seconds * 1000:,.0f}",
                f"{deferred_total * 1000:,.0f}",
                f"{ratio:.1f}x",
            ]
        )
    return rows, ratios


def test_framework_comparison(benchmark, report_table):
    rows, ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Figure 2 (quantified): validator cost per epoch (ms)",
        [
            "omega",
            "txns",
            "Fig 2a: execute-then-propose (replay)",
            "Fig 2b: deferred execution (ours)",
            "advantage",
        ],
        rows,
        note="replay charged at the paper-calibrated serial EVM rate",
    )
    report_table("framework_comparison", table)
    # Deferred execution wins at every concurrency, and the advantage does
    # not shrink as omega grows (replay is inherently serial).
    assert all(r > 2.0 for r in ratios)
    assert ratios[-1] >= ratios[0] * 0.8


def test_deferred_pipeline_point(benchmark):
    """Micro-benchmark: the deferred framework's real (non-modelled) cost."""
    transactions = smallbank_epoch(4, scaled(BLOCK_SIZE), skew=0.2, seed=601)
    scheduler = make_scheme("nezha")
    benchmark(lambda: scheduler.schedule(transactions))
