"""Figure 12 — effective system throughput of OHIE with each scheme.

Paper setting: 1 s expected block interval, block size 200, skew in
{0.2, 0.6}, block concurrency 2-12.  Effective throughput counts only
transactions that pass processing and persist state.  Findings:

* Serial is flat around 60 tps no matter the concurrency (EVM-bound);
* CG grows sub-linearly at skew 0.2 and collapses at skew 0.6 / omega 12
  when its concurrency-control latency blows up;
* Nezha grows almost linearly with block concurrency at both skews.

Execution costs are charged through the paper-calibrated cost model;
concurrency-control and commitment latencies are measured for real inside
the simulated cluster.  Default block size is 100 (REPRO_BENCH_SCALE=2
for paper scale); the CG collapse then already appears at omega >= 8.
"""

from __future__ import annotations

from repro.baselines import CGConfig, CGScheduler, SerialScheduler
from repro.bench import render_series, render_table, scaled
from repro.core import NezhaScheduler
from repro.net import Cluster, ClusterConfig
from repro.vm.costmodel import ExecutionCostModel

SKEWS = (0.2, 0.6)
CONCURRENCIES = (2, 4, 8, 12)
BLOCK_SIZE = 100
EPOCHS = 2
CG_CYCLE_BUDGET = 150_000


def make_schemes():
    return {
        "serial": SerialScheduler(),
        "cg": CGScheduler(CGConfig(cycle_budget=CG_CYCLE_BUDGET)),
        "nezha": NezhaScheduler(),
    }


def run_cell(scheme_name, omega, skew):
    cluster = Cluster(
        make_schemes()[scheme_name],
        ClusterConfig(
            miner_count=12,
            block_concurrency=omega,
            block_size=scaled(BLOCK_SIZE),
            skew=skew,
            seed=7,
            cost_model=ExecutionCostModel(),
        ),
    )
    return cluster.run_epochs(EPOCHS)


def sweep():
    rows = []
    series: dict[tuple[str, float], list[float]] = {}
    for skew in SKEWS:
        for omega in CONCURRENCIES:
            cells = {}
            for scheme_name in ("serial", "cg", "nezha"):
                run = run_cell(scheme_name, omega, skew)
                cells[scheme_name] = run.effective_throughput
                series.setdefault((scheme_name, skew), []).append(
                    run.effective_throughput
                )
            rows.append(
                [
                    skew,
                    omega,
                    f"{cells['serial']:.1f}",
                    f"{cells['cg']:.1f}",
                    f"{cells['nezha']:.1f}",
                ]
            )
    return rows, series


def test_fig12_effective_throughput(benchmark, report_table):
    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Figure 12: effective throughput (tps) vs block concurrency",
        ["skew", "omega", "serial", "cg", "nezha"],
        rows,
        note="1 s block interval; execution charged at the paper-calibrated EVM rate",
    )
    report_table("fig12_throughput", table)
    for skew in SKEWS:
        chart = render_series(
            f"Figure 12 (skew={skew}): effective throughput vs omega",
            list(CONCURRENCIES),
            {
                name: [value for value in series[(name, skew)]]
                for name in ("serial", "cg", "nezha")
            },
            y_label="tps",
        )
        report_table(f"fig12_chart_skew{skew}", chart)

    for skew in SKEWS:
        serial = series[("serial", skew)]
        nezha = series[("nezha", skew)]
        # Serial stays flat: max/min within 40%.
        assert max(serial) < min(serial) * 1.4
        # Nezha scales with omega: highest concurrency >= 3x lowest.
        assert nezha[-1] > nezha[0] * 3
        # Nezha beats serial decisively at high concurrency.
        assert nezha[-1] > serial[-1] * 3
    # CG collapses (or fails outright) under skew 0.6 at high concurrency,
    # while Nezha keeps climbing.
    cg_skewed = series[("cg", 0.6)]
    nezha_skewed = series[("nezha", 0.6)]
    assert cg_skewed[-1] < nezha_skewed[-1] * 0.7


def test_cluster_epoch_point(benchmark):
    """Micro-benchmark: one full Nezha epoch through the cluster."""
    cluster = Cluster(
        NezhaScheduler(),
        ClusterConfig(
            block_concurrency=4,
            block_size=scaled(50),
            skew=0.2,
            seed=3,
        ),
    )

    def one_epoch():
        cluster.feed_client(4 * scaled(50))
        return cluster.run_epochs(1).committed

    benchmark.pedantic(one_epoch, rounds=3, iterations=1)
