"""Extension — flight-recorder overhead on the epoch hot path.

Not a paper figure: proves the observability subsystem is cheap enough
to leave on.  The same pre-mined epochs are replayed through
identically-seeded full nodes — one bare, one with a live ``Tracer``
plus a ``MetricsRegistry``, one with a ``FlightLedger`` — interleaved
round by round so machine drift hits every arm alike.  The headline is
the relative gap between each instrumented arm's p50 epoch-processing
latency and the bare one's, which must stay under
``OVERHEAD_CEILING`` (5%) per arm.

Run directly (``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``)
to refresh ``benchmarks/results/BENCH_obs_overhead.json``, or via pytest
where the ``perf_smoke``-marked test asserts the ceiling.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

import pytest

from repro.core import NezhaScheduler
from repro.dag import EpochCoordinator, Mempool, ParallelChains, PoWParams
from repro.node import FullNode, PipelineConfig
from repro.node.metrics import MetricsRegistry
from repro.obs import FlightLedger, Tracer
from repro.state import StateDB
from repro.vm.contracts import default_registry
from repro.workload import SmallBankConfig, SmallBankWorkload, initial_state

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_obs_overhead.json"

SKEW = 0.6
OMEGA = 4
BLOCK_SIZE = 120
ACCOUNTS = 2_000
SEED = 29
EPOCHS = 3
ROUNDS = 6
POW_BITS = 4

OVERHEAD_CEILING = 0.05

WORKLOAD_CONFIG = SmallBankConfig(account_count=ACCOUNTS, skew=SKEW, seed=SEED)


def _fresh_node(mode: str) -> FullNode:
    """One replay node: ``bare``, ``traced``, or ``ledger``."""
    state = StateDB()
    state.seed(initial_state(WORKLOAD_CONFIG))
    traced = mode == "traced"
    return FullNode(
        chains=ParallelChains(chain_count=OMEGA, pow_params=PoWParams(POW_BITS)),
        state=state,
        scheduler=NezhaScheduler(),
        registry=default_registry(),
        config=PipelineConfig(),
        metrics=MetricsRegistry() if traced else None,
        tracer=Tracer() if traced else None,
        ledger=FlightLedger() if mode == "ledger" else None,
    )


def _premine(epochs: int) -> list[list]:
    """Mine the shared epoch sequence once (off the measured path).

    Block headers chain state roots, so mining drives a throwaway node
    forward; every replay node is seeded identically and reproduces the
    same roots, making the pre-mined blocks valid for all of them.
    """
    driver = _fresh_node("bare")
    chains = ParallelChains(
        chain_count=OMEGA, pow_params=driver.chains.pow_params
    )
    coordinator = EpochCoordinator(
        chains=chains, miners=["m0", "m1"], block_size=BLOCK_SIZE
    )
    pool = Mempool()
    pool.submit_many(
        SmallBankWorkload(WORKLOAD_CONFIG).generate(
            epochs * OMEGA * BLOCK_SIZE + 200
        )
    )
    mined = []
    with driver:
        for _ in range(epochs):
            blocks = coordinator.mine_epoch(pool, state_root=driver.state_root)
            driver.receive_epoch(blocks)
            mined.append(blocks)
    return mined


def _replay(epoch_blocks: list[list], mode: str) -> list[float]:
    """Per-epoch processing seconds through one fresh node."""
    node = _fresh_node(mode)
    samples = []
    with node:
        for blocks in epoch_blocks:
            start = time.perf_counter()
            node.receive_epoch(blocks)
            samples.append(time.perf_counter() - start)
        if node.tracer is not None and len(node.tracer) == 0:
            raise RuntimeError("traced replay recorded no spans")
        if node.ledger is not None and node.ledger.recorded == 0:
            raise RuntimeError("ledger replay recorded no events")
    return samples


def _percentiles(samples: list[float]) -> dict[str, float]:
    ordered = sorted(samples)
    rank = max(0, round(0.95 * (len(ordered) - 1)))
    return {
        "p50_ms": statistics.median(ordered) * 1e3,
        "p95_ms": ordered[rank] * 1e3,
    }


def measure_obs_overhead(epochs: int = EPOCHS, rounds: int = ROUNDS) -> dict:
    """Replay bare/traced/ledger nodes interleaved; return the payload."""
    mined = _premine(epochs)
    samples: dict[str, list[float]] = {"bare": [], "traced": [], "ledger": []}
    _replay(mined, "traced")  # warm-up: JIT-free but primes caches/pools
    for _ in range(rounds):
        for mode in samples:
            samples[mode].extend(_replay(mined, mode))
    stats = {mode: _percentiles(arm) for mode, arm in samples.items()}
    bare_p50 = stats["bare"]["p50_ms"]
    traced_overhead = (stats["traced"]["p50_ms"] - bare_p50) / bare_p50
    ledger_overhead = (stats["ledger"]["p50_ms"] - bare_p50) / bare_p50
    return {
        "benchmark": "obs_overhead",
        "workload": {
            "generator": "smallbank",
            "skew": SKEW,
            "omega": OMEGA,
            "block_size": BLOCK_SIZE,
            "accounts": ACCOUNTS,
            "seed": SEED,
            "epochs": epochs,
        },
        "rounds": rounds,
        "untraced": stats["bare"],
        "traced": stats["traced"],
        "ledger": stats["ledger"],
        "overhead_frac_p50": round(traced_overhead, 4),
        "ledger_overhead_frac_p50": round(ledger_overhead, 4),
        "ceiling_frac": OVERHEAD_CEILING,
    }


def write_results(payload: dict, path: Path = RESULTS_PATH) -> None:
    """Persist the machine-readable benchmark artifact."""
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.perf_smoke
def test_obs_overhead_under_ceiling(report_table):
    """Tracing-on and ledger-on must each add < 5% to p50 epoch latency."""
    payload = measure_obs_overhead()
    write_results(payload)
    report_table(
        "obs_overhead",
        "\n".join(
            [
                "mode | p50 ms | p95 ms",
                f"untraced | {payload['untraced']['p50_ms']:.2f} | "
                f"{payload['untraced']['p95_ms']:.2f}",
                f"traced | {payload['traced']['p50_ms']:.2f} | "
                f"{payload['traced']['p95_ms']:.2f}",
                f"ledger | {payload['ledger']['p50_ms']:.2f} | "
                f"{payload['ledger']['p95_ms']:.2f}",
                f"tracing overhead (p50): "
                f"{100 * payload['overhead_frac_p50']:.2f}%, "
                f"ledger overhead (p50): "
                f"{100 * payload['ledger_overhead_frac_p50']:.2f}% "
                f"(ceiling {100 * OVERHEAD_CEILING:.0f}% each)",
            ]
        ),
    )
    assert payload["overhead_frac_p50"] < OVERHEAD_CEILING
    assert payload["ledger_overhead_frac_p50"] < OVERHEAD_CEILING


def main() -> int:
    payload = measure_obs_overhead()
    write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    overhead = payload["overhead_frac_p50"]
    ledger_overhead = payload["ledger_overhead_frac_p50"]
    print(
        f"\ntracing overhead: {100 * overhead:.2f}%, "
        f"ledger overhead: {100 * ledger_overhead:.2f}% "
        f"(ceiling {100 * OVERHEAD_CEILING:.0f}% each)"
    )
    ok = overhead < OVERHEAD_CEILING and ledger_overhead < OVERHEAD_CEILING
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
