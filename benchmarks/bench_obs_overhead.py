"""Extension — flight-recorder overhead on the epoch hot path.

Not a paper figure: proves the observability subsystem is cheap enough
to leave on.  The same pre-mined epochs are replayed through two
identically-seeded full nodes — one untraced, one with a live
``Tracer`` plus a ``MetricsRegistry`` — interleaved round by round so
machine drift hits both alike.  The headline is the relative gap
between the traced and untraced p50 epoch-processing latencies, which
must stay under ``OVERHEAD_CEILING`` (5%).

Run directly (``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``)
to refresh ``benchmarks/results/BENCH_obs_overhead.json``, or via pytest
where the ``perf_smoke``-marked test asserts the ceiling.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

import pytest

from repro.core import NezhaScheduler
from repro.dag import EpochCoordinator, Mempool, ParallelChains, PoWParams
from repro.node import FullNode, PipelineConfig
from repro.node.metrics import MetricsRegistry
from repro.obs import Tracer
from repro.state import StateDB
from repro.vm.contracts import default_registry
from repro.workload import SmallBankConfig, SmallBankWorkload, initial_state

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_obs_overhead.json"

SKEW = 0.6
OMEGA = 4
BLOCK_SIZE = 120
ACCOUNTS = 2_000
SEED = 29
EPOCHS = 3
ROUNDS = 6
POW_BITS = 4

OVERHEAD_CEILING = 0.05

WORKLOAD_CONFIG = SmallBankConfig(account_count=ACCOUNTS, skew=SKEW, seed=SEED)


def _fresh_node(traced: bool) -> FullNode:
    state = StateDB()
    state.seed(initial_state(WORKLOAD_CONFIG))
    return FullNode(
        chains=ParallelChains(chain_count=OMEGA, pow_params=PoWParams(POW_BITS)),
        state=state,
        scheduler=NezhaScheduler(),
        registry=default_registry(),
        config=PipelineConfig(),
        metrics=MetricsRegistry() if traced else None,
        tracer=Tracer() if traced else None,
    )


def _premine(epochs: int) -> list[list]:
    """Mine the shared epoch sequence once (off the measured path).

    Block headers chain state roots, so mining drives a throwaway node
    forward; every replay node is seeded identically and reproduces the
    same roots, making the pre-mined blocks valid for all of them.
    """
    driver = _fresh_node(traced=False)
    chains = ParallelChains(
        chain_count=OMEGA, pow_params=driver.chains.pow_params
    )
    coordinator = EpochCoordinator(
        chains=chains, miners=["m0", "m1"], block_size=BLOCK_SIZE
    )
    pool = Mempool()
    pool.submit_many(
        SmallBankWorkload(WORKLOAD_CONFIG).generate(
            epochs * OMEGA * BLOCK_SIZE + 200
        )
    )
    mined = []
    with driver:
        for _ in range(epochs):
            blocks = coordinator.mine_epoch(pool, state_root=driver.state_root)
            driver.receive_epoch(blocks)
            mined.append(blocks)
    return mined


def _replay(epoch_blocks: list[list], traced: bool) -> list[float]:
    """Per-epoch processing seconds through one fresh node."""
    node = _fresh_node(traced)
    samples = []
    with node:
        for blocks in epoch_blocks:
            start = time.perf_counter()
            node.receive_epoch(blocks)
            samples.append(time.perf_counter() - start)
        if node.tracer is not None and len(node.tracer) == 0:
            raise RuntimeError("traced replay recorded no spans")
    return samples


def _percentiles(samples: list[float]) -> dict[str, float]:
    ordered = sorted(samples)
    rank = max(0, round(0.95 * (len(ordered) - 1)))
    return {
        "p50_ms": statistics.median(ordered) * 1e3,
        "p95_ms": ordered[rank] * 1e3,
    }


def measure_obs_overhead(epochs: int = EPOCHS, rounds: int = ROUNDS) -> dict:
    """Replay traced and untraced nodes interleaved; return the payload."""
    mined = _premine(epochs)
    untraced: list[float] = []
    traced: list[float] = []
    _replay(mined, traced=True)  # warm-up: JIT-free but primes caches/pools
    for _ in range(rounds):
        untraced.extend(_replay(mined, traced=False))
        traced.extend(_replay(mined, traced=True))
    untraced_stats = _percentiles(untraced)
    traced_stats = _percentiles(traced)
    overhead = (
        traced_stats["p50_ms"] - untraced_stats["p50_ms"]
    ) / untraced_stats["p50_ms"]
    return {
        "benchmark": "obs_overhead",
        "workload": {
            "generator": "smallbank",
            "skew": SKEW,
            "omega": OMEGA,
            "block_size": BLOCK_SIZE,
            "accounts": ACCOUNTS,
            "seed": SEED,
            "epochs": epochs,
        },
        "rounds": rounds,
        "untraced": untraced_stats,
        "traced": traced_stats,
        "overhead_frac_p50": round(overhead, 4),
        "ceiling_frac": OVERHEAD_CEILING,
    }


def write_results(payload: dict, path: Path = RESULTS_PATH) -> None:
    """Persist the machine-readable benchmark artifact."""
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.perf_smoke
def test_obs_overhead_under_ceiling(report_table):
    """Tracing-on must add < 5% to p50 epoch-processing latency."""
    payload = measure_obs_overhead()
    write_results(payload)
    report_table(
        "obs_overhead",
        "\n".join(
            [
                "mode | p50 ms | p95 ms",
                f"untraced | {payload['untraced']['p50_ms']:.2f} | "
                f"{payload['untraced']['p95_ms']:.2f}",
                f"traced | {payload['traced']['p50_ms']:.2f} | "
                f"{payload['traced']['p95_ms']:.2f}",
                f"overhead (p50): {100 * payload['overhead_frac_p50']:.2f}% "
                f"(ceiling {100 * OVERHEAD_CEILING:.0f}%)",
            ]
        ),
    )
    assert payload["overhead_frac_p50"] < OVERHEAD_CEILING


def main() -> int:
    payload = measure_obs_overhead()
    write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    overhead = payload["overhead_frac_p50"]
    print(
        f"\ntracing overhead: {100 * overhead:.2f}% "
        f"(ceiling {100 * OVERHEAD_CEILING:.0f}%)"
    )
    return 0 if overhead < OVERHEAD_CEILING else 1


if __name__ == "__main__":
    sys.exit(main())
