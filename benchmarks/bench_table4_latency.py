"""Table IV — transaction processing latency under a uniform workload.

Paper setting: skew = 0 (uniform), block size 200, block concurrency 2-12.
Three numbers per concurrency:

* Serial latency — executing and committing every transaction one by one
  with the EVM engine (paper: 4.7 s at omega=2 up to 36.6 s at omega=12);
* Nezha "(e)" — the concurrent speculative-execution phase;
* Nezha "(c)" — concurrency control plus commitment.

Execution latencies ("Serial" and "(e)") are *modelled* at the paper's
calibrated per-transaction EVM cost (our Python substrate executes
SmallBank far faster than their EVM stack — see repro.vm.costmodel);
the "(c)" column is measured for real on our Nezha implementation, since
concurrency control is the contribution under test.
"""

from __future__ import annotations

from repro.analysis import Summary
from repro.bench import (
    print_table,
    render_table,
    repeat_runs,
    scaled,
    smallbank_epoch,
)
from repro.vm.costmodel import ExecutionCostModel

CONCURRENCIES = (2, 4, 6, 8, 10, 12)
BLOCK_SIZE = 200
ROUNDS = 3
PAPER = {
    2: (4_700, 123.4, 22.1),
    4: (10_900, 246.4, 32.8),
    6: (17_200, 369.3, 44.9),
    8: (23_800, 511.7, 56.4),
    10: (30_000, 641.5, 71.6),
    12: (36_600, 743.4, 87.1),
}


def sweep():
    cost = ExecutionCostModel()
    block_size = scaled(BLOCK_SIZE)
    rows = []
    for omega in CONCURRENCIES:
        transactions = smallbank_epoch(omega, block_size, skew=0.0, seed=omega)
        count = len(transactions)
        serial_ms = cost.serial_batch_seconds(count) * 1000
        execute_ms = cost.concurrent_batch_seconds(count) * 1000
        runs = repeat_runs("nezha", transactions, rounds=ROUNDS)
        control_ms = Summary.of([run.total_seconds for run in runs]).mean * 1000
        paper_serial, paper_e, paper_c = PAPER[omega]
        rows.append(
            [
                omega,
                count,
                f"{serial_ms:,.0f}",
                f"{paper_serial:,}",
                f"{execute_ms:.1f}",
                paper_e,
                f"{control_ms:.1f}",
                paper_c,
            ]
        )
    return rows


def test_table4_latency(benchmark, report_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Table IV: processing latency, uniform workload (ms)",
        [
            "omega",
            "txns",
            "serial (model)",
            "serial (paper)",
            "nezha e (model)",
            "e (paper)",
            "nezha c (measured)",
            "c (paper)",
        ],
        rows,
        note="serial and (e) use the paper-calibrated EVM cost model; (c) is real",
    )
    report_table("table4_latency", table)
    print_table("Table IV", ["omega", "nezha c (ms)"], [[r[0], r[6]] for r in rows])
    # Shape assertions: serial latency dwarfs Nezha's, and (c) grows slowly.
    serial_by_omega = [float(r[2].replace(",", "")) for r in rows]
    control_by_omega = [float(r[6]) for r in rows]
    assert all(s > c * 10 for s, c in zip(serial_by_omega, control_by_omega))
    assert serial_by_omega[-1] > serial_by_omega[0] * 4  # linear in omega


def test_nezha_control_point(benchmark):
    """Micro-benchmark: Nezha CC over one omega=4 uniform epoch."""
    from repro.bench import make_scheme

    transactions = smallbank_epoch(4, scaled(BLOCK_SIZE), skew=0.0, seed=1)
    scheduler = make_scheme("nezha")
    benchmark(lambda: scheduler.schedule(transactions))
