"""Extension — substrate micro-benchmarks.

Not a paper figure: pytest-benchmark timings for the building blocks the
reproduction rests on (LSM store, MPT, SVM, Zipf sampling, PoW mining),
so substrate regressions are visible independently of the scheduling
results.
"""

from __future__ import annotations

import pytest

from repro.state import StateDB
from repro.state.mpt import MerklePatriciaTrie, verify_proof
from repro.storage import LSMStore, MemStore
from repro.vm import ExecutionContext, LoggedStorage, SVM
from repro.vm.contracts import compile_smallbank, smallbank_key_renderer
from repro.workload import ZipfSampler


@pytest.fixture
def lsm(tmp_path):
    store = LSMStore(tmp_path / "db", flush_bytes=1 << 20)
    yield store
    store.close()


def test_lsm_put(benchmark, lsm):
    counter = iter(range(10_000_000))

    def put():
        i = next(counter)
        lsm.put(f"key-{i:09d}".encode(), b"v" * 64)

    benchmark(put)


def test_lsm_get_hot(benchmark, lsm):
    for i in range(1_000):
        lsm.put(f"key-{i:06d}".encode(), b"v" * 64)
    lsm.flush()
    benchmark(lambda: lsm.get(b"key-000500"))


def test_memstore_get(benchmark):
    store = MemStore()
    for i in range(1_000):
        store.put(f"key-{i:06d}".encode(), b"v")
    benchmark(lambda: store.get(b"key-000500"))


def test_mpt_insert(benchmark):
    counter = iter(range(10_000_000))
    trie = MerklePatriciaTrie()

    def put():
        i = next(counter)
        trie.put(f"addr:{i:09d}".encode(), b"x" * 8)

    benchmark(put)


def test_mpt_lookup(benchmark):
    trie = MerklePatriciaTrie()
    for i in range(2_000):
        trie.put(f"addr:{i:06d}".encode(), b"x" * 8)
    benchmark(lambda: trie.get(b"addr:001000"))


def test_mpt_proof_roundtrip(benchmark):
    trie = MerklePatriciaTrie()
    for i in range(500):
        trie.put(f"addr:{i:06d}".encode(), b"x" * 8)

    def prove_and_verify():
        proof = trie.prove(b"addr:000250")
        return verify_proof(trie.root, b"addr:000250", proof)

    assert benchmark(prove_and_verify) == b"x" * 8


def test_statedb_commit(benchmark):
    db = StateDB()
    counter = iter(range(10_000_000))

    def commit_small_batch():
        base = next(counter) * 10
        for offset in range(10):
            db.set(f"acct:{base + offset:09d}", offset)
        return db.commit()

    benchmark(commit_small_batch)


def test_svm_smallbank_call(benchmark):
    code = compile_smallbank()["sendPayment"]
    svm = SVM()

    def call():
        storage = LoggedStorage(lambda a: 10_000)
        context = ExecutionContext(
            storage=storage, args=(1, 2, 50), key_renderer=smallbank_key_renderer
        )
        return svm.execute(code, context)

    receipt = benchmark(call)
    assert receipt.success


def test_zipf_sampling(benchmark):
    sampler = ZipfSampler(population=10_000, skew=0.9, seed=1)
    benchmark(sampler.sample)


def test_pow_mining_epoch(benchmark):
    from repro.dag import EpochCoordinator, Mempool, ParallelChains, PoWParams
    from repro.txn import make_transaction

    def mine_one_epoch():
        chains = ParallelChains(chain_count=2, pow_params=PoWParams(difficulty_bits=6))
        coordinator = EpochCoordinator(chains=chains, miners=["m"], block_size=5)
        pool = Mempool()
        pool.submit_many([make_transaction(i, writes=[f"w{i}"]) for i in range(50)])
        return coordinator.mine_epoch(pool, state_root=b"\x01" * 32)

    blocks = benchmark.pedantic(mine_one_epoch, rounds=5, iterations=1)
    assert len(blocks) == 2
