"""Figure 10 — latency of each concurrency-control sub-phase.

Paper setting: block concurrency 4, skew in {0.5, 0.6}, block size 200.
Findings: for CG, graph construction dominates at skew 0.5 and cycle
detection/removal explodes at 0.6; Nezha's graph construction is
negligible and its sorting latency stays stable as skew rises.

Default block size here is 150 — large enough that CG's cycle phase is
clearly dominant at skew 0.6 yet still completes within its cycle budget,
mirroring the paper's last measurable point.
"""

from __future__ import annotations

from repro.bench import make_scheme, render_table, run_scheme, scaled, smallbank_epoch

SKEWS = (0.5, 0.6)
OMEGA = 4
BLOCK_SIZE = 150
CG_CYCLE_BUDGET = 400_000


def sweep():
    rows = []
    for skew in SKEWS:
        transactions = smallbank_epoch(OMEGA, scaled(BLOCK_SIZE), skew=skew, seed=10)
        nezha = run_scheme(make_scheme("nezha"), transactions)
        cg = run_scheme(make_scheme("cg", cycle_budget=CG_CYCLE_BUDGET), transactions)
        for phase, seconds in nezha.phase_seconds.items():
            rows.append([skew, "nezha", phase, f"{seconds * 1000:.2f}"])
        for phase, seconds in cg.phase_seconds.items():
            label = f"{seconds * 1000:.2f}" + (" (FAILED)" if cg.failed else "")
            rows.append([skew, "cg", phase, label])
    return rows


def test_fig10_subphase_latency(benchmark, report_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Figure 10: per-sub-phase CC latency (ms), omega=4",
        ["skew", "scheme", "phase", "latency (ms)"],
        rows,
        note="paper: CG construction dominates at 0.5, cycle handling explodes at 0.6",
    )
    report_table("fig10_subphases", table)

    def phase_ms(skew, scheme, phase):
        for row in rows:
            if row[0] == skew and row[1] == scheme and row[2] == phase:
                return float(row[3].split()[0])
        raise AssertionError(f"missing cell {skew}/{scheme}/{phase}")

    # Nezha's construction cost is tiny relative to CG's at both skews.
    for skew in SKEWS:
        assert phase_ms(skew, "nezha", "graph_construction") < phase_ms(
            skew, "cg", "graph_construction"
        )
    # CG's cycle phase explodes between skew 0.5 and 0.6 (paper's story).
    assert phase_ms(0.6, "cg", "cycle_detection") > 5 * phase_ms(
        0.5, "cg", "cycle_detection"
    )
    # Nezha's sorting stays stable as skew rises.
    assert phase_ms(0.6, "nezha", "transaction_sorting") < 10 * max(
        phase_ms(0.5, "nezha", "transaction_sorting"), 0.5
    )


def test_nezha_rank_division_point(benchmark):
    """Micro-benchmark: rank division alone on a contended epoch."""
    from repro.core import build_acg, divide_ranks

    transactions = smallbank_epoch(OMEGA, scaled(BLOCK_SIZE), skew=0.6, seed=10)
    acg = build_acg(transactions)
    benchmark(lambda: divide_ranks(acg))
