"""Extension — state fast-path scaling sweep (flat + batched trie seal).

Not a paper figure: measures the per-epoch commit cost of the flat
journaled state (:class:`repro.state.flat.FlatStateDB`, sealing each
epoch with one ``put_batch`` subtree rebuild) against the trie-backed
reference ``StateDB`` (one ``put`` per dirty key) as the account
population grows 10k -> 1M.  Both backends share one content-addressed
node store and must produce bit-identical roots every epoch — the bench
asserts it, so the speedup can never come from skipping authentication.

Each epoch writes a fixed *fraction* of the accounts (2%), not a fixed
count: the cost of a batched seal is governed by how much of the trie
the batch's paths share, and the union of ``W`` random paths over ``N``
leaves shares everything above ``log16(W)`` — so per-write node count
tracks ``log16(N/W)``.  Holding ``N/W`` constant is what makes the
per-write cost comparable across three decades of state size; a
fixed-count sweep would instead measure how prefix sharing decays and
report trie depth growth as a fast-path regression.

Emits ``benchmarks/results/BENCH_state_scale.json`` with per-size commit
latencies, per-write costs, and speedups.  Two headline gates:

* at 100k accounts the flat path's epoch commit must be >= 3x cheaper
  than the reference;
* the flat path's *per-write* commit cost must stay flat with scale —
  within 2x from the smallest to the largest population swept.

Run directly (``PYTHONPATH=src python benchmarks/bench_state_scale.py``,
add ``--full`` for the 1M-account point) to refresh the JSON, or via
pytest where the ``perf_smoke``-marked test asserts both gates.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.state.flat import FlatStateDB
from repro.state.statedb import StateDB
from repro.storage.memstore import MemStore

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_state_scale.json"

SMOKE_SIZES = (10_000, 100_000)
FULL_SIZES = (10_000, 100_000, 1_000_000)
GATED_SIZE = 100_000
WRITE_FRACTION = 50  # each epoch rewrites accounts/50 keys (2% of state)
ROUNDS = 3
WARMUP_ROUNDS = 1  # untimed; fills the decoded-node cache to steady state
SEED = 7

SPEEDUP_FLOOR = 3.0
FLATNESS_CEILING = 2.0


def _epoch_size(count: int) -> int:
    return max(200, count // WRITE_FRACTION)


def _timed_rounds(writes: int, rounds: int) -> int:
    # Short commits (small populations) are the noisiest measurements
    # and the cheapest to repeat; buy stability with extra rounds there.
    return max(rounds, 4_000 // writes)


def _epoch_writes(rng: random.Random, count: int) -> dict[str, int]:
    return {
        f"acct-{rng.randrange(count):07d}": rng.randrange(1, 1 << 30)
        for _ in range(_epoch_size(count))
    }


def _measure_size(count: int, rounds: int) -> dict:
    store = MemStore()
    flat = FlatStateDB(store=store)
    genesis = flat.seed(
        {f"acct-{i:07d}": 100 for i in range(count)}
    )
    oracle = StateDB(store=store, root=genesis)
    rng = random.Random(SEED)
    writes_total = _epoch_size(count)
    flat_best = float("inf")
    oracle_best = float("inf")
    for index in range(WARMUP_ROUNDS + _timed_rounds(writes_total, rounds)):
        writes = _epoch_writes(rng, count)
        flat.apply_writes(writes)
        start = time.perf_counter()
        flat_root = flat.commit()
        flat_elapsed = time.perf_counter() - start
        oracle.apply_writes(writes)
        start = time.perf_counter()
        oracle_root = oracle.commit()
        oracle_elapsed = time.perf_counter() - start
        if flat_root != oracle_root:
            raise AssertionError(
                f"flat/oracle roots diverged at {count} accounts: "
                f"{flat_root.hex()[:16]} != {oracle_root.hex()[:16]}"
            )
        if index >= WARMUP_ROUNDS:
            # Min-of-rounds: scheduler noise only ever adds time.
            flat_best = min(flat_best, flat_elapsed)
            oracle_best = min(oracle_best, oracle_elapsed)
    return {
        "accounts": count,
        "writes_per_epoch": writes_total,
        "flat_commit_s": round(flat_best, 6),
        "oracle_commit_s": round(oracle_best, 6),
        "flat_per_write_us": round(1e6 * flat_best / writes_total, 3),
        "oracle_per_write_us": round(1e6 * oracle_best / writes_total, 3),
        "speedup": round(oracle_best / flat_best, 3) if flat_best else 0.0,
        "roots_identical": True,
    }


def measure_state_scale(rounds: int = ROUNDS, full: bool = False) -> dict:
    """Sweep the account populations; return the BENCH json payload."""
    sizes = FULL_SIZES if full else SMOKE_SIZES
    sweep = [_measure_size(count, rounds) for count in sizes]
    gated = next(entry for entry in sweep if entry["accounts"] == GATED_SIZE)
    per_write = [entry["flat_per_write_us"] for entry in sweep]
    flatness = max(per_write) / min(per_write) if min(per_write) else 0.0
    return {
        "benchmark": "state_scale",
        "workload": {
            "write_fraction": f"1/{WRITE_FRACTION}",
            "rounds": rounds,
            "warmup_rounds": WARMUP_ROUNDS,
            "seed": SEED,
            "sizes": list(sizes),
        },
        "sweep": sweep,
        "gated_accounts": GATED_SIZE,
        "speedup_at_gated": gated["speedup"],
        "flat_per_write_ratio": round(flatness, 3),
    }


def write_results(payload: dict, path: Path = RESULTS_PATH) -> None:
    """Persist the machine-readable benchmark artifact."""
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.perf_smoke
def test_state_scale_gates(report_table):
    """Flat state must be >= 3x cheaper at 100k and cost-flat with scale."""
    payload = measure_state_scale()
    write_results(payload)
    lines = ["accounts | flat us/write | oracle us/write | speedup"]
    for entry in payload["sweep"]:
        lines.append(
            f"{entry['accounts']:>8} | {entry['flat_per_write_us']:>13} | "
            f"{entry['oracle_per_write_us']:>15} | {entry['speedup']:.2f}x"
        )
    lines.append(f"flat per-write spread: {payload['flat_per_write_ratio']:.2f}x")
    report_table("state_scale", "\n".join(lines))
    speedup = payload["speedup_at_gated"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"flat commit speedup {speedup:.2f}x at {GATED_SIZE} accounts is "
        f"below the {SPEEDUP_FLOOR}x floor"
    )
    flatness = payload["flat_per_write_ratio"]
    assert flatness <= FLATNESS_CEILING, (
        f"flat per-write cost varies {flatness:.2f}x across the sweep "
        f"(ceiling {FLATNESS_CEILING}x)"
    )


def main() -> int:
    full = "--full" in sys.argv[1:]
    payload = measure_state_scale(full=full)
    write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    speedup = payload["speedup_at_gated"]
    flatness = payload["flat_per_write_ratio"]
    print(
        f"\nflat commit speedup at {GATED_SIZE} accounts: {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x); per-write spread {flatness:.2f}x "
        f"(ceiling {FLATNESS_CEILING}x)"
    )
    return 0 if speedup >= SPEEDUP_FLOOR and flatness <= FLATNESS_CEILING else 1


if __name__ == "__main__":
    sys.exit(main())
