"""Extension — dense-ID fast path vs string-keyed reference CC pipeline.

Not a paper figure: measures every Nezha sub-phase (Figure 10's
breakdown) on both implementations over the same contended epoch and
emits a machine-readable ``benchmarks/results/BENCH_cc_fastpath.json``
(p50/p95 per sub-phase, old vs new) — the start of the repo's perf
trajectory.  The headline number is the speedup on
``rank_division + transaction_sorting`` at skew 0.6, ω=12, which the
fast path must keep ≥ 2×.

Run directly (``PYTHONPATH=src python benchmarks/bench_cc_fastpath.py``)
to refresh the JSON, or via pytest where the ``perf_smoke``-marked test
asserts the speedup floor.
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

import pytest

from repro.bench import smallbank_epoch
from repro.core import NezhaConfig, NezhaScheduler

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_cc_fastpath.json"

SKEW = 0.6
OMEGA = 12
BLOCK_SIZE = 150
SEED = 10
ROUNDS = 9

PHASES = ("graph_construction", "rank_division", "transaction_sorting", "validation")
HEADLINE = "rank_plus_sort"
SPEEDUP_FLOOR = 2.0


def _percentiles(samples: list[float]) -> dict[str, float]:
    ordered = sorted(samples)
    rank = max(0, round(0.95 * (len(ordered) - 1)))
    return {
        "p50_ms": statistics.median(ordered) * 1e3,
        "p95_ms": ordered[rank] * 1e3,
    }


def _run_path(transactions, fast_path: bool, rounds: int) -> dict[str, dict[str, float]]:
    samples: dict[str, list[float]] = {phase: [] for phase in (*PHASES, HEADLINE)}
    scheduler = NezhaScheduler(NezhaConfig(fast_path=fast_path))
    for _ in range(rounds):
        timings = scheduler.schedule(transactions).timings
        for phase in PHASES:
            samples[phase].append(getattr(timings, phase))
        samples[HEADLINE].append(timings.rank_division + timings.transaction_sorting)
    return {phase: _percentiles(values) for phase, values in samples.items()}


def measure_fastpath(
    skew: float = SKEW,
    omega: int = OMEGA,
    block_size: int = BLOCK_SIZE,
    seed: int = SEED,
    rounds: int = ROUNDS,
) -> dict:
    """Measure both CC implementations; return the BENCH json payload."""
    transactions = smallbank_epoch(omega, block_size, skew=skew, seed=seed)
    fast = _run_path(transactions, fast_path=True, rounds=rounds)
    reference = _run_path(transactions, fast_path=False, rounds=rounds)
    speedup = reference[HEADLINE]["p50_ms"] / max(fast[HEADLINE]["p50_ms"], 1e-9)
    return {
        "benchmark": "cc_fastpath",
        "workload": {
            "generator": "smallbank",
            "skew": skew,
            "omega": omega,
            "block_size": block_size,
            "seed": seed,
            "txn_count": len(transactions),
        },
        "rounds": rounds,
        "fast": fast,
        "reference": reference,
        "speedup_rank_plus_sort_p50": round(speedup, 3),
    }


def write_results(payload: dict, path: Path = RESULTS_PATH) -> None:
    """Persist the machine-readable benchmark artifact."""
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.perf_smoke
def test_cc_fastpath_speedup(report_table):
    """Fast path must keep >= 2x on rank_division + transaction_sorting."""
    payload = measure_fastpath()
    write_results(payload)
    rows = [
        [
            phase,
            f"{payload['fast'][phase]['p50_ms']:.2f}",
            f"{payload['fast'][phase]['p95_ms']:.2f}",
            f"{payload['reference'][phase]['p50_ms']:.2f}",
            f"{payload['reference'][phase]['p95_ms']:.2f}",
        ]
        for phase in (*PHASES, HEADLINE)
    ]
    table_lines = ["phase | fast p50 | fast p95 | ref p50 | ref p95 (ms)"]
    table_lines += [" | ".join(row) for row in rows]
    table_lines.append(
        f"speedup (rank+sort, p50): {payload['speedup_rank_plus_sort_p50']:.2f}x"
    )
    report_table("cc_fastpath", "\n".join(table_lines))
    assert payload["speedup_rank_plus_sort_p50"] >= SPEEDUP_FLOOR


def main() -> int:
    payload = measure_fastpath()
    write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    speedup = payload["speedup_rank_plus_sort_p50"]
    print(f"\nrank+sort speedup: {speedup:.2f}x (floor {SPEEDUP_FLOOR}x)")
    return 0 if speedup >= SPEEDUP_FLOOR else 1


if __name__ == "__main__":
    sys.exit(main())
