"""Ablation — conflict detection: ACG mapping vs pairwise comparison.

Quantifies the paper's core complexity claim (Section IV-B): ACG
construction is linear in the number of read/write units, while the
conventional conflict graph compares every pair of transactions
(``O((|V|^2 - |V|) / 2)``).  We time both constructions alone over
growing batch sizes; the ratio should widen roughly linearly with N.
"""

from __future__ import annotations

import time

from repro.baselines import build_conflict_graph
from repro.bench import render_table, scaled, smallbank_epoch
from repro.core import build_acg

BATCH_SIZES = (100, 200, 400, 800, 1600)
SKEW = 0.4


def time_once(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def sweep():
    rows = []
    ratios = []
    for size in BATCH_SIZES:
        transactions = smallbank_epoch(1, scaled(size), skew=SKEW, seed=size)
        acg_seconds = min(time_once(lambda: build_acg(transactions)) for _ in range(3))
        cg_seconds = min(
            time_once(lambda: build_conflict_graph(transactions)) for _ in range(3)
        )
        ratio = cg_seconds / acg_seconds if acg_seconds else float("inf")
        ratios.append(ratio)
        rows.append(
            [
                len(transactions),
                f"{acg_seconds * 1000:.2f}",
                f"{cg_seconds * 1000:.2f}",
                f"{ratio:.1f}x",
            ]
        )
    return rows, ratios


def test_ablation_detection_cost(benchmark, report_table):
    rows, ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Ablation: conflict detection cost, ACG vs pairwise CG",
        ["txns", "ACG build (ms)", "CG build (ms)", "CG/ACG"],
        rows,
        note="ACG is O(units); pairwise comparison is O(N^2)",
    )
    report_table("ablation_detection", table)
    # The gap must widen with batch size (quadratic vs linear).
    assert ratios[-1] > ratios[0] * 2
    # And CG construction is slower at every non-trivial size.
    assert all(r > 1.0 for r in ratios[1:])


def test_acg_construction_point(benchmark):
    transactions = smallbank_epoch(4, scaled(200), skew=0.4, seed=9)
    benchmark(lambda: build_acg(transactions))


def test_cg_construction_point(benchmark):
    transactions = smallbank_epoch(4, scaled(200), skew=0.4, seed=9)
    benchmark.pedantic(
        lambda: build_conflict_graph(transactions), rounds=3, iterations=1
    )
