"""Extension — streaming epoch engine vs. the barrier pipeline.

Not a paper figure: measures the tentpole win of the streaming engine
(``repro.node.engine``) — overlapping epoch ``e+1``'s speculative
execution with epoch ``e``'s concurrency control + commit — and emits
``benchmarks/results/BENCH_streaming.json``.

Setup: a synthetic passthrough workload (precomputed read/write sets,
no contract execution) at skew 0.6 over ω=12 chains, four thread
workers, with the modelled per-transaction execution charge paying for
the simulated EVM latency.  The passthrough keeps speculation's own CPU
cost tiny, so the benchmark isolates exactly what the engine overlaps:
modelled execution time against the very real CC + commit CPU.  Both
arms replay the same pre-mined blocks:

* **barrier** — ``receive_epoch`` per epoch: validate → execute → CC →
  commit in strict sequence;
* **streaming** — ``submit_epoch`` per epoch + one final ``drain()``:
  epoch ``e+1`` executes while epoch ``e`` runs CC + commit in the
  background stage.

Gated claims (perf smoke):

* streaming holds >= 1.4x epochs/sec over barrier (best-of-``rounds``
  per arm — single-core hosts timeshare the two stages, so the floor
  survives even without real parallelism);
* every report is bit-identical between the arms — roots, commit and
  abort counts (DESIGN.md invariant 11);
* the speculation hit rate stays >= 0.9: the overlap win is real work
  kept, not re-execution hidden behind a faster clock.

The per-transaction charge makes wake-up scheduling part of the
measurement, so both arms run under a 1 ms GIL switch interval
(restored afterwards) to keep sleep wake-ups from stalling behind the
background stage's CPU-bound CC + commit.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.core import NezhaScheduler
from repro.dag import EpochCoordinator, Mempool, ParallelChains, PoWParams
from repro.dag.block import Block
from repro.node import FullNode, PipelineConfig
from repro.state.flat import make_statedb
from repro.workload.generator import SyntheticConfig, SyntheticWorkload

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_streaming.json"

OMEGA = 12
BLOCK_SIZE = 200
EPOCHS = 8
SKEW = 0.6
SEED = 42
ADDRESSES = 1_000_000
READS_PER_TXN = 1
WRITES_PER_TXN = 2
WORKERS = 4
ROUNDS = 3
SPEEDUP_FLOOR = 1.4
HIT_RATE_FLOOR = 0.9

CHARGE_SECONDS = 0.0006
"""Modelled per-transaction execution latency (same order as the
paper's EVM testbed rate); sized so the execution phase roughly matches
CC + commit — the regime where overlapping them pays the most."""

SWITCH_INTERVAL = 0.001
"""GIL switch interval during measurement: a charged chunk wakes from
its sleep into contention with the background stage's CPU-bound CC +
commit; the default 5 ms interval turns each wake-up into a stall."""


def _mine_epochs() -> tuple[PoWParams, list[list[Block]]]:
    """Pre-mine the replayed block sequence with a matching probe node."""
    config = SyntheticConfig(
        address_count=ADDRESSES,
        reads_per_txn=READS_PER_TXN,
        writes_per_txn=WRITES_PER_TXN,
        skew=SKEW,
        seed=SEED,
    )
    pow_params = PoWParams(4)
    coordinator = EpochCoordinator(
        chains=ParallelChains(chain_count=OMEGA, pow_params=pow_params),
        miners=["miner-0"],
        block_size=BLOCK_SIZE,
    )
    mempool = Mempool()
    mempool.submit_many(
        SyntheticWorkload(config).generate(EPOCHS * OMEGA * BLOCK_SIZE + 500)
    )
    probe = _make_node(pow_params, streaming=False, charge=0.0)
    epochs: list[list[Block]] = []
    root = probe.state_root
    with probe:
        for _ in range(EPOCHS):
            blocks = coordinator.mine_epoch(mempool, state_root=root)
            epochs.append(blocks)
            root = probe.receive_epoch(blocks).state_root
    return pow_params, epochs


def _make_node(
    pow_params: PoWParams, streaming: bool, charge: float
) -> FullNode:
    return FullNode(
        chains=ParallelChains(chain_count=OMEGA, pow_params=pow_params),
        state=make_statedb(),
        scheduler=NezhaScheduler(),
        registry=None,
        config=PipelineConfig(
            workers=WORKERS,
            backend="thread",
            streaming=streaming,
            txn_cost_seconds=charge,
        ),
    )


def _replay(
    pow_params: PoWParams, epochs: list[list[Block]], streaming: bool
) -> tuple[float, list[tuple], float]:
    """One full replay; returns (wall seconds, fingerprints, hit rate)."""
    node = _make_node(pow_params, streaming, CHARGE_SECONDS)
    with node:
        start = time.perf_counter()
        if streaming:
            for blocks in epochs:
                node.submit_epoch(blocks)
            node.drain()
        else:
            for blocks in epochs:
                node.receive_epoch(blocks)
        wall = time.perf_counter() - start
        hit_rate = node.engine.stats.hit_rate if node.engine else 0.0
        fingerprints = [
            (
                report.state_root.hex(),
                report.committed,
                report.aborted,
                report.failed_simulation,
                report.input_transactions,
                report.commit_group_count,
            )
            for report in node.reports
        ]
    return wall, fingerprints, hit_rate


def measure_streaming(rounds: int = ROUNDS) -> dict:
    """The BENCH json payload: best-of-``rounds`` wall per arm.

    Arms alternate (barrier, streaming, barrier, ...) so slow-host noise
    hits both equally; best-of is the noise-robust estimator for a
    ratio gate on a shared machine.
    """
    pow_params, epochs = _mine_epochs()
    previous = sys.getswitchinterval()
    sys.setswitchinterval(SWITCH_INTERVAL)
    try:
        barrier_walls: list[float] = []
        streaming_walls: list[float] = []
        identical = True
        hit_rate = 0.0
        for _ in range(rounds):
            barrier_wall, barrier_fp, _ = _replay(pow_params, epochs, False)
            stream_wall, stream_fp, hit_rate = _replay(
                pow_params, epochs, True
            )
            barrier_walls.append(barrier_wall)
            streaming_walls.append(stream_wall)
            identical = identical and barrier_fp == stream_fp
    finally:
        sys.setswitchinterval(previous)
    barrier_best = min(barrier_walls)
    streaming_best = min(streaming_walls)
    return {
        "benchmark": "streaming",
        "workload": {
            "generator": "synthetic",
            "omega": OMEGA,
            "block_size": BLOCK_SIZE,
            "epochs": EPOCHS,
            "skew": SKEW,
            "seed": SEED,
            "address_count": ADDRESSES,
            "reads_per_txn": READS_PER_TXN,
            "writes_per_txn": WRITES_PER_TXN,
            "charge_ms_per_txn": round(CHARGE_SECONDS * 1e3, 4),
        },
        "rounds": rounds,
        "workers": WORKERS,
        "barrier_ms_per_epoch": round(barrier_best / EPOCHS * 1e3, 3),
        "streaming_ms_per_epoch": round(streaming_best / EPOCHS * 1e3, 3),
        "barrier_epochs_per_sec": round(EPOCHS / barrier_best, 3),
        "streaming_epochs_per_sec": round(EPOCHS / streaming_best, 3),
        "speedup_best": round(barrier_best / max(streaming_best, 1e-9), 3),
        "speculation_hit_rate": round(hit_rate, 4),
        "reports_identical": identical,
    }


def write_results(payload: dict, path: Path = RESULTS_PATH) -> None:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.perf_smoke
def test_streaming_speedup(report_table):
    """Streaming must hold >= 1.4x epochs/sec, bit-identical reports."""
    payload = measure_streaming()
    write_results(payload)
    lines = [
        "arm | ms/epoch | epochs/sec",
        f"barrier | {payload['barrier_ms_per_epoch']:.1f} | "
        f"{payload['barrier_epochs_per_sec']:.2f}",
        f"streaming | {payload['streaming_ms_per_epoch']:.1f} | "
        f"{payload['streaming_epochs_per_sec']:.2f}",
        f"speedup (best-of-{payload['rounds']}): "
        f"{payload['speedup_best']:.2f}x",
        f"speculation hit rate: {payload['speculation_hit_rate']:.2f}",
        f"reports identical: {payload['reports_identical']}",
    ]
    report_table("streaming", "\n".join(lines))
    assert payload["reports_identical"]
    assert payload["speculation_hit_rate"] >= HIT_RATE_FLOOR
    assert payload["speedup_best"] >= SPEEDUP_FLOOR


def main() -> int:
    payload = measure_streaming()
    write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(
        f"\nstreaming speedup: {payload['speedup_best']:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x), hit rate "
        f"{payload['speculation_hit_rate']:.2f}, identical "
        f"{payload['reports_identical']}"
    )
    return (
        0
        if payload["speedup_best"] >= SPEEDUP_FLOOR
        and payload["reports_identical"]
        else 1
    )


if __name__ == "__main__":
    sys.exit(main())
