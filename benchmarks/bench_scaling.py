"""Extension — asymptotic scaling of Nezha's concurrency control.

Section IV-B claims ACG construction is linear in the number of units and
hierarchical sorting avoids any quadratic pass.  This bench measures
end-to-end Nezha scheduling cost across a 16x range of batch sizes and
asserts near-linear growth (doubling the batch must cost well under 3x),
in contrast to the pairwise CG construction measured in
``bench_ablation_detection.py``.
"""

from __future__ import annotations

from repro.analysis import Summary
from repro.bench import make_scheme, render_table, run_scheme, scaled, smallbank_epoch

SIZES = (250, 500, 1_000, 2_000, 4_000)
SKEW = 0.4
ROUNDS = 3


def sweep():
    rows = []
    means = []
    for size in SIZES:
        transactions = smallbank_epoch(1, scaled(size), skew=SKEW, seed=size)
        samples = [
            run_scheme(make_scheme("nezha"), transactions).total_seconds
            for _ in range(ROUNDS)
        ]
        mean = Summary.of(samples).mean
        means.append(mean)
        per_txn = mean / max(len(transactions), 1) * 1e6
        rows.append(
            [
                len(transactions),
                f"{mean * 1000:.2f}",
                f"{per_txn:.1f}",
            ]
        )
    return rows, means


def test_nezha_scales_linearly(benchmark, report_table):
    rows, means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Extension: Nezha CC latency vs batch size (skew 0.4)",
        ["txns", "latency (ms)", "us per txn"],
        rows,
        note="near-constant us/txn = the paper's linear-time claim",
    )
    report_table("scaling", table)
    for smaller, larger in zip(means, means[1:]):
        assert larger < smaller * 3.2, "super-linear growth detected"
    # Over the whole 16x range, cost per transaction at the top is within
    # 4x of the bottom (allows cache effects, forbids quadratic blowup).
    per_txn_small = means[0] / SIZES[0]
    per_txn_large = means[-1] / SIZES[-1]
    assert per_txn_large < per_txn_small * 4


def test_nezha_large_batch_point(benchmark):
    transactions = smallbank_epoch(1, scaled(2_000), skew=SKEW, seed=77)
    scheduler = make_scheme("nezha")
    benchmark.pedantic(lambda: scheduler.schedule(transactions), rounds=3, iterations=1)
