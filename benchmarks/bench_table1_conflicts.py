"""Table I — theoretical number of conflicts in a DAG-based blockchain.

Paper setting: block size 20 transactions, Zipfian access over 10k
accounts, block concurrency 2/4/6/8.  The paper reports the total
conflicts as a coefficient of the pairwise conflict probability ``p``
(780p / 3,160p / 7,140p / 12,720p) and the average conflicts per address
(26p / 56p / 106p / 150p).  We print the analytical coefficients from our
model next to empirically measured conflicts on generated workloads.
"""

from __future__ import annotations

from repro.analysis import (
    conflicts_per_address,
    expected_distinct_addresses,
    measure_conflicts,
    pairwise_conflict_count,
)
from repro.bench import print_table, render_table, smallbank_epoch
from repro.workload import ZipfSampler

BLOCK_SIZE = 20
CONCURRENCIES = (2, 4, 6, 8)
ACCOUNTS = 10_000
PAPER_TOTALS = {2: 780, 4: 3_160, 6: 7_140, 8: 12_720}
PAPER_PER_ADDRESS = {2: 26, 4: 56, 6: 106, 8: 150}
TABLE1_SKEW = 1.4
"""Zipf exponent of the paper's "fixed Zipfian distribution".

The paper does not state the exponent; 1.4 makes the expected distinct
address count (30/50/66/80 for 80-320 accesses) match the divisors
implied by its per-address row (30/56/67/85) almost exactly.
"""

ACCESSES_PER_TXN = 2  # SmallBank transactions touch ~2 addresses on average


def build_rows():
    sampler = ZipfSampler(population=ACCOUNTS, skew=TABLE1_SKEW, seed=0)
    rows = []
    for omega in CONCURRENCIES:
        transaction_count = omega * BLOCK_SIZE
        total_coefficient = pairwise_conflict_count(transaction_count)
        per_address = conflicts_per_address(
            transaction_count, ACCESSES_PER_TXN, sampler
        )
        distinct = expected_distinct_addresses(
            transaction_count * ACCESSES_PER_TXN, sampler
        )
        measured = measure_conflicts(
            smallbank_epoch(omega, BLOCK_SIZE, skew=TABLE1_SKEW, account_count=ACCOUNTS)
        )
        rows.append(
            [
                omega,
                f"{total_coefficient:,.0f}p",
                f"{PAPER_TOTALS[omega]:,}p",
                f"{per_address:.0f}p",
                f"{PAPER_PER_ADDRESS[omega]}p",
                f"{distinct:.0f}",
                measured.conflicting_pairs,
                f"{measured.conflict_probability:.4f}",
            ]
        )
    return rows


def test_table1_conflict_model(benchmark, report_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = render_table(
        "Table I: conflicts vs block concurrency (block size 20, 10k accounts)",
        [
            "omega",
            "total (ours)",
            "total (paper)",
            "per-addr (ours)",
            "per-addr (paper)",
            "E[distinct addrs]",
            "measured pairs",
            "measured p",
        ],
        rows,
        note="totals are exact C(N,2); per-address uses the Zipf distinct-address model",
    )
    report_table("table1_conflicts", table)
    print_table("Table I", ["omega", "total"], [[r[0], r[1]] for r in rows])
    # The analytical totals are exact and must match the paper.
    for row, omega in zip(rows, CONCURRENCIES):
        assert row[1] == f"{PAPER_TOTALS[omega]:,}p"


def test_conflict_growth_is_superlinear(benchmark):
    totals = benchmark.pedantic(
        lambda: [pairwise_conflict_count(omega * BLOCK_SIZE) for omega in CONCURRENCIES],
        rounds=1,
        iterations=1,
    )
    # Power-law growth: doubling concurrency should ~quadruple conflicts.
    assert totals[1] / totals[0] > 3.5
    assert totals[3] / totals[1] > 3.5
