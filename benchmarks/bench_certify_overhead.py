"""Extension — schedule-certifier overhead on the epoch hot path.

Not a paper figure: proves the proof-carrying certificate check is
cheap enough to leave on in production runs.  The same pre-mined epochs
are replayed through two identically-seeded full nodes — one plain, one
with ``PipelineConfig(certify=True)`` so every epoch's conflict graph
is rebuilt and checked from scratch — interleaved round by round so
machine drift hits both alike.  The headline is the relative gap
between the certified and plain p50 epoch-processing latencies, which
must stay under ``OVERHEAD_CEILING`` (5%).

Run directly (``PYTHONPATH=src python benchmarks/bench_certify_overhead.py``)
to refresh ``benchmarks/results/BENCH_certify_overhead.json``, or via
pytest where the ``perf_smoke``-marked test asserts the ceiling.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

import pytest

from repro.core import NezhaScheduler
from repro.dag import EpochCoordinator, Mempool, ParallelChains, PoWParams
from repro.node import FullNode, PipelineConfig
from repro.state import StateDB
from repro.vm.contracts import default_registry
from repro.workload import SmallBankConfig, SmallBankWorkload, initial_state

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_certify_overhead.json"

SKEW = 0.6
OMEGA = 4
BLOCK_SIZE = 120
ACCOUNTS = 2_000
SEED = 31
EPOCHS = 3
ROUNDS = 6
POW_BITS = 4

OVERHEAD_CEILING = 0.05

WORKLOAD_CONFIG = SmallBankConfig(account_count=ACCOUNTS, skew=SKEW, seed=SEED)


def _fresh_node(certify: bool) -> FullNode:
    state = StateDB()
    state.seed(initial_state(WORKLOAD_CONFIG))
    return FullNode(
        chains=ParallelChains(chain_count=OMEGA, pow_params=PoWParams(POW_BITS)),
        state=state,
        scheduler=NezhaScheduler(),
        registry=default_registry(),
        config=PipelineConfig(certify=certify),
    )


def _premine(epochs: int) -> list[list]:
    """Mine the shared epoch sequence once (off the measured path)."""
    driver = _fresh_node(certify=False)
    chains = ParallelChains(
        chain_count=OMEGA, pow_params=driver.chains.pow_params
    )
    coordinator = EpochCoordinator(
        chains=chains, miners=["m0", "m1"], block_size=BLOCK_SIZE
    )
    pool = Mempool()
    pool.submit_many(
        SmallBankWorkload(WORKLOAD_CONFIG).generate(
            epochs * OMEGA * BLOCK_SIZE + 200
        )
    )
    mined = []
    with driver:
        for _ in range(epochs):
            blocks = coordinator.mine_epoch(pool, state_root=driver.state_root)
            driver.receive_epoch(blocks)
            mined.append(blocks)
    return mined


def _replay(epoch_blocks: list[list], certify: bool) -> list[float]:
    """Per-epoch processing seconds through one fresh node."""
    node = _fresh_node(certify)
    samples = []
    with node:
        for blocks in epoch_blocks:
            start = time.perf_counter()
            node.receive_epoch(blocks)
            samples.append(time.perf_counter() - start)
        if certify:
            reports = node.reports
            if not reports or any(r.certificate is None for r in reports):
                raise RuntimeError("certified replay produced no certificates")
            if any(not r.certificate.ok for r in reports):
                raise RuntimeError("certified replay rejected an epoch")
    return samples


def _percentiles(samples: list[float]) -> dict[str, float]:
    ordered = sorted(samples)
    rank = max(0, round(0.95 * (len(ordered) - 1)))
    return {
        "p50_ms": statistics.median(ordered) * 1e3,
        "p95_ms": ordered[rank] * 1e3,
    }


def measure_certify_overhead(epochs: int = EPOCHS, rounds: int = ROUNDS) -> dict:
    """Replay certified and plain nodes interleaved; return the payload."""
    mined = _premine(epochs)
    plain: list[float] = []
    certified: list[float] = []
    _replay(mined, certify=True)  # warm-up: primes caches/pools
    for _ in range(rounds):
        plain.extend(_replay(mined, certify=False))
        certified.extend(_replay(mined, certify=True))
    plain_stats = _percentiles(plain)
    certified_stats = _percentiles(certified)
    overhead = (
        certified_stats["p50_ms"] - plain_stats["p50_ms"]
    ) / plain_stats["p50_ms"]
    return {
        "benchmark": "certify_overhead",
        "workload": {
            "generator": "smallbank",
            "skew": SKEW,
            "omega": OMEGA,
            "block_size": BLOCK_SIZE,
            "accounts": ACCOUNTS,
            "seed": SEED,
            "epochs": epochs,
        },
        "rounds": rounds,
        "plain": plain_stats,
        "certified": certified_stats,
        "overhead_frac_p50": round(overhead, 4),
        "ceiling_frac": OVERHEAD_CEILING,
    }


def write_results(payload: dict, path: Path = RESULTS_PATH) -> None:
    """Persist the machine-readable benchmark artifact."""
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.perf_smoke
def test_certify_overhead_under_ceiling(report_table):
    """Certification-on must add < 5% to p50 epoch-processing latency."""
    payload = measure_certify_overhead()
    write_results(payload)
    report_table(
        "certify_overhead",
        "\n".join(
            [
                "mode | p50 ms | p95 ms",
                f"plain | {payload['plain']['p50_ms']:.2f} | "
                f"{payload['plain']['p95_ms']:.2f}",
                f"certified | {payload['certified']['p50_ms']:.2f} | "
                f"{payload['certified']['p95_ms']:.2f}",
                f"overhead (p50): {100 * payload['overhead_frac_p50']:.2f}% "
                f"(ceiling {100 * OVERHEAD_CEILING:.0f}%)",
            ]
        ),
    )
    assert payload["overhead_frac_p50"] < OVERHEAD_CEILING


def main() -> int:
    payload = measure_certify_overhead()
    write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    overhead = payload["overhead_frac_p50"]
    print(
        f"\ncertification overhead: {100 * overhead:.2f}% "
        f"(ceiling {100 * OVERHEAD_CEILING:.0f}%)"
    )
    return 0 if overhead < OVERHEAD_CEILING else 1


if __name__ == "__main__":
    sys.exit(main())
