"""Ablation — cost and necessity of the safety-validation pass.

DESIGN.md documents that Algorithm 2 as printed can miss rare corner
cases; our implementation adds a linear validation pass.  This ablation
measures (a) the latency overhead of that pass and (b) how many invariant
violations it actually catches across contention levels — demonstrating
it is both cheap and necessary.
"""

from __future__ import annotations

from repro.bench import render_table, scaled, smallbank_epoch
from repro.core import NezhaConfig, NezhaScheduler, check_invariants

SKEWS = (0.2, 0.6, 1.0)
OMEGA = 4
BLOCK_SIZE = 100
ROUNDS = 3


def sweep():
    rows = []
    caught_total = 0
    for skew in SKEWS:
        with_validation = NezhaScheduler(NezhaConfig(enable_validation=True))
        without_validation = NezhaScheduler(
            NezhaConfig(enable_validation=False, enable_reorder=False)
        )
        overheads = []
        violations = 0
        for round_no in range(ROUNDS):
            transactions = smallbank_epoch(
                OMEGA, scaled(BLOCK_SIZE), skew=skew, seed=500 + round_no
            )
            validated = with_validation.schedule(transactions)
            overheads.append(
                validated.timings.validation / max(validated.timings.total, 1e-9)
            )
            raw = without_validation.schedule(transactions)
            problems = check_invariants(
                transactions, raw.schedule.sequences(), set(raw.schedule.aborted)
            )
            violations += len(problems)
        caught_total += violations
        rows.append(
            [
                skew,
                f"{100 * sum(overheads) / len(overheads):.1f}%",
                violations,
            ]
        )
    return rows, caught_total


def test_ablation_validation_pass(benchmark, report_table):
    rows, caught_total = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Ablation: safety-validation pass",
        ["skew", "validation share of CC time", "violations caught (no-validate run)"],
        rows,
        note="violations = invariant breaches Algorithm 2 alone would commit",
    )
    report_table("ablation_validation", table)
    # The pass stays a modest fraction of total CC time.
    for row in rows:
        assert float(row[1].rstrip("%")) < 60.0
    # And it is not vacuous: under contention it catches real violations.
    assert caught_total > 0


def test_validation_latency_point(benchmark):
    from repro.core import build_acg, divide_ranks, sort_transactions, validate_sort

    transactions = smallbank_epoch(OMEGA, scaled(BLOCK_SIZE), skew=1.0, seed=502)
    acg = build_acg(transactions)
    order = divide_ranks(acg)
    by_id = {t.txid: t for t in transactions}

    def run_validation():
        state = sort_transactions(acg, order, by_id)
        return validate_sort(acg, state, transactions=by_id, enable_reorder=True)

    benchmark(run_validation)
