"""Extension — process-parallel speculative execution scaling.

Not a paper figure: measures the execution phase (Section III-B, the
part the paper calls embarrassingly parallel) across the three executor
backends and emits ``benchmarks/results/BENCH_exec_parallel.json``.

Two measurement modes, both on the SmallBank workload:

* **Headline (raw, gated)** — real wall-clock of ``execute_batch`` for
  the serial backend (snapshot reads through the MPT) versus four
  process workers (flat delta-synced state replicas, plain dict reads).
  The process backend must hold ≥ 2×; the win combines replica reads
  with multi-core execution, and survives even single-core hosts.
* **Calibrated scaling sweep** — each speculative run additionally pays
  the paper-calibrated per-transaction EVM latency (see
  ``repro.vm.costmodel``: our native contracts execute orders of
  magnitude faster than the paper's EVM stack, so reproducing the
  *shape* of execution-phase scaling requires charging modelled
  execution time).  Worker sweep 1/2/4/8 × zipf skew, with serial and
  thread baselines; coordination overhead (wire codec, pipes, delta
  sync) is real measured time.

The benchmark also commits both backends' schedules end to end (two
epochs, delta sync in between) and asserts the resulting state roots are
bit-identical across serial, thread, and process backends.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

import pytest

from repro.bench import smallbank_epoch
from repro.core import NezhaScheduler
from repro.node import Committer, ConcurrentExecutor
from repro.state import StateDB
from repro.vm.contracts import default_registry
from repro.vm.costmodel import PAPER_CONCURRENT_SPEEDUP, PAPER_SERIAL_MS_PER_TXN
from repro.workload import SmallBankConfig, initial_state

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_exec_parallel.json"

OMEGA = 8
BLOCK_SIZE = 100
SEED = 10
ACCOUNTS = 10_000
HEADLINE_SKEW = 0.6
SWEEP_SKEWS = (0.2, 0.6)
WORKER_SWEEP = (1, 2, 4, 8)
ROUNDS = 3
SPEEDUP_FLOOR = 2.0

CHARGE_SECONDS = (PAPER_SERIAL_MS_PER_TXN / 1000.0) / PAPER_CONCURRENT_SPEEDUP
"""Modelled per-transaction execution latency of the concurrent phase:
the paper's effective per-transaction rate (~0.31 ms) on its EVM testbed."""


def _config() -> SmallBankConfig:
    return SmallBankConfig(account_count=ACCOUNTS, skew=HEADLINE_SKEW, seed=SEED)


def _seeded_state() -> StateDB:
    state = StateDB()
    state.seed(initial_state(_config()))
    return state


def _make_executor(
    backend: str, workers: int, state: StateDB, charge: float = 0.0
) -> ConcurrentExecutor:
    return ConcurrentExecutor(
        registry=default_registry(),
        workers=workers,
        backend=backend,
        state_provider=lambda: dict(state.items()),
        txn_cost_seconds=charge,
    )


def _time_batches(executor, txns, read_fn, rounds: int) -> float:
    """Median wall-clock seconds of ``execute_batch`` over ``rounds``.

    One untimed warm-up run first: pool spawn and replica bootstrap are
    one-off costs amortised over a node's lifetime, while the steady
    state per epoch is what the execution phase pays.
    """
    executor.execute_batch(txns, read_fn)
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        executor.execute_batch(txns, read_fn)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure_headline(rounds: int = ROUNDS) -> dict:
    """Raw execution-phase latency: serial oracle vs 4 process workers."""
    txns = smallbank_epoch(OMEGA, BLOCK_SIZE, skew=HEADLINE_SKEW, seed=SEED)
    state = _seeded_state()
    snapshot = state.snapshot()
    with _make_executor("serial", 0, state) as serial:
        serial_p50 = _time_batches(serial, txns, snapshot.get, rounds)
    with _make_executor("process", 4, state) as process:
        process_p50 = _time_batches(process, txns, snapshot.get, rounds)
        engaged = process.resolved_backend
    return {
        "txn_count": len(txns),
        "serial_p50_ms": round(serial_p50 * 1e3, 3),
        "process4_p50_ms": round(process_p50 * 1e3, 3),
        "process_backend_engaged": engaged == "process",
        "speedup_p50": round(serial_p50 / max(process_p50, 1e-9), 3),
    }


def measure_roots() -> dict:
    """Commit two epochs per backend; state roots must be bit-identical.

    Epoch 2 executes against epoch 1's committed state, so the process
    backend's roots are only right if the write-delta replica sync is.
    """
    batches = [
        smallbank_epoch(OMEGA, BLOCK_SIZE, skew=HEADLINE_SKEW, seed=seed)
        for seed in (SEED, SEED + 1)
    ]
    roots: dict[str, str] = {}
    for label, backend, workers in (
        ("serial", "serial", 0),
        ("thread4", "thread", 4),
        ("process4", "process", 4),
    ):
        state = _seeded_state()
        committer = Committer()
        with _make_executor(backend, workers, state) as executor:
            last_root = b""
            for txns in batches:
                batch = executor.execute_batch(txns, state.snapshot().get)
                result = NezhaScheduler().schedule(batch.transactions())
                report = committer.commit(
                    result.schedule, batch.write_values(), state
                )
                if report.write_delta:
                    executor.apply_delta(report.write_delta)
                last_root = report.state_root
        roots[label] = last_root.hex()
    return {
        "roots": roots,
        "roots_identical": len(set(roots.values())) == 1,
    }


def measure_scaling(rounds: int = ROUNDS) -> dict:
    """Calibrated sweep: workers × skew at the modelled EVM rate."""
    sweep: dict[str, dict] = {"charge_ms_per_txn": round(CHARGE_SECONDS * 1e3, 4)}
    for skew in SWEEP_SKEWS:
        txns = smallbank_epoch(OMEGA, BLOCK_SIZE, skew=skew, seed=SEED)
        state = _seeded_state()
        snapshot = state.snapshot()
        entry: dict[str, dict] = {}
        with _make_executor("serial", 0, state, CHARGE_SECONDS) as serial:
            serial_p50 = _time_batches(serial, txns, snapshot.get, rounds)
        entry["serial"] = {"p50_ms": round(serial_p50 * 1e3, 3)}
        with _make_executor("thread", 4, state, CHARGE_SECONDS) as threaded:
            thread_p50 = _time_batches(threaded, txns, snapshot.get, rounds)
        entry["thread_w4"] = {
            "p50_ms": round(thread_p50 * 1e3, 3),
            "speedup": round(serial_p50 / max(thread_p50, 1e-9), 3),
        }
        for workers in WORKER_SWEEP:
            with _make_executor("process", workers, state, CHARGE_SECONDS) as proc:
                p50 = _time_batches(proc, txns, snapshot.get, rounds)
                backend = proc.resolved_backend
            entry[f"process_w{workers}"] = {
                "p50_ms": round(p50 * 1e3, 3),
                "speedup": round(serial_p50 / max(p50, 1e-9), 3),
                "resolved_backend": backend,
            }
        sweep[f"skew_{skew}"] = entry
    return sweep


def measure_exec_parallel(rounds: int = ROUNDS, full: bool = True) -> dict:
    """The BENCH json payload; ``full=False`` skips the calibrated sweep."""
    payload = {
        "benchmark": "exec_parallel",
        "workload": {
            "generator": "smallbank",
            "omega": OMEGA,
            "block_size": BLOCK_SIZE,
            "skew": HEADLINE_SKEW,
            "seed": SEED,
            "account_count": ACCOUNTS,
        },
        "rounds": rounds,
        "headline": measure_headline(rounds),
        **measure_roots(),
    }
    if full:
        payload["calibrated"] = measure_scaling(rounds)
    return payload


def write_results(payload: dict, path: Path = RESULTS_PATH) -> None:
    """Persist the artifact; a headline-only payload keeps the committed
    calibrated sweep from the previous full run."""
    if "calibrated" not in payload:
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = {}
        if "calibrated" in previous:
            payload = {**payload, "calibrated": previous["calibrated"]}
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.perf_smoke
def test_exec_parallel_speedup(report_table):
    """4 process workers must hold >= 2x on the execution phase, with
    state roots bit-identical across all three backends."""
    payload = measure_exec_parallel(full=False)
    write_results(payload)
    headline = payload["headline"]
    lines = [
        "backend | exec-phase p50 (ms)",
        f"serial | {headline['serial_p50_ms']:.2f}",
        f"process x4 | {headline['process4_p50_ms']:.2f}",
        f"speedup (p50): {headline['speedup_p50']:.2f}x",
        f"roots identical across backends: {payload['roots_identical']}",
    ]
    report_table("exec_parallel", "\n".join(lines))
    assert headline["process_backend_engaged"]
    assert payload["roots_identical"], payload["roots"]
    assert headline["speedup_p50"] >= SPEEDUP_FLOOR


def main() -> int:
    payload = measure_exec_parallel(full=True)
    write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    speedup = payload["headline"]["speedup_p50"]
    print(f"\nexecution-phase speedup at 4 process workers: {speedup:.2f}x "
          f"(floor {SPEEDUP_FLOOR}x)")
    print(f"roots identical: {payload['roots_identical']}")
    return 0 if speedup >= SPEEDUP_FLOOR and payload["roots_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
