"""Extension — operation-level CC (commutative delta writes) skew sweep.

Not a paper figure: measures how many of the baseline pipeline's
``unserializable_write`` aborts the delta-CC path dissolves, across the
contention sweep the paper uses for SmallBank.  Hot-key read-modify-
writes (``updateSavings``, ``updateBalance``, ``sendPayment``'s deposit)
are statically proven commutative, promoted to delta units, and folded
at commit — so the write-write conflicts that dominate under skew simply
stop being conflicts.

Emits ``benchmarks/results/BENCH_delta_cc.json`` with per-skew abort
counts, committed counts, and commuted-unit counts for both modes.  The
headline gate: at skew 0.9 the ``unserializable_write`` abort count must
drop by at least 40% versus the baseline run of the same epochs.

Run directly (``PYTHONPATH=src python benchmarks/bench_delta_cc.py``)
to refresh the JSON, or via pytest where the ``perf_smoke``-marked test
asserts the abort-drop floor.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.bench.harness import make_scheme
from repro.net import Cluster, ClusterConfig

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_delta_cc.json"

SKEWS = (0.0, 0.6, 0.9, 0.99)
GATED_SKEW = 0.9
OMEGA = 8
BLOCK_SIZE = 150
ACCOUNT_COUNT = 10_000
SEED = 42
EPOCHS = 2

UNSERIALIZABLE = "unserializable_write"
ABORT_DROP_FLOOR = 0.40


def _run_cluster(skew: float, delta_cc: bool, epochs: int) -> dict:
    config = ClusterConfig(
        block_concurrency=OMEGA,
        block_size=BLOCK_SIZE,
        skew=skew,
        account_count=ACCOUNT_COUNT,
        seed=SEED,
        delta_cc=delta_cc,
    )
    with Cluster(make_scheme("nezha"), config) as cluster:
        cluster.feed_client(OMEGA * BLOCK_SIZE * epochs)
        run = cluster.run_epochs(epochs)
    reports = [outcome.report for outcome in run.outcomes]
    return {
        "committed": run.committed,
        "aborted": sum(report.aborted for report in reports),
        "unserializable_write": sum(
            report.abort_reasons.get(UNSERIALIZABLE, 0) for report in reports
        ),
        "delta_overflow": sum(
            report.abort_reasons.get("delta_overflow", 0) for report in reports
        ),
        "delta_commuted": sum(report.delta_commuted for report in reports),
    }


def measure_delta_cc(epochs: int = EPOCHS) -> dict:
    """Sweep the skews in both modes; return the BENCH json payload."""
    sweep = []
    for skew in SKEWS:
        baseline = _run_cluster(skew, delta_cc=False, epochs=epochs)
        delta = _run_cluster(skew, delta_cc=True, epochs=epochs)
        drop = (
            1.0 - delta[UNSERIALIZABLE] / baseline[UNSERIALIZABLE]
            if baseline[UNSERIALIZABLE]
            else 0.0
        )
        sweep.append(
            {
                "skew": skew,
                "baseline": baseline,
                "delta_cc": delta,
                "unserializable_drop": round(drop, 4),
            }
        )
    gated = next(entry for entry in sweep if entry["skew"] == GATED_SKEW)
    return {
        "benchmark": "delta_cc",
        "workload": {
            "generator": "smallbank",
            "account_count": ACCOUNT_COUNT,
            "omega": OMEGA,
            "block_size": BLOCK_SIZE,
            "seed": SEED,
            "epochs": epochs,
        },
        "sweep": sweep,
        "gated_skew": GATED_SKEW,
        "unserializable_drop_at_gated_skew": gated["unserializable_drop"],
    }


def write_results(payload: dict, path: Path = RESULTS_PATH) -> None:
    """Persist the machine-readable benchmark artifact."""
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.perf_smoke
def test_delta_cc_abort_drop(report_table):
    """Delta-CC must dissolve >= 40% of hot-key write aborts at skew 0.9."""
    payload = measure_delta_cc()
    write_results(payload)
    lines = [
        "skew | uw base | uw delta | drop | committed base->delta | commuted"
    ]
    for entry in payload["sweep"]:
        base, delta = entry["baseline"], entry["delta_cc"]
        lines.append(
            f"{entry['skew']} | {base[UNSERIALIZABLE]} | "
            f"{delta[UNSERIALIZABLE]} | {entry['unserializable_drop']:.1%} | "
            f"{base['committed']}->{delta['committed']} | "
            f"{delta['delta_commuted']}"
        )
    report_table("delta_cc", "\n".join(lines))
    drop = payload["unserializable_drop_at_gated_skew"]
    assert drop >= ABORT_DROP_FLOOR, (
        f"unserializable_write drop {drop:.1%} at skew {GATED_SKEW} is below "
        f"the {ABORT_DROP_FLOOR:.0%} floor"
    )


def main() -> int:
    payload = measure_delta_cc()
    write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    drop = payload["unserializable_drop_at_gated_skew"]
    print(
        f"\nunserializable_write drop at skew {GATED_SKEW}: {drop:.1%} "
        f"(floor {ABORT_DROP_FLOOR:.0%})"
    )
    return 0 if drop >= ABORT_DROP_FLOOR else 1


if __name__ == "__main__":
    sys.exit(main())
