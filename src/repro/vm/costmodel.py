"""Calibrated execution-cost model.

The paper's absolute latencies are dominated by EVM execution on its
testbed: Table IV's Serial row implies roughly 11.7 ms per transaction
(4,700 ms for 2 blocks x 200 transactions), and Nezha's "(e)" row implies
~0.31 ms per transaction with 16 vCPU worker threads.  Our Python
substrate executes SmallBank orders of magnitude faster than their full
EVM + MPT + LevelDB stack, so reproducing the *shape* of Table IV and
Figure 12 requires charging simulated execution time at the paper's
calibrated rate rather than our real one (see DESIGN.md substitutions and
EXPERIMENTS.md).  Concurrency-control costs are never modelled — they are
always measured for real, because they are the paper's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError

PAPER_SERIAL_MS_PER_TXN = 11.75
"""Table IV: 4,700 ms serial latency / 400 transactions at omega=2."""

PAPER_WORKER_COUNT = 16
"""The evaluation machines expose 16 vCPUs."""

PAPER_CONCURRENT_SPEEDUP = 38.0
"""Table IV: serial 4,700 ms vs Nezha execution 123.4 ms at omega=2."""


@dataclass(frozen=True)
class ExecutionCostModel:
    """Simulated per-transaction execution charges.

    Attributes
    ----------
    serial_seconds_per_txn:
        Cost of one serial EVM execute-and-commit (Table IV calibration).
    concurrent_speedup:
        Speedup of the concurrent speculative-execution phase over serial
        execution (the paper observes ~38x on 16 vCPUs).
    """

    serial_seconds_per_txn: float = PAPER_SERIAL_MS_PER_TXN / 1000.0
    concurrent_speedup: float = PAPER_CONCURRENT_SPEEDUP

    def __post_init__(self) -> None:
        if self.serial_seconds_per_txn < 0:
            raise ExecutionError("serial cost must be non-negative")
        if self.concurrent_speedup <= 0:
            raise ExecutionError("concurrent speedup must be positive")

    def serial_batch_seconds(self, transaction_count: int) -> float:
        """Simulated cost of serially executing and committing a batch."""
        return transaction_count * self.serial_seconds_per_txn

    def concurrent_batch_seconds(self, transaction_count: int) -> float:
        """Simulated cost of the concurrent speculative-execution phase."""
        return self.serial_batch_seconds(transaction_count) / self.concurrent_speedup


ZERO_COST = ExecutionCostModel(serial_seconds_per_txn=0.0)
"""No simulated charges: every measurement is real wall-clock."""
