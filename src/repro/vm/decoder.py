"""Bytecode decoding shared by the interpreter and the static verifier.

One linear scan turns raw bytes into a :class:`BytecodeLayout`: the
decoded instruction stream, the set of valid *instruction boundaries*
(the only legal jump targets), and structural defects (immediates that
run past the end of the code).  The interpreter consults the layout to
reject jumps that land inside an immediate and to report truncated
instructions with a structured error instead of ``struct.error``; the
static verifier starts from the same layout so both sides report
identical diagnostics for identical malformations.

Unknown opcode bytes decode as one-byte pseudo-instructions: they are
boundaries (mirroring the interpreter, which only faults on an unknown
byte when the program counter actually reaches it), and executing or
analyzing them raises/reports ``InvalidOpcode``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache

from repro.vm.opcodes import OpInfo, op_info

_PUSH_IMM = struct.Struct("<Q")

_DECODE_CACHE_SIZE = 512


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    pc: int
    opcode: int
    info: OpInfo | None
    """Opcode metadata, or ``None`` for an unknown opcode byte."""
    immediate: int | None
    """Decoded immediate operand, or ``None`` when absent or truncated."""
    truncated: bool = False
    """Whether the immediate runs past the end of the code."""

    @property
    def size(self) -> int:
        """Encoded size in bytes (truncated instructions claim full size)."""
        if self.info is None:
            return 1
        return 1 + self.info.immediate_size

    @property
    def mnemonic(self) -> str:
        """Display name (hex byte for unknown opcodes)."""
        if self.info is None:
            return f"0x{self.opcode:02x}"
        return self.info.op.name


@dataclass(frozen=True)
class BytecodeLayout:
    """Instruction-level structure of one bytecode unit."""

    code: bytes
    instructions: tuple[Instruction, ...]
    boundaries: frozenset[int]
    """Program counters that start an instruction — the legal jump targets."""
    truncated_pc: int | None
    """pc of the instruction whose immediate overruns the code, if any."""

    def instruction_at(self, pc: int) -> Instruction | None:
        """The instruction starting at ``pc``, or ``None`` off-boundary."""
        index = self._index_of(pc)
        if index is None:
            return None
        return self.instructions[index]

    def _index_of(self, pc: int) -> int | None:
        # Instructions are sorted by pc; binary search keeps lookups
        # cheap for the verifier's worklist.
        lo, hi = 0, len(self.instructions) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            start = self.instructions[mid].pc
            if start == pc:
                return mid
            if start < pc:
                lo = mid + 1
            else:
                hi = mid - 1
        return None


def truncation_message(instruction: Instruction, code_size: int) -> str:
    """The canonical diagnostic both runtime and verifier emit."""
    assert instruction.info is not None
    need = instruction.info.immediate_size
    have = max(0, code_size - instruction.pc - 1)
    return (
        f"truncated immediate for {instruction.mnemonic} at pc "
        f"{instruction.pc}: need {need} bytes, have {have}"
    )


@lru_cache(maxsize=_DECODE_CACHE_SIZE)
def decode(code: bytes) -> BytecodeLayout:
    """Decode ``code`` into its instruction layout (cached per bytes).

    Decoding never raises: unknown opcodes and truncated immediates are
    recorded in the layout and surfaced by whoever executes or verifies
    the affected instruction.
    """
    instructions: list[Instruction] = []
    boundaries: set[int] = set()
    truncated_pc: int | None = None
    size = len(code)
    pc = 0
    while pc < size:
        boundaries.add(pc)
        opcode = code[pc]
        info = op_info(opcode)
        if info is None:
            instructions.append(Instruction(pc, opcode, None, None))
            pc += 1
            continue
        end = pc + 1 + info.immediate_size
        if end > size:
            instructions.append(Instruction(pc, opcode, info, None, truncated=True))
            truncated_pc = pc
            break
        immediate: int | None = None
        if info.immediate_size == 8:
            (immediate,) = _PUSH_IMM.unpack_from(code, pc + 1)
        elif info.immediate_size == 1:
            immediate = code[pc + 1]
        instructions.append(Instruction(pc, opcode, info, immediate))
        pc = end
    return BytecodeLayout(
        code=code,
        instructions=tuple(instructions),
        boundaries=frozenset(boundaries),
        truncated_pc=truncated_pc,
    )
