"""SVM: the stack-machine execution engine (EVM substitute)."""

from repro.vm.assembler import AssembledUnit, assemble, assemble_with_debug, disassemble
from repro.vm.decoder import BytecodeLayout, Instruction, decode
from repro.vm.logger import LoggedStorage
from repro.vm.machine import (
    DEFAULT_GAS_LIMIT,
    ExecutionContext,
    Receipt,
    SVM,
    default_key_renderer,
)
from repro.vm.native import ContractRegistry, NativeContract
from repro.vm.opcodes import Op, WORD_MASK, op_info

__all__ = [
    "AssembledUnit",
    "BytecodeLayout",
    "ContractRegistry",
    "DEFAULT_GAS_LIMIT",
    "ExecutionContext",
    "Instruction",
    "LoggedStorage",
    "NativeContract",
    "Op",
    "Receipt",
    "SVM",
    "WORD_MASK",
    "assemble",
    "assemble_with_debug",
    "decode",
    "default_key_renderer",
    "disassemble",
    "op_info",
]
