"""SVM: the stack-machine execution engine (EVM substitute)."""

from repro.vm.assembler import assemble, disassemble
from repro.vm.logger import LoggedStorage
from repro.vm.machine import (
    DEFAULT_GAS_LIMIT,
    ExecutionContext,
    Receipt,
    SVM,
    default_key_renderer,
)
from repro.vm.native import ContractRegistry, NativeContract
from repro.vm.opcodes import Op, WORD_MASK, op_info

__all__ = [
    "ContractRegistry",
    "DEFAULT_GAS_LIMIT",
    "ExecutionContext",
    "LoggedStorage",
    "NativeContract",
    "Op",
    "Receipt",
    "SVM",
    "WORD_MASK",
    "assemble",
    "default_key_renderer",
    "disassemble",
    "op_info",
]
