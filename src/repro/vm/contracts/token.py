"""A fungible-token contract (ERC20-like): SVM assembly plus native twin.

Exercises parts of the VM SmallBank does not touch — the ``CALLER``
opcode (transfer/approve act on behalf of the sender) and a two-key
allowance map — and gives the examples a second realistic workload.

Storage-key convention (rendered to string state addresses):

* balances:   ``key = holder``                     -> ``bal:<holder>``
* allowances: ``key = (1<<40) | owner<<20 | spender`` -> ``alw:<owner>:<spender>``
* supply:     ``key = 2<<40``                      -> ``sup:total``

Holder ids must fit in 20 bits.  Overdrafts and over-spends revert.
"""

from __future__ import annotations

from repro.errors import VMRevert
from repro.txn.rwset import Address
from repro.vm.assembler import assemble
from repro.vm.logger import LoggedStorage
from repro.vm.native import ContractRegistry, NativeContract

CONTRACT_NAME = "token"

_ALLOWANCE_BIT = 1 << 40
_SUPPLY_KEY = 2 << 40
_OWNER_SHIFT = 20
_ID_MASK = (1 << 20) - 1


def token_key_renderer(key: int) -> Address:
    """Map an SVM storage key to the canonical token state address."""
    if key == _SUPPLY_KEY:
        return "sup:total"
    if key & _ALLOWANCE_BIT:
        owner = (key >> _OWNER_SHIFT) & _ID_MASK
        spender = key & _ID_MASK
        return f"alw:{owner:06d}:{spender:06d}"
    return f"bal:{key & _ID_MASK:06d}"


def balance_address(holder: int) -> Address:
    """State address of a holder's balance."""
    return f"bal:{holder:06d}"


def allowance_address(owner: int, spender: int) -> Address:
    """State address of an owner->spender allowance."""
    return f"alw:{owner:06d}:{spender:06d}"


SUPPLY_ADDRESS: Address = "sup:total"


# --------------------------------------------------------------- native twin


def _mint(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    to, amount = args
    storage.store(balance_address(to), storage.load(balance_address(to)) + amount)
    storage.store(SUPPLY_ADDRESS, storage.load(SUPPLY_ADDRESS) + amount)
    return 1


def _transfer(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    to, amount = args
    src_balance = storage.load(balance_address(caller))
    if src_balance < amount:
        raise VMRevert()
    storage.store(balance_address(caller), src_balance - amount)
    storage.store(balance_address(to), storage.load(balance_address(to)) + amount)
    return 1


def _approve(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    spender, amount = args
    storage.store(allowance_address(caller, spender), amount)
    return 1


def _transfer_from(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    owner, to, amount = args
    allowance = storage.load(allowance_address(owner, caller))
    if allowance < amount:
        raise VMRevert()
    owner_balance = storage.load(balance_address(owner))
    if owner_balance < amount:
        raise VMRevert()
    storage.store(balance_address(owner), owner_balance - amount)
    storage.store(allowance_address(owner, caller), allowance - amount)
    storage.store(balance_address(to), storage.load(balance_address(to)) + amount)
    return 1


def _balance_of(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    return storage.load(balance_address(args[0]))


def _total_supply(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    return storage.load(SUPPLY_ADDRESS)


NATIVE_TOKEN = NativeContract(
    name=CONTRACT_NAME,
    functions={
        "mint": _mint,
        "transfer": _transfer,
        "approve": _approve,
        "transferFrom": _transfer_from,
        "balanceOf": _balance_of,
        "totalSupply": _total_supply,
    },
)


# ------------------------------------------------------------- SVM assembly

_MINT_ASM = """
; mint(to, amount)
ARG 0           ; [to]
DUP 1
SLOAD           ; [to, bal]
ARG 1
ADD
SSTORE          ; []
PUSH 2199023255552   ; supply key = 2<<40
DUP 1
SLOAD
ARG 1
ADD
SSTORE
PUSH 1
RETURN
"""

_TRANSFER_ASM = """
; transfer(to, amount) from CALLER
CALLER          ; [src]
DUP 1
SLOAD           ; [src, srcbal]
DUP 1
ARG 1
LT              ; [src, srcbal, srcbal<amount]
PUSH @fail
SWAP 1
JUMPI           ; [src, srcbal]
ARG 1
SUB
SSTORE          ; []
ARG 0           ; [to]
DUP 1
SLOAD
ARG 1
ADD
SSTORE
PUSH 1
RETURN
fail:
REVERT
"""

_APPROVE_ASM = """
; approve(spender, amount) from CALLER
; key = (1<<40) | caller<<20 | spender
CALLER
PUSH 1048576    ; 1<<20
MUL
ARG 0
ADD
PUSH 1099511627776   ; 1<<40
ADD             ; [key]
ARG 1
SSTORE
PUSH 1
RETURN
"""

_TRANSFER_FROM_ASM = """
; transferFrom(owner, to, amount) by CALLER
; allowance key = (1<<40) | owner<<20 | caller
; The two guards revert through separate labels: the static verifier
; requires a consistent stack depth at every join point, and the guards
; fire at depths 2 and 3.
ARG 0
PUSH 1048576
MUL
CALLER
ADD
PUSH 1099511627776
ADD             ; [alwk]
DUP 1
SLOAD           ; [alwk, allowance]
DUP 1
ARG 2
LT              ; [alwk, allowance, allowance<amount]
PUSH @fail
SWAP 1
JUMPI           ; [alwk, allowance]
ARG 0
SLOAD           ; [alwk, allowance, ownerbal]
DUP 1
ARG 2
LT
PUSH @fail_deep
SWAP 1
JUMPI           ; [alwk, allowance, ownerbal]
; balances[owner] = ownerbal - amount
ARG 0           ; [alwk, allowance, ownerbal, ownerkey]
SWAP 1          ; [alwk, allowance, ownerkey, ownerbal]
ARG 2
SUB             ; [alwk, allowance, ownerkey, ownerbal-amount]
SSTORE          ; [alwk, allowance]
; allowance -= amount
ARG 2
SUB             ; [alwk, allowance-amount]
SSTORE          ; []
; balances[to] += amount
ARG 1
DUP 1
SLOAD
ARG 2
ADD
SSTORE
PUSH 1
RETURN
fail:
REVERT
fail_deep:
REVERT
"""

_BALANCE_OF_ASM = """
; balanceOf(holder)
ARG 0
SLOAD
RETURN
"""

_TOTAL_SUPPLY_ASM = """
; totalSupply()
PUSH 2199023255552
SLOAD
RETURN
"""

TOKEN_ASSEMBLY: dict[str, str] = {
    "mint": _MINT_ASM,
    "transfer": _TRANSFER_ASM,
    "approve": _APPROVE_ASM,
    "transferFrom": _TRANSFER_FROM_ASM,
    "balanceOf": _BALANCE_OF_ASM,
    "totalSupply": _TOTAL_SUPPLY_ASM,
}

TOKEN_ARITIES: dict[str, int] = {
    "mint": 2,
    "transfer": 2,
    "approve": 2,
    "transferFrom": 3,
    "balanceOf": 1,
    "totalSupply": 0,
}
"""Declared argument count per method; the static verifier bounds
``ARG`` indices against these, mirroring the interpreter's runtime
range check."""


def compile_token() -> dict[str, bytes]:
    """Assemble every token function into bytecode."""
    return {name: assemble(source) for name, source in TOKEN_ASSEMBLY.items()}


def register_token(registry: ContractRegistry, include_bytecode: bool = True) -> None:
    """Deploy the token contract into a registry."""
    registry.register_native(NATIVE_TOKEN)
    if include_bytecode:
        registry.register_bytecode(CONTRACT_NAME, compile_token(), token_key_renderer)
