"""The SmallBank contract: SVM assembly and its native twin.

Storage-key convention: ``key = (domain << 32) | customer`` with domain 0
for savings and 1 for checking; the key renderer maps these onto the same
``sav:...``/``chk:...`` state addresses the analytic workload generator
uses, so VM execution, native execution, and the synthetic rw-sets are
conflict-identical (asserted by integration tests).

Overdrafts revert (state integers are non-negative), replacing classic
SmallBank's negative balances; deposits and transfers between the
default 10k-balance accounts rarely trigger this.
"""

from __future__ import annotations

from repro.errors import VMRevert
from repro.txn.rwset import Address
from repro.vm.assembler import assemble
from repro.vm.logger import LoggedStorage
from repro.vm.native import ContractRegistry, NativeContract

CONTRACT_NAME = "smallbank"

_CHECKING_BIT = 1 << 32


def smallbank_key_renderer(key: int) -> Address:
    """Map an SVM storage key to the canonical account address."""
    customer = key & 0xFFFFFFFF
    if key & _CHECKING_BIT:
        return f"chk:{customer:06d}"
    return f"sav:{customer:06d}"


def _savings(customer: int) -> Address:
    return f"sav:{customer:06d}"


def _checking(customer: int) -> Address:
    return f"chk:{customer:06d}"


# --------------------------------------------------------------- native twin


def _update_savings(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    customer, amount = args
    balance = storage.load(_savings(customer))
    storage.store(_savings(customer), balance + amount)
    return 1


def _update_balance(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    customer, amount = args
    balance = storage.load(_checking(customer))
    storage.store(_checking(customer), balance + amount)
    return 1


def _send_payment(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    src, dst, amount = args
    src_balance = storage.load(_checking(src))
    if src_balance < amount:
        raise VMRevert()
    storage.store(_checking(src), src_balance - amount)
    dst_balance = storage.load(_checking(dst))
    storage.store(_checking(dst), dst_balance + amount)
    return 1


def _write_check(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    customer, amount = args
    savings = storage.load(_savings(customer))
    checking = storage.load(_checking(customer))
    if savings + checking < amount:
        raise VMRevert()
    if checking < amount:
        raise VMRevert()
    storage.store(_checking(customer), checking - amount)
    return 1


def _amalgamate(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    src, dst = args
    savings = storage.load(_savings(src))
    checking = storage.load(_checking(src))
    dst_balance = storage.load(_checking(dst))
    storage.store(_checking(dst), dst_balance + savings + checking)
    storage.store(_checking(src), 0)
    storage.store(_savings(src), 0)
    return 1


def _get_balance(storage: LoggedStorage, args: tuple[int, ...], caller: int = 0) -> int:
    customer = args[0]
    return storage.load(_savings(customer)) + storage.load(_checking(customer))


NATIVE_SMALLBANK = NativeContract(
    name=CONTRACT_NAME,
    functions={
        "updateSavings": _update_savings,
        "updateBalance": _update_balance,
        "sendPayment": _send_payment,
        "writeCheck": _write_check,
        "almagate": _amalgamate,
        "getBalance": _get_balance,
    },
)


# ------------------------------------------------------------- SVM assembly

_UPDATE_SAVINGS_ASM = """
; updateSavings(customer, amount): savings[customer] += amount
ARG 0           ; [savk]
DUP 1
SLOAD           ; [savk, sav]
ARG 1
ADD             ; [savk, sav+amount]
SSTORE
PUSH 1
RETURN
"""

_UPDATE_BALANCE_ASM = """
; updateBalance(customer, amount): checking[customer] += amount
ARG 0
PUSH 4294967296
ADD             ; [chkk]
DUP 1
SLOAD           ; [chkk, chk]
ARG 1
ADD
SSTORE
PUSH 1
RETURN
"""

_SEND_PAYMENT_ASM = """
; sendPayment(src, dst, amount): move amount between checking accounts
ARG 0
PUSH 4294967296
ADD             ; [srck]
DUP 1
SLOAD           ; [srck, srcbal]
DUP 1
ARG 2
LT              ; [srck, srcbal, srcbal<amount]
PUSH @fail
SWAP 1
JUMPI           ; [srck, srcbal]
ARG 2
SUB             ; [srck, srcbal-amount]
SSTORE
ARG 1
PUSH 4294967296
ADD             ; [dstk]
DUP 1
SLOAD           ; [dstk, dstbal]
ARG 2
ADD
SSTORE
PUSH 1
RETURN
fail:
REVERT
"""

_WRITE_CHECK_ASM = """
; writeCheck(customer, amount): deduct from checking; total funds checked
ARG 0
SLOAD           ; [sav]
ARG 0
PUSH 4294967296
ADD             ; [sav, chkk]
DUP 1
SLOAD           ; [sav, chkk, chk]
DUP 3
DUP 2
ADD             ; [sav, chkk, chk, sav+chk]
ARG 1
LT              ; [sav, chkk, chk, total<amount]
PUSH @fail
SWAP 1
JUMPI           ; [sav, chkk, chk]
DUP 1
ARG 1
LT              ; [sav, chkk, chk, chk<amount]
PUSH @fail
SWAP 1
JUMPI           ; [sav, chkk, chk]
ARG 1
SUB             ; [sav, chkk, chk-amount]
SSTORE          ; [sav]
POP
PUSH 1
RETURN
fail:
REVERT
"""

_AMALGAMATE_ASM = """
; almagate(src, dst): move all of src's funds into dst's checking
ARG 0           ; [savk]
DUP 1
SLOAD           ; [savk, sav]
ARG 0
PUSH 4294967296
ADD             ; [savk, sav, chkk]
DUP 1
SLOAD           ; [savk, sav, chkk, chk]
ARG 1
PUSH 4294967296
ADD             ; [savk, sav, chkk, chk, dstk]
DUP 1
SLOAD           ; [savk, sav, chkk, chk, dstk, dstbal]
DUP 5           ; [..., dstbal, sav]
DUP 4           ; [..., dstbal, sav, chk]
ADD
ADD             ; [savk, sav, chkk, chk, dstk, dstbal+sav+chk]
SSTORE          ; [savk, sav, chkk, chk]
POP             ; [savk, sav, chkk]
PUSH 0
SSTORE          ; [savk, sav]
POP             ; [savk]
PUSH 0
SSTORE          ; []
PUSH 1
RETURN
"""

_GET_BALANCE_ASM = """
; getBalance(customer): return savings + checking
ARG 0
SLOAD           ; [sav]
ARG 0
PUSH 4294967296
ADD
SLOAD           ; [sav, chk]
ADD
RETURN
"""

SMALLBANK_ASSEMBLY: dict[str, str] = {
    "updateSavings": _UPDATE_SAVINGS_ASM,
    "updateBalance": _UPDATE_BALANCE_ASM,
    "sendPayment": _SEND_PAYMENT_ASM,
    "writeCheck": _WRITE_CHECK_ASM,
    "almagate": _AMALGAMATE_ASM,
    "getBalance": _GET_BALANCE_ASM,
}

SMALLBANK_ARITIES: dict[str, int] = {
    "updateSavings": 2,
    "updateBalance": 2,
    "sendPayment": 3,
    "writeCheck": 2,
    "almagate": 2,
    "getBalance": 1,
}
"""Declared argument count per method; the static verifier bounds
``ARG`` indices against these, mirroring the interpreter's runtime
range check."""


def compile_smallbank() -> dict[str, bytes]:
    """Assemble every SmallBank function into bytecode."""
    return {name: assemble(source) for name, source in SMALLBANK_ASSEMBLY.items()}


def default_registry(include_bytecode: bool = True) -> ContractRegistry:
    """A registry with SmallBank deployed (native, plus bytecode by default)."""
    registry = ContractRegistry()
    registry.register_native(NATIVE_SMALLBANK)
    if include_bytecode:
        registry.register_bytecode(
            CONTRACT_NAME, compile_smallbank(), smallbank_key_renderer
        )
    return registry
