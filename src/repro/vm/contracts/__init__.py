"""Deployable contracts (SmallBank is the paper's benchmark contract)."""

from repro.vm.contracts.token import (
    NATIVE_TOKEN,
    TOKEN_ASSEMBLY,
    allowance_address,
    balance_address,
    compile_token,
    register_token,
    token_key_renderer,
)
from repro.vm.contracts.smallbank import (
    CONTRACT_NAME,
    NATIVE_SMALLBANK,
    SMALLBANK_ASSEMBLY,
    compile_smallbank,
    default_registry,
    smallbank_key_renderer,
)

__all__ = [
    "CONTRACT_NAME",
    "NATIVE_TOKEN",
    "TOKEN_ASSEMBLY",
    "allowance_address",
    "balance_address",
    "compile_token",
    "register_token",
    "token_key_renderer",
    "NATIVE_SMALLBANK",
    "SMALLBANK_ASSEMBLY",
    "compile_smallbank",
    "default_registry",
    "smallbank_key_renderer",
]
