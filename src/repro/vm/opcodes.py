"""SVM instruction set.

A compact stack machine standing in for the EVM (see DESIGN.md for the
substitution argument).  Words are unsigned 64-bit integers; arithmetic
wraps modulo 2**64.  Instructions are one opcode byte, optionally
followed by an immediate: 8 bytes for ``PUSH``, 1 byte for ``ARG``,
``DUP``, and ``SWAP``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

WORD_MASK = (1 << 64) - 1
"""All SVM words are reduced modulo 2**64."""


class Op(enum.IntEnum):
    """Opcode byte values."""

    STOP = 0x00
    PUSH = 0x01
    POP = 0x02
    DUP = 0x03
    SWAP = 0x04
    ARG = 0x05
    CALLER = 0x06

    ADD = 0x10
    SUB = 0x11
    MUL = 0x12
    DIV = 0x13
    MOD = 0x14

    LT = 0x20
    GT = 0x21
    EQ = 0x22
    ISZERO = 0x23
    AND = 0x24
    OR = 0x25
    NOT = 0x26

    JUMP = 0x30
    JUMPI = 0x31

    SLOAD = 0x40
    SSTORE = 0x41

    LOG = 0x42

    RETURN = 0x50
    REVERT = 0x51


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    op: Op
    immediate_size: int
    stack_in: int
    stack_out: int
    gas: int


_TABLE: dict[Op, OpInfo] = {}


def _register(op: Op, immediate_size: int, stack_in: int, stack_out: int, gas: int) -> None:
    _TABLE[op] = OpInfo(op, immediate_size, stack_in, stack_out, gas)


_register(Op.STOP, 0, 0, 0, 0)
_register(Op.PUSH, 8, 0, 1, 3)
_register(Op.POP, 0, 1, 0, 2)
_register(Op.DUP, 1, 0, 1, 3)  # stack_in validated dynamically by depth
_register(Op.SWAP, 1, 0, 0, 3)
_register(Op.ARG, 1, 0, 1, 3)
_register(Op.CALLER, 0, 0, 1, 2)
_register(Op.ADD, 0, 2, 1, 3)
_register(Op.SUB, 0, 2, 1, 3)
_register(Op.MUL, 0, 2, 1, 5)
_register(Op.DIV, 0, 2, 1, 5)
_register(Op.MOD, 0, 2, 1, 5)
_register(Op.LT, 0, 2, 1, 3)
_register(Op.GT, 0, 2, 1, 3)
_register(Op.EQ, 0, 2, 1, 3)
_register(Op.ISZERO, 0, 1, 1, 3)
_register(Op.AND, 0, 2, 1, 3)
_register(Op.OR, 0, 2, 1, 3)
_register(Op.NOT, 0, 1, 1, 3)
_register(Op.JUMP, 0, 1, 0, 8)
_register(Op.JUMPI, 0, 2, 0, 10)
_register(Op.SLOAD, 0, 1, 1, 200)
_register(Op.SSTORE, 0, 2, 0, 5_000)
_register(Op.LOG, 0, 2, 0, 375)
_register(Op.RETURN, 0, 1, 0, 0)
_register(Op.REVERT, 0, 0, 0, 0)


def op_info(op: int | Op) -> OpInfo | None:
    """Metadata for an opcode byte, or ``None`` when unknown."""
    try:
        return _TABLE[Op(op)]
    except ValueError:
        return None
