"""Read/write logging storage accessor.

The paper implements "an EVM-based read/write logger to record the
addresses and values that each transaction reads and writes during
simulation execution" (Section V).  :class:`LoggedStorage` is that
logger: it wraps a snapshot read function, buffers writes (speculative
execution never touches real state), and records the observed read
values and produced write values as an :class:`~repro.txn.rwset.RWSet`.

Reads served from the transaction's own earlier write are *not* logged
as snapshot reads — they create no cross-transaction dependency.

Writes that the static classifier proved to be commutative increments
(``old ± k`` with no control-flow dependence on ``old``) can be
*promoted* to bounded delta units after execution: the read/write pair
collapses into a single signed delta, eliminating the cross-transaction
dependency entirely.  Promotion re-checks the claimed delta against the
dynamically observed values — a mismatch silently downgrades the site
back to a plain read-modify-write, which is always safe.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.txn.rwset import Address, RWSet
from repro.vm.opcodes import WORD_MASK

ReadFn = Callable[[Address], int]

_WORD_MOD = WORD_MASK + 1


class LoggedStorage:
    """Speculative storage view with dependency logging."""

    def __init__(self, read_fn: ReadFn) -> None:
        self._read_fn = read_fn
        self._reads: dict[Address, int] = {}
        self._writes: dict[Address, int] = {}
        self._deltas: dict[Address, int] = {}

    def load(self, address: Address) -> int:
        """Read a slot, preferring the transaction's own writes."""
        if address in self._writes:
            return self._writes[address]
        if address in self._reads:
            return self._reads[address]
        value = self._read_fn(address)
        self._reads[address] = value
        return value

    def store(self, address: Address, value: int) -> None:
        """Buffer a write; nothing reaches real state until commit."""
        self._writes[address] = value

    def promote_deltas(self, sites: Iterable[tuple[Address, int]]) -> None:
        """Promote statically classified writes to commutative deltas.

        ``sites`` pairs each candidate address with the delta the static
        classifier predicts for it, reduced modulo 2**64.  A site is
        promoted only when the dynamically observed write value equals
        the observed read value plus that delta (mod 2**64) — the
        differential check that keeps a constant-propagation bug from
        ever corrupting state.  Sites that fail the check, were never
        both read and written, or carry a zero delta stay plain
        read-modify-writes.
        """
        for address, delta_mod in sites:
            delta_mod %= _WORD_MOD
            if delta_mod == 0:
                continue
            if address not in self._reads or address not in self._writes:
                continue
            read = self._reads[address]
            written = self._writes[address]
            if (written - read - delta_mod) % _WORD_MOD != 0:
                continue
            signed = delta_mod - _WORD_MOD if delta_mod >= _WORD_MOD // 2 else delta_mod
            del self._reads[address]
            del self._writes[address]
            self._deltas[address] = signed

    def rwset(self) -> RWSet:
        """The recorded read/write summary."""
        return RWSet(
            reads=dict(self._reads),
            writes=dict(self._writes),
            deltas=dict(self._deltas),
        )

    def discard(self) -> None:
        """Forget buffered writes (used when execution reverts)."""
        self._writes.clear()
        self._deltas.clear()

    @property
    def read_count(self) -> int:
        """Number of distinct snapshot reads."""
        return len(self._reads)

    @property
    def write_count(self) -> int:
        """Number of distinct buffered writes."""
        return len(self._writes)
