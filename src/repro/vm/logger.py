"""Read/write logging storage accessor.

The paper implements "an EVM-based read/write logger to record the
addresses and values that each transaction reads and writes during
simulation execution" (Section V).  :class:`LoggedStorage` is that
logger: it wraps a snapshot read function, buffers writes (speculative
execution never touches real state), and records the observed read
values and produced write values as an :class:`~repro.txn.rwset.RWSet`.

Reads served from the transaction's own earlier write are *not* logged
as snapshot reads — they create no cross-transaction dependency.
"""

from __future__ import annotations

from typing import Callable

from repro.txn.rwset import Address, RWSet

ReadFn = Callable[[Address], int]


class LoggedStorage:
    """Speculative storage view with dependency logging."""

    def __init__(self, read_fn: ReadFn) -> None:
        self._read_fn = read_fn
        self._reads: dict[Address, int] = {}
        self._writes: dict[Address, int] = {}

    def load(self, address: Address) -> int:
        """Read a slot, preferring the transaction's own writes."""
        if address in self._writes:
            return self._writes[address]
        if address in self._reads:
            return self._reads[address]
        value = self._read_fn(address)
        self._reads[address] = value
        return value

    def store(self, address: Address, value: int) -> None:
        """Buffer a write; nothing reaches real state until commit."""
        self._writes[address] = value

    def rwset(self) -> RWSet:
        """The recorded read/write summary."""
        return RWSet(reads=dict(self._reads), writes=dict(self._writes))

    def discard(self) -> None:
        """Forget buffered writes (used when execution reverts)."""
        self._writes.clear()

    @property
    def read_count(self) -> int:
        """Number of distinct snapshot reads."""
        return len(self._reads)

    @property
    def write_count(self) -> int:
        """Number of distinct buffered writes."""
        return len(self._writes)
