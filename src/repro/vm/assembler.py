"""Assembler for SVM source text.

Grammar (one statement per line, ``;`` starts a comment)::

    label:              -- define a jump target
    PUSH <int|@label>   -- 8-byte immediate (labels resolve to offsets)
    ARG <n> / DUP <n> / SWAP <n>
    <OP>                -- any other opcode, no operand

Two-pass assembly: the first pass sizes instructions and collects label
offsets, the second emits bytes with labels resolved.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import AssemblyError
from repro.vm.opcodes import Op, op_info

_PUSH_IMM = struct.Struct("<Q")


@dataclass(frozen=True)
class AssembledUnit:
    """Bytecode plus debug info mapping each instruction pc to its line.

    The static verifier threads ``lines`` through its findings so that a
    diagnostic on bytecode offset 17 can point back at the assembly
    source line that emitted it.
    """

    code: bytes
    lines: dict[int, int]
    """pc of each emitted instruction -> 1-based source line number."""


def assemble(source: str) -> bytes:
    """Assemble SVM source text into bytecode."""
    return assemble_with_debug(source).code


def assemble_with_debug(source: str) -> AssembledUnit:
    """Assemble SVM source text, keeping a pc -> source-line map."""
    statements = _parse(source)
    labels = _collect_labels(statements)
    code = bytearray()
    lines: dict[int, int] = {}
    for kind, payload, line_no in statements:
        if kind == "label":
            continue
        assert isinstance(payload, tuple)
        mnemonic, operand = payload
        op = _lookup(mnemonic, line_no)
        info = op_info(op)
        assert info is not None
        lines[len(code)] = line_no
        code.append(int(op))
        if info.immediate_size == 0:
            if operand is not None:
                raise AssemblyError(f"line {line_no}: {mnemonic} takes no operand")
            continue
        if operand is None:
            raise AssemblyError(f"line {line_no}: {mnemonic} requires an operand")
        value = _resolve(operand, labels, line_no)
        if info.immediate_size == 8:
            code.extend(_PUSH_IMM.pack(value))
        else:
            if not 0 <= value <= 0xFF:
                raise AssemblyError(
                    f"line {line_no}: operand {value} out of byte range"
                )
            code.append(value)
    return AssembledUnit(code=bytes(code), lines=lines)


_Statement = tuple[str, "str | tuple[str, str | None]", int]


def _parse(source: str) -> list[_Statement]:
    statements: list[_Statement] = []
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            name = line[:-1].strip()
            if not name.isidentifier():
                raise AssemblyError(f"line {line_no}: bad label name {name!r}")
            statements.append(("label", name, line_no))
            continue
        parts = line.split()
        if len(parts) > 2:
            raise AssemblyError(f"line {line_no}: too many tokens")
        mnemonic = parts[0].upper()
        operand = parts[1] if len(parts) == 2 else None
        statements.append(("instr", (mnemonic, operand), line_no))
    return statements


def _collect_labels(statements: list[_Statement]) -> dict[str, int]:
    labels: dict[str, int] = {}
    offset = 0
    for kind, payload, line_no in statements:
        if kind == "label":
            assert isinstance(payload, str)
            if payload in labels:
                raise AssemblyError(f"line {line_no}: duplicate label {payload!r}")
            labels[payload] = offset
            continue
        assert isinstance(payload, tuple)
        mnemonic, _ = payload
        info = op_info(_lookup(mnemonic, line_no))
        assert info is not None
        offset += 1 + info.immediate_size
    return labels


def _lookup(mnemonic: str, line_no: int) -> Op:
    try:
        return Op[mnemonic]
    except KeyError:
        raise AssemblyError(f"line {line_no}: unknown opcode {mnemonic!r}") from None


def _resolve(operand: str, labels: dict[str, int], line_no: int) -> int:
    if operand.startswith("@"):
        name = operand[1:]
        if name not in labels:
            raise AssemblyError(f"line {line_no}: undefined label {name!r}")
        return labels[name]
    try:
        return int(operand, 0)
    except ValueError:
        raise AssemblyError(f"line {line_no}: bad operand {operand!r}") from None


def disassemble(code: bytes) -> list[str]:
    """Human-readable listing (debugging and test aid)."""
    out: list[str] = []
    offset = 0
    while offset < len(code):
        info = op_info(code[offset])
        if info is None:
            out.append(f"{offset:04d}  ?? 0x{code[offset]:02x}")
            offset += 1
            continue
        if info.immediate_size == 8:
            (value,) = _PUSH_IMM.unpack_from(code, offset + 1)
            out.append(f"{offset:04d}  {info.op.name} {value}")
        elif info.immediate_size == 1:
            out.append(f"{offset:04d}  {info.op.name} {code[offset + 1]}")
        else:
            out.append(f"{offset:04d}  {info.op.name}")
        offset += 1 + info.immediate_size
    return out
