"""Native (Python-level) contracts.

Benchmarks need tens of thousands of speculative executions, where
interpreting bytecode would dominate wall-clock time without changing the
conflict structure.  A *native contract* implements the same functions as
its bytecode twin directly in Python against the same
:class:`~repro.vm.logger.LoggedStorage` accessor, producing identical
read/write sets and write values (integration tests assert this for
SmallBank).  The node executor picks native when available.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ExecutionError, VMRevert
from repro.vm.logger import LoggedStorage
from repro.vm.machine import Receipt

NativeFn = Callable[..., "int | None"]
"""Native function: ``fn(storage, args, caller=0) -> int | None``.

``caller`` is the numeric id of the transaction sender, mirroring the
SVM's ``CALLER`` opcode; caller-insensitive functions simply ignore it.
"""


@dataclass
class NativeContract:
    """A named bundle of native functions."""

    name: str
    functions: Mapping[str, NativeFn] = field(default_factory=dict)

    def call(
        self,
        function: str,
        storage: LoggedStorage,
        args: tuple[int, ...],
        caller: int = 0,
    ) -> Receipt:
        """Execute one function; revert produces a failed receipt."""
        try:
            fn = self.functions[function]
        except KeyError:
            raise ExecutionError(
                f"contract {self.name!r} has no function {function!r}"
            ) from None
        try:
            value = fn(storage, args, caller)
        except VMRevert:
            storage.discard()
            return Receipt(
                success=False,
                return_value=None,
                gas_used=0,
                rwset=storage.rwset(),
                error="reverted",
            )
        return Receipt(
            success=True,
            return_value=value,
            gas_used=0,
            rwset=storage.rwset(),
        )


class ContractRegistry:
    """Name -> deployed contract lookup used by the execution phase.

    Each entry holds a native implementation and optionally bytecode plus
    a key renderer for VM execution.
    """

    def __init__(self) -> None:
        self._native: dict[str, NativeContract] = {}
        self._bytecode: dict[str, dict[str, bytes]] = {}
        self._renderers: dict[str, Callable[[int], str]] = {}

    def register_native(self, contract: NativeContract) -> None:
        """Deploy a native contract."""
        self._native[contract.name] = contract

    def register_bytecode(
        self,
        name: str,
        functions: Mapping[str, bytes],
        key_renderer: Callable[[int], str],
    ) -> None:
        """Deploy assembled bytecode for a contract's functions."""
        self._bytecode[name] = dict(functions)
        self._renderers[name] = key_renderer

    def native(self, name: str) -> NativeContract | None:
        """The native implementation, if deployed."""
        return self._native.get(name)

    def bytecode(self, name: str, function: str) -> bytes | None:
        """Assembled code of one function, if deployed."""
        return self._bytecode.get(name, {}).get(function)

    def key_renderer(self, name: str) -> Callable[[int], str] | None:
        """The contract's storage-key renderer, if deployed."""
        return self._renderers.get(name)

    def contracts(self) -> list[str]:
        """All deployed contract names."""
        return sorted(set(self._native) | set(self._bytecode))


def registry_is_picklable(registry: ContractRegistry | None) -> bool:
    """Whether the registry can be reconstructed inside a worker process.

    The process execution backend bootstraps each persistent worker with
    a pickled copy of the registry: bytecode is plain bytes, and native
    functions / key renderers pickle by reference as long as they are
    module-level (as every shipped contract's are).  Registries built
    from closures or lambdas (common in tests) cannot cross the process
    boundary — the executor detects that here and falls back to the
    thread/serial backends.
    """
    if registry is None:
        return True
    try:
        pickle.dumps(registry)
    except Exception:
        return False
    return True
