"""The SVM interpreter.

Executes assembled bytecode against a :class:`~repro.vm.logger.LoggedStorage`
accessor.  Storage opcodes address 64-bit integer keys; a per-contract
*key renderer* maps them to the string state addresses the rest of the
system uses (SmallBank renders ``sav:...``/``chk:...``), keeping VM
execution and analytic workloads conflict-identical.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    ExecutionError,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    TruncatedBytecode,
    VMRevert,
)
from repro.txn.rwset import Address, RWSet
from repro.vm.decoder import BytecodeLayout, decode, truncation_message
from repro.vm.logger import LoggedStorage
from repro.vm.opcodes import WORD_MASK, Op, op_info

_PUSH_IMM = struct.Struct("<Q")

DEFAULT_GAS_LIMIT = 1_000_000
MAX_STACK_DEPTH = 1_024
MAX_STEPS = 1_000_000

KeyRenderer = Callable[[int], Address]


def default_key_renderer(key: int) -> Address:
    """Render a storage key when the contract supplies no mapping."""
    return f"slot:{key:016x}"


@dataclass
class ExecutionContext:
    """Everything one transaction execution can observe."""

    storage: LoggedStorage
    args: tuple[int, ...] = ()
    caller: int = 0
    gas_limit: int = DEFAULT_GAS_LIMIT
    key_renderer: KeyRenderer = default_key_renderer
    delta_sites: tuple[tuple[Address, int], ...] = ()
    """Statically classified commutative-write sites for this call:
    ``(address, delta mod 2**64)`` pairs the logger may promote to delta
    units after a successful run (each is re-checked dynamically)."""


@dataclass
class Receipt:
    """Result of one bytecode execution."""

    success: bool
    return_value: int | None
    gas_used: int
    rwset: RWSet = field(default_factory=RWSet)
    error: str | None = None
    logs: tuple[tuple[int, int], ...] = ()
    """Events emitted via LOG: ``(topic, value)`` pairs, in emission order.

    Reverted or failed executions discard their logs, as the EVM does.
    """


class SVM:
    """Stack-machine interpreter (one instance is reusable and stateless)."""

    def execute(self, code: bytes, context: ExecutionContext) -> Receipt:
        """Run ``code`` to completion; revert errors produce a failed receipt.

        Structural errors (bad opcode, stack underflow, out of gas, jump
        out of range) also fail the receipt rather than raising, because a
        blockchain node must never crash on untrusted bytecode.
        """
        try:
            value, gas_used, logs = self._run(code, context)
        except VMRevert as exc:
            context.storage.discard()
            return Receipt(
                success=False,
                return_value=None,
                gas_used=exc.args[0] if exc.args else 0,
                rwset=context.storage.rwset(),
                error="reverted",
            )
        except (InvalidOpcode, OutOfGas, ExecutionError) as exc:
            context.storage.discard()
            return Receipt(
                success=False,
                return_value=None,
                gas_used=context.gas_limit,
                rwset=context.storage.rwset(),
                error=str(exc),
            )
        if context.delta_sites:
            context.storage.promote_deltas(context.delta_sites)
        return Receipt(
            success=True,
            return_value=value,
            gas_used=gas_used,
            rwset=context.storage.rwset(),
            logs=tuple(logs),
        )

    def _run(
        self, code: bytes, context: ExecutionContext
    ) -> tuple[int | None, int, list[tuple[int, int]]]:
        stack: list[int] = []
        logs: list[tuple[int, int]] = []
        pc = 0
        gas_used = 0
        steps = 0
        size = len(code)
        # One cached structural scan per bytecode unit: yields the set of
        # valid instruction boundaries (the only legal jump targets) and
        # the location of any truncated trailing immediate.
        layout = decode(code)
        truncated_pc = layout.truncated_pc
        while pc < size:
            steps += 1
            if steps > MAX_STEPS:
                raise ExecutionError("step limit exceeded (infinite loop?)")
            opcode = code[pc]
            info = op_info(opcode)
            if info is None:
                raise InvalidOpcode(f"unknown opcode 0x{opcode:02x} at pc {pc}")
            if pc == truncated_pc:
                instruction = layout.instruction_at(pc)
                assert instruction is not None
                raise TruncatedBytecode(truncation_message(instruction, size))
            gas_used += info.gas
            if gas_used > context.gas_limit:
                raise OutOfGas(f"gas limit {context.gas_limit} exceeded at pc {pc}")
            if len(stack) < info.stack_in:
                raise ExecutionError(f"stack underflow at pc {pc} ({info.op.name})")
            op = info.op
            next_pc = pc + 1 + info.immediate_size

            if op is Op.STOP:
                return None, gas_used, logs
            if op is Op.PUSH:
                (value,) = _PUSH_IMM.unpack_from(code, pc + 1)
                stack.append(value)
            elif op is Op.POP:
                stack.pop()
            elif op is Op.DUP:
                depth = code[pc + 1]
                if depth < 1 or depth > len(stack):
                    raise ExecutionError(f"DUP {depth} beyond stack at pc {pc}")
                stack.append(stack[-depth])
            elif op is Op.SWAP:
                depth = code[pc + 1]
                if depth < 1 or depth + 1 > len(stack):
                    raise ExecutionError(f"SWAP {depth} beyond stack at pc {pc}")
                stack[-1], stack[-depth - 1] = stack[-depth - 1], stack[-1]
            elif op is Op.ARG:
                index = code[pc + 1]
                if index >= len(context.args):
                    raise ExecutionError(f"ARG {index} out of range at pc {pc}")
                stack.append(context.args[index] & WORD_MASK)
            elif op is Op.CALLER:
                stack.append(context.caller & WORD_MASK)
            elif op is Op.ADD:
                b, a = stack.pop(), stack.pop()
                stack.append((a + b) & WORD_MASK)
            elif op is Op.SUB:
                b, a = stack.pop(), stack.pop()
                stack.append((a - b) & WORD_MASK)
            elif op is Op.MUL:
                b, a = stack.pop(), stack.pop()
                stack.append((a * b) & WORD_MASK)
            elif op is Op.DIV:
                b, a = stack.pop(), stack.pop()
                stack.append(0 if b == 0 else a // b)
            elif op is Op.MOD:
                b, a = stack.pop(), stack.pop()
                stack.append(0 if b == 0 else a % b)
            elif op is Op.LT:
                b, a = stack.pop(), stack.pop()
                stack.append(1 if a < b else 0)
            elif op is Op.GT:
                b, a = stack.pop(), stack.pop()
                stack.append(1 if a > b else 0)
            elif op is Op.EQ:
                b, a = stack.pop(), stack.pop()
                stack.append(1 if a == b else 0)
            elif op is Op.ISZERO:
                stack.append(1 if stack.pop() == 0 else 0)
            elif op is Op.AND:
                b, a = stack.pop(), stack.pop()
                stack.append(a & b)
            elif op is Op.OR:
                b, a = stack.pop(), stack.pop()
                stack.append(a | b)
            elif op is Op.NOT:
                stack.append(stack.pop() ^ WORD_MASK)
            elif op is Op.JUMP:
                next_pc = self._jump_target(stack.pop(), layout, pc)
            elif op is Op.JUMPI:
                condition, target = stack.pop(), stack.pop()
                if condition:
                    next_pc = self._jump_target(target, layout, pc)
            elif op is Op.SLOAD:
                key = stack.pop()
                address = context.key_renderer(key)
                stack.append(context.storage.load(address) & WORD_MASK)
            elif op is Op.SSTORE:
                value, key = stack.pop(), stack.pop()
                address = context.key_renderer(key)
                context.storage.store(address, value)
            elif op is Op.LOG:
                value, topic = stack.pop(), stack.pop()
                logs.append((topic, value))
            elif op is Op.RETURN:
                return stack.pop(), gas_used, logs
            elif op is Op.REVERT:
                raise VMRevert(gas_used)
            else:  # pragma: no cover - table and dispatch are in sync
                raise InvalidOpcode(f"unhandled opcode {op.name}")

            if len(stack) > MAX_STACK_DEPTH:
                raise ExecutionError(f"stack overflow at pc {pc}")
            pc = next_pc
        return None, gas_used, logs

    @staticmethod
    def _jump_target(target: int, layout: BytecodeLayout, pc: int) -> int:
        size = len(layout.code)
        if target >= size:
            raise InvalidJump(f"jump to {target} beyond code size {size} (pc {pc})")
        if target not in layout.boundaries:
            raise InvalidJump(
                f"jump to {target} lands inside an instruction immediate (pc {pc})"
            )
        return target
