"""MPT node types and their canonical serialisation.

Three node kinds, as in Ethereum's trie:

* **leaf** — ``[hp(path, leaf=True), value]``
* **extension** — ``[hp(path, leaf=False), child_ref]``
* **branch** — ``[ref_0 ... ref_15, value]`` (17 slots)

A *ref* is the SHA-256 hash of the child's RLP encoding (we do not inline
short nodes; roots remain deterministic, see DESIGN.md).  The empty ref is
the empty byte string.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import TrieError
from repro.state.mpt.codec import rlp_decode, rlp_encode
from repro.state.mpt.nibbles import Nibbles, hp_decode, hp_encode

EMPTY_REF = b""
"""Reference marking an absent child."""


def hash_node(encoded: bytes) -> bytes:
    """Node reference: SHA-256 of the RLP encoding (Keccak substitute)."""
    return hashlib.sha256(encoded).digest()


@dataclass(frozen=True)
class LeafNode:
    """Terminal node holding the remaining key path and the value."""

    path: Nibbles
    value: bytes

    def encode(self) -> bytes:
        """Canonical RLP serialisation."""
        return rlp_encode([hp_encode(self.path, is_leaf=True), self.value])


@dataclass(frozen=True)
class ExtensionNode:
    """Path-compressing node pointing at a single child."""

    path: Nibbles
    child: bytes

    def __post_init__(self) -> None:
        if not self.path:
            raise TrieError("extension node requires a non-empty path")
        if self.child == EMPTY_REF:
            raise TrieError("extension node requires a child reference")

    def encode(self) -> bytes:
        """Canonical RLP serialisation."""
        return rlp_encode([hp_encode(self.path, is_leaf=False), self.child])


@dataclass(frozen=True)
class BranchNode:
    """Sixteen-way fan-out node with an optional value."""

    children: tuple[bytes, ...] = field(default=(EMPTY_REF,) * 16)
    value: bytes | None = None

    def __post_init__(self) -> None:
        if len(self.children) != 16:
            raise TrieError("branch node requires exactly 16 child slots")

    def encode(self) -> bytes:
        """Canonical RLP serialisation (17-element list)."""
        return rlp_encode([*self.children, self.value if self.value is not None else b""])

    def child_count(self) -> int:
        """Number of occupied child slots."""
        return sum(1 for ref in self.children if ref != EMPTY_REF)

    def only_child(self) -> tuple[int, bytes]:
        """The single occupied slot (index, ref); requires child_count == 1."""
        for index, ref in enumerate(self.children):
            if ref != EMPTY_REF:
                return index, ref
        raise TrieError("branch node has no children")

    def with_child(self, index: int, ref: bytes) -> "BranchNode":
        """Copy with one child slot replaced."""
        children = list(self.children)
        children[index] = ref
        return BranchNode(children=tuple(children), value=self.value)

    def with_value(self, value: bytes | None) -> "BranchNode":
        """Copy with the value slot replaced."""
        return BranchNode(children=self.children, value=value)


Node = LeafNode | ExtensionNode | BranchNode


def decode_node(encoded: bytes) -> Node:
    """Parse a node from its canonical serialisation."""
    item = rlp_decode(encoded)
    if not isinstance(item, list):
        raise TrieError("node encoding must be a list")
    if len(item) == 17:
        *children, value = item
        if any(not isinstance(ref, bytes) for ref in children):
            raise TrieError("branch children must be byte refs")
        return BranchNode(
            children=tuple(children), value=value if value != b"" else None
        )
    if len(item) == 2:
        path_blob, payload = item
        if not isinstance(path_blob, bytes) or not isinstance(payload, bytes):
            raise TrieError("two-item node must contain byte strings")
        path, is_leaf = hp_decode(path_blob)
        if is_leaf:
            return LeafNode(path=path, value=payload)
        return ExtensionNode(path=path, child=payload)
    raise TrieError(f"node list must have 2 or 17 items, got {len(item)}")
