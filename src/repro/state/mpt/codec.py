"""RLP (recursive length prefix) serialisation.

The Merkle Patricia Trie hashes the RLP encoding of its nodes, so node
serialisation must be deterministic and self-delimiting.  This is a
complete RLP implementation over the item domain ``bytes | list[item]``,
matching Ethereum's wire format (we only swap Keccak for SHA-256 at the
hashing layer, see DESIGN.md).
"""

from __future__ import annotations

from typing import Union

from repro.errors import TrieError

RLPItem = Union[bytes, list]


def rlp_encode(item: RLPItem) -> bytes:
    """Encode bytes or an arbitrarily nested list of bytes."""
    if isinstance(item, (bytes, bytearray)):
        payload = bytes(item)
        if len(payload) == 1 and payload[0] < 0x80:
            return payload
        return _encode_length(len(payload), 0x80) + payload
    if isinstance(item, (list, tuple)):
        body = b"".join(rlp_encode(element) for element in item)
        return _encode_length(len(body), 0xC0) + body
    raise TrieError(f"cannot RLP-encode {type(item).__name__}")


def rlp_decode(data: bytes) -> RLPItem:
    """Decode one RLP item; trailing bytes are an error."""
    item, consumed = _decode_item(data, 0)
    if consumed != len(data):
        raise TrieError(f"trailing bytes after RLP item ({len(data) - consumed})")
    return item


def _encode_length(length: int, offset: int) -> bytes:
    if length < 56:
        return bytes([offset + length])
    length_bytes = _to_big_endian(length)
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def _to_big_endian(value: int) -> bytes:
    out = b""
    while value:
        out = bytes([value & 0xFF]) + out
        value >>= 8
    return out or b"\x00"


def _decode_item(data: bytes, offset: int) -> tuple[RLPItem, int]:
    if offset >= len(data):
        raise TrieError("unexpected end of RLP data")
    prefix = data[offset]
    if prefix < 0x80:
        return bytes([prefix]), offset + 1
    if prefix < 0xB8:  # short string
        length = prefix - 0x80
        return _take(data, offset + 1, length)
    if prefix < 0xC0:  # long string
        length_size = prefix - 0xB7
        length, start = _read_length(data, offset + 1, length_size)
        return _take(data, start, length)
    if prefix < 0xF8:  # short list
        length = prefix - 0xC0
        return _decode_list(data, offset + 1, length)
    length_size = prefix - 0xF7  # long list
    length, start = _read_length(data, offset + 1, length_size)
    return _decode_list(data, start, length)


def _read_length(data: bytes, offset: int, size: int) -> tuple[int, int]:
    if offset + size > len(data):
        raise TrieError("truncated RLP length")
    length = int.from_bytes(data[offset : offset + size], "big")
    if length < 56:
        raise TrieError("non-canonical RLP length")
    return length, offset + size


def _take(data: bytes, offset: int, length: int) -> tuple[bytes, int]:
    if offset + length > len(data):
        raise TrieError("truncated RLP string")
    return data[offset : offset + length], offset + length


def _decode_list(data: bytes, offset: int, length: int) -> tuple[list, int]:
    end = offset + length
    if end > len(data):
        raise TrieError("truncated RLP list")
    items: list[RLPItem] = []
    cursor = offset
    while cursor < end:
        item, cursor = _decode_item(data, cursor)
        items.append(item)
    if cursor != end:
        raise TrieError("malformed RLP list body")
    return items, end
