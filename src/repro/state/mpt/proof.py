"""Merkle proof verification for the MPT.

A proof is the list of encoded nodes along the lookup path.  The verifier
re-hashes each node, checks it against the reference expected from its
parent (the first against the claimed root), and walks the key path.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ProofError
from repro.state.mpt.nibbles import bytes_to_nibbles
from repro.state.mpt.nodes import (
    EMPTY_REF,
    BranchNode,
    ExtensionNode,
    LeafNode,
    decode_node,
    hash_node,
)
from repro.state.mpt.trie import EMPTY_ROOT


def verify_proof(root: bytes, key: bytes, proof: Sequence[bytes]) -> bytes | None:
    """Verify a proof against ``root`` and return the proven value.

    Returns the value for an inclusion proof, or ``None`` for a valid
    exclusion proof.  Raises :class:`~repro.errors.ProofError` when the
    proof does not authenticate against the root or is malformed.
    """
    if root == EMPTY_ROOT:
        if proof:
            raise ProofError("empty trie cannot have proof nodes")
        return None
    if not proof:
        raise ProofError("missing proof for non-empty root")
    expected = root
    path = bytes_to_nibbles(key)
    for position, encoded in enumerate(proof):
        if hash_node(encoded) != expected:
            raise ProofError(f"proof node {position} does not match expected hash")
        node = decode_node(encoded)
        if isinstance(node, LeafNode):
            if position != len(proof) - 1:
                raise ProofError("leaf node before end of proof")
            if node.path == path:
                return node.value
            return None  # Exclusion: diverging leaf.
        if isinstance(node, ExtensionNode):
            length = len(node.path)
            if path[:length] != node.path:
                if position != len(proof) - 1:
                    raise ProofError("diverging extension before end of proof")
                return None  # Exclusion: path diverges inside the extension.
            path = path[length:]
            expected = node.child
            continue
        # Branch node.
        if not path:
            if position != len(proof) - 1:
                raise ProofError("terminal branch before end of proof")
            return node.value
        slot = path[0]
        child = node.children[slot]
        if child == EMPTY_REF:
            if position != len(proof) - 1:
                raise ProofError("missing child before end of proof")
            return None  # Exclusion: no child on the key's path.
        path = path[1:]
        expected = child
    raise ProofError("proof ended before reaching a terminal node")
