"""Merkle Patricia Trie: authenticated state storage."""

from repro.state.mpt.codec import rlp_decode, rlp_encode
from repro.state.mpt.nibbles import (
    bytes_to_nibbles,
    common_prefix_length,
    hp_decode,
    hp_encode,
    nibbles_to_bytes,
)
from repro.state.mpt.nodes import (
    EMPTY_REF,
    BranchNode,
    ExtensionNode,
    LeafNode,
    decode_node,
    hash_node,
)
from repro.state.mpt.proof import verify_proof
from repro.state.mpt.trie import EMPTY_ROOT, MerklePatriciaTrie, NodeStore

__all__ = [
    "BranchNode",
    "EMPTY_REF",
    "EMPTY_ROOT",
    "ExtensionNode",
    "LeafNode",
    "MerklePatriciaTrie",
    "NodeStore",
    "bytes_to_nibbles",
    "common_prefix_length",
    "decode_node",
    "hash_node",
    "hp_decode",
    "hp_encode",
    "nibbles_to_bytes",
    "rlp_decode",
    "rlp_encode",
    "verify_proof",
]
