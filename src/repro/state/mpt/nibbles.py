"""Nibble paths and hex-prefix (compact) encoding for the MPT.

Trie keys are sequences of 4-bit nibbles.  Node paths are stored with
Ethereum's hex-prefix encoding, which packs two flag bits (odd length,
leaf vs extension) into the first nibble.
"""

from __future__ import annotations

from repro.errors import TrieError

Nibbles = tuple[int, ...]


def bytes_to_nibbles(key: bytes) -> Nibbles:
    """Split each byte into its high and low nibble."""
    out: list[int] = []
    for byte in key:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return tuple(out)


def nibbles_to_bytes(nibbles: Nibbles) -> bytes:
    """Inverse of :func:`bytes_to_nibbles`; requires even length."""
    if len(nibbles) % 2:
        raise TrieError("odd nibble count cannot form whole bytes")
    return bytes(
        (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
    )


def common_prefix_length(left: Nibbles, right: Nibbles) -> int:
    """Length of the longest shared prefix."""
    limit = min(len(left), len(right))
    for index in range(limit):
        if left[index] != right[index]:
            return index
    return limit


def hp_encode(nibbles: Nibbles, is_leaf: bool) -> bytes:
    """Hex-prefix encode a path with its leaf flag."""
    flag = 2 if is_leaf else 0
    if len(nibbles) % 2:
        prefixed = (flag + 1, *nibbles)
    else:
        prefixed = (flag, 0, *nibbles)
    return nibbles_to_bytes(prefixed)


def hp_decode(data: bytes) -> tuple[Nibbles, bool]:
    """Decode a hex-prefix path, returning ``(nibbles, is_leaf)``."""
    if not data:
        raise TrieError("empty hex-prefix path")
    nibbles = bytes_to_nibbles(data)
    flag = nibbles[0]
    if flag not in (0, 1, 2, 3):
        raise TrieError(f"invalid hex-prefix flag {flag}")
    is_leaf = flag >= 2
    if flag % 2:  # odd length
        return nibbles[1:], is_leaf
    if nibbles[1] != 0:
        raise TrieError("non-zero padding nibble in hex-prefix path")
    return nibbles[2:], is_leaf
