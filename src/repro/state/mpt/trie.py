"""The Merkle Patricia Trie.

Persistent (copy-on-write) trie over a node store: every mutation writes
new nodes and returns a new root hash, so any historical root remains
readable — this is what lets each DAG epoch expose the previous epoch's
state root for block validation, and lets snapshots be free.

Values must be non-empty byte strings (an empty value would be ambiguous
with branch-node "no value" slots, as in Ethereum).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, MutableMapping

from repro.errors import TrieError
from repro.state.mpt.nibbles import (
    Nibbles,
    bytes_to_nibbles,
    common_prefix_length,
    nibbles_to_bytes,
)
from repro.state.mpt.nodes import (
    EMPTY_REF,
    BranchNode,
    ExtensionNode,
    LeafNode,
    Node,
    decode_node,
    hash_node,
)

EMPTY_ROOT = hashlib.sha256(b"").digest()
"""Root hash of the empty trie."""


DEFAULT_DECODED_CACHE = 1 << 18
"""Decoded interior nodes retained in memory (nodes are immutable, so
sharing is safe).  Sized to keep the whole upper trie resident at about
a million accounts; occupancy — and therefore memory — scales with the
live interior set, not the cap."""


class NodeStore:
    """Content-addressed node storage (hash -> encoded node).

    ``decoded_cache_size > 0`` keeps a bounded cache of *decoded* nodes:
    every save and load-miss parks the node object, so walking a path
    that a previous commit rebuilt skips the RLP decode entirely.  Off
    by default — the reference read path decodes every load; the flat
    fast path (:class:`repro.state.flat.FlatStateDB`) turns it on.
    Content addressing makes the cache trivially coherent — a ref's node
    can never change — except for explicit deletion (pruning), which
    must call :meth:`drop_caches`.
    """

    def __init__(
        self,
        backing: MutableMapping[bytes, bytes] | None = None,
        decoded_cache_size: int = 0,
    ) -> None:
        self._nodes: MutableMapping[bytes, bytes] = backing if backing is not None else {}
        self._decoded: dict[bytes, Node] = {}
        self._decoded_cap = decoded_cache_size

    def load(self, ref: bytes) -> Node:
        """Fetch and decode a node by reference."""
        node = self._decoded.get(ref)
        if node is not None:
            return node
        try:
            encoded = self._nodes[ref]
        except KeyError:
            raise TrieError(f"missing trie node {ref.hex()[:16]}...") from None
        node = decode_node(encoded)
        self._cache_decoded(ref, node)
        return node

    def save(self, node: Node) -> bytes:
        """Encode, hash, and persist a node; returns its reference."""
        encoded = node.encode()
        ref = hash_node(encoded)
        self._nodes[ref] = encoded
        self._cache_decoded(ref, node)
        return ref

    def drop_caches(self) -> None:
        """Forget every decoded node (required after external deletes)."""
        self._decoded.clear()

    def _cache_decoded(self, ref: bytes, node: Node) -> None:
        if self._decoded_cap <= 0:
            return
        if isinstance(node, LeafNode):
            # Leaves are the long tail: one per key, touched once per
            # write.  Caching only interior nodes keeps the whole upper
            # trie resident even at millions of accounts.
            return
        if len(self._decoded) >= self._decoded_cap:
            # Wholesale eviction: cheaper than LRU bookkeeping on every
            # hit, and the next commits re-warm the hot upper levels.
            self._decoded.clear()
        self._decoded[ref] = node

    def raw(self, ref: bytes) -> bytes:
        """The encoded bytes of a node (used to build proofs)."""
        try:
            return self._nodes[ref]
        except KeyError:
            raise TrieError(f"missing trie node {ref.hex()[:16]}...") from None

    def __len__(self) -> int:
        return len(self._nodes)


class MerklePatriciaTrie:
    """Authenticated key-value map with deterministic root hashes."""

    def __init__(self, store: NodeStore | None = None, root: bytes = EMPTY_ROOT) -> None:
        self.store = store if store is not None else NodeStore()
        self.root = root

    # ------------------------------------------------------------- queries

    def get(self, key: bytes) -> bytes | None:
        """Value stored under ``key``, or ``None``."""
        if self.root == EMPTY_ROOT:
            return None
        return self._get(self.root, bytes_to_nibbles(key))

    def _get(self, ref: bytes, path: Nibbles) -> bytes | None:
        node = self.store.load(ref)
        if isinstance(node, LeafNode):
            return node.value if node.path == path else None
        if isinstance(node, ExtensionNode):
            length = len(node.path)
            if path[:length] != node.path:
                return None
            return self._get(node.child, path[length:])
        if not path:
            return node.value
        child = node.children[path[0]]
        if child == EMPTY_REF:
            return None
        return self._get(child, path[1:])

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All ``(key, value)`` pairs in ascending key order."""
        if self.root == EMPTY_ROOT:
            return
        yield from self._items(self.root, ())

    def items_with_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Entries whose key starts with ``prefix``, in key order.

        Descends directly to the prefix's subtree, so enumerating a small
        namespace (e.g. all ``sav:`` accounts) does not touch the rest of
        the trie.
        """
        if self.root == EMPTY_ROOT:
            return
        target = bytes_to_nibbles(prefix)
        ref = self.root
        consumed: tuple[int, ...] = ()
        while True:
            node = self.store.load(ref)
            if isinstance(node, LeafNode):
                full = consumed + node.path
                if full[: len(target)] == target:
                    yield nibbles_to_bytes(full), node.value
                return
            if isinstance(node, ExtensionNode):
                length = len(node.path)
                remaining = target[len(consumed) :]
                overlap = min(length, len(remaining))
                if node.path[:overlap] != remaining[:overlap]:
                    return
                consumed = consumed + node.path
                ref = node.child
                if len(consumed) >= len(target):
                    yield from self._items_filtered(ref, consumed, target)
                    return
                continue
            # Branch node.
            if len(consumed) >= len(target):
                yield from self._items_filtered(ref, consumed, target)
                return
            slot = target[len(consumed)]
            child = node.children[slot]
            if child == EMPTY_REF:
                return
            consumed = consumed + (slot,)
            ref = child
            if len(consumed) >= len(target):
                yield from self._items_filtered(ref, consumed, target)
                return

    def _items_filtered(
        self, ref: bytes, prefix: Nibbles, target: Nibbles
    ) -> Iterator[tuple[bytes, bytes]]:
        """Enumerate a subtree, re-checking the target prefix on each key."""
        for key, value in self._items(ref, prefix):
            if bytes_to_nibbles(key)[: len(target)] == target:
                yield key, value

    def _items(self, ref: bytes, prefix: Nibbles) -> Iterator[tuple[bytes, bytes]]:
        node = self.store.load(ref)
        if isinstance(node, LeafNode):
            yield nibbles_to_bytes(prefix + node.path), node.value
            return
        if isinstance(node, ExtensionNode):
            yield from self._items(node.child, prefix + node.path)
            return
        if node.value is not None:
            yield nibbles_to_bytes(prefix), node.value
        for index, child in enumerate(node.children):
            if child != EMPTY_REF:
                yield from self._items(child, prefix + (index,))

    # ----------------------------------------------------------- mutations

    def put(self, key: bytes, value: bytes) -> bytes:
        """Insert or overwrite; returns the new root hash."""
        if not isinstance(value, (bytes, bytearray)) or len(value) == 0:
            raise TrieError("trie values must be non-empty bytes")
        path = bytes_to_nibbles(key)
        if self.root == EMPTY_ROOT:
            self.root = self.store.save(LeafNode(path=path, value=bytes(value)))
        else:
            self.root = self._put(self.root, path, bytes(value))
        return self.root

    def _put(self, ref: bytes, path: Nibbles, value: bytes) -> bytes:
        node = self.store.load(ref)
        if isinstance(node, LeafNode):
            return self._put_into_leaf(node, path, value)
        if isinstance(node, ExtensionNode):
            return self._put_into_extension(node, path, value)
        return self._put_into_branch(node, path, value)

    def _put_into_leaf(self, node: LeafNode, path: Nibbles, value: bytes) -> bytes:
        if node.path == path:
            return self.store.save(LeafNode(path=path, value=value))
        shared = common_prefix_length(node.path, path)
        branch = BranchNode()
        old_rest = node.path[shared:]
        new_rest = path[shared:]
        if old_rest:
            old_ref = self.store.save(LeafNode(path=old_rest[1:], value=node.value))
            branch = branch.with_child(old_rest[0], old_ref)
        else:
            branch = branch.with_value(node.value)
        if new_rest:
            new_ref = self.store.save(LeafNode(path=new_rest[1:], value=value))
            branch = branch.with_child(new_rest[0], new_ref)
        else:
            branch = branch.with_value(value)
        branch_ref = self.store.save(branch)
        if shared:
            return self.store.save(ExtensionNode(path=path[:shared], child=branch_ref))
        return branch_ref

    def _put_into_extension(self, node: ExtensionNode, path: Nibbles, value: bytes) -> bytes:
        shared = common_prefix_length(node.path, path)
        if shared == len(node.path):
            child_ref = self._put(node.child, path[shared:], value)
            return self.store.save(ExtensionNode(path=node.path, child=child_ref))
        # Split the extension at the divergence point.
        branch = BranchNode()
        ext_rest = node.path[shared:]
        if len(ext_rest) == 1:
            branch = branch.with_child(ext_rest[0], node.child)
        else:
            inner = self.store.save(ExtensionNode(path=ext_rest[1:], child=node.child))
            branch = branch.with_child(ext_rest[0], inner)
        new_rest = path[shared:]
        if new_rest:
            leaf = self.store.save(LeafNode(path=new_rest[1:], value=value))
            branch = branch.with_child(new_rest[0], leaf)
        else:
            branch = branch.with_value(value)
        branch_ref = self.store.save(branch)
        if shared:
            return self.store.save(ExtensionNode(path=path[:shared], child=branch_ref))
        return branch_ref

    def _put_into_branch(self, node: BranchNode, path: Nibbles, value: bytes) -> bytes:
        if not path:
            return self.store.save(node.with_value(value))
        slot = path[0]
        child = node.children[slot]
        if child == EMPTY_REF:
            leaf = self.store.save(LeafNode(path=path[1:], value=value))
            return self.store.save(node.with_child(slot, leaf))
        new_child = self._put(child, path[1:], value)
        return self.store.save(node.with_child(slot, new_child))

    def put_batch(self, items: "Iterable[tuple[bytes, bytes]]") -> bytes:
        """Insert or overwrite many keys in one subtree rebuild.

        Equivalent to calling :meth:`put` per item (later duplicates win)
        but each touched subtree is rebuilt exactly once, bottom-up:
        the dirty keys are sorted and grouped by shared nibble prefix, so
        a path node shared by N keys is re-encoded and re-hashed once
        instead of N times, and untouched children keep their existing
        refs — their hashes are never recomputed.  The trie's canonical
        form (maximal path compression) makes the resulting root
        bit-identical to the sequential-put root for the same content.
        """
        staged: dict[Nibbles, bytes] = {}
        for key, value in items:
            if not isinstance(value, (bytes, bytearray)) or len(value) == 0:
                raise TrieError("trie values must be non-empty bytes")
            staged[bytes_to_nibbles(key)] = bytes(value)
        if not staged:
            return self.root
        pairs = sorted(staged.items())
        if self.root == EMPTY_ROOT:
            node = self._build_subtree(pairs)
        else:
            node = self._put_batch(self.store.load(self.root), pairs)
        self.root = self.store.save(node)
        return self.root

    def _put_batch(self, node: Node, pairs: list[tuple[Nibbles, bytes]]) -> Node:
        """Merge sorted ``(path, value)`` pairs into ``node``'s subtree.

        Returns the replacement node *unsaved*; the caller saves it (the
        recursion saves children, so every new node is hashed once).
        """
        if isinstance(node, LeafNode):
            merged = dict(pairs)
            merged.setdefault(node.path, node.value)
            return self._build_subtree(sorted(merged.items()))
        if isinstance(node, ExtensionNode):
            return self._put_batch_extension(node, pairs)
        return self._put_batch_branch(node, pairs)

    def _put_batch_branch(
        self, node: BranchNode, pairs: list[tuple[Nibbles, bytes]]
    ) -> BranchNode:
        value = node.value
        groups: dict[int, list[tuple[Nibbles, bytes]]] = {}
        for path, item in pairs:
            if not path:
                value = item
            else:
                groups.setdefault(path[0], []).append((path[1:], item))
        children = list(node.children)
        for slot, group in groups.items():
            if children[slot] == EMPTY_REF:
                sub = self._build_subtree(group)
            else:
                sub = self._put_batch(self.store.load(children[slot]), group)
            children[slot] = self.store.save(sub)
        return BranchNode(children=tuple(children), value=value)

    def _put_batch_extension(
        self, node: ExtensionNode, pairs: list[tuple[Nibbles, bytes]]
    ) -> Node:
        shared = min(
            common_prefix_length(node.path, path) for path, _ in pairs
        )
        if shared == len(node.path):
            trimmed = [(path[shared:], value) for path, value in pairs]
            child = self._put_batch(self.store.load(node.child), trimmed)
            return ExtensionNode(path=node.path, child=self.store.save(child))
        # Split the extension at the earliest divergence point.
        value: bytes | None = None
        groups: dict[int, list[tuple[Nibbles, bytes]]] = {}
        for path, item in pairs:
            rest = path[shared:]
            if not rest:
                value = item
            else:
                groups.setdefault(rest[0], []).append((rest[1:], item))
        children: list[bytes] = [EMPTY_REF] * 16
        ext_rest = node.path[shared:]
        if ext_rest[0] in groups:
            # Some pairs continue into the extension's own subtree.
            if len(ext_rest) == 1:
                inner: Node = self.store.load(node.child)
            else:
                inner = ExtensionNode(path=ext_rest[1:], child=node.child)
            merged = self._put_batch(inner, groups.pop(ext_rest[0]))
            children[ext_rest[0]] = self.store.save(merged)
        elif len(ext_rest) == 1:
            children[ext_rest[0]] = node.child  # untouched ref, reused as-is
        else:
            children[ext_rest[0]] = self.store.save(
                ExtensionNode(path=ext_rest[1:], child=node.child)
            )
        for slot, group in groups.items():
            children[slot] = self.store.save(self._build_subtree(group))
        branch = BranchNode(children=tuple(children), value=value)
        if shared:
            return ExtensionNode(
                path=node.path[:shared], child=self.store.save(branch)
            )
        return branch

    def _build_subtree(self, pairs: list[tuple[Nibbles, bytes]]) -> Node:
        """Canonical subtree for sorted, distinct ``(path, value)`` pairs."""
        if len(pairs) == 1:
            path, value = pairs[0]
            return LeafNode(path=path, value=value)
        # Sorted input: the common prefix of first and last covers all.
        shared = common_prefix_length(pairs[0][0], pairs[-1][0])
        if shared:
            trimmed = [(path[shared:], value) for path, value in pairs]
            branch = self._build_branch(trimmed)
            return ExtensionNode(
                path=pairs[0][0][:shared], child=self.store.save(branch)
            )
        return self._build_branch(pairs)

    def _build_branch(self, pairs: list[tuple[Nibbles, bytes]]) -> BranchNode:
        """Branch over pairs that share no leading nibble (>= 2 pairs)."""
        value: bytes | None = None
        groups: dict[int, list[tuple[Nibbles, bytes]]] = {}
        for path, item in pairs:
            if not path:
                value = item
            else:
                groups.setdefault(path[0], []).append((path[1:], item))
        children: list[bytes] = [EMPTY_REF] * 16
        for slot, group in groups.items():
            children[slot] = self.store.save(self._build_subtree(group))
        return BranchNode(children=tuple(children), value=value)

    def delete(self, key: bytes) -> bytes:
        """Remove ``key`` if present; returns the new root hash."""
        if self.root == EMPTY_ROOT:
            return self.root
        result = self._delete(self.root, bytes_to_nibbles(key))
        if result is _UNCHANGED:
            return self.root
        if result is None:
            self.root = EMPTY_ROOT
        else:
            self.root = self.store.save(result)
        return self.root

    def _delete(self, ref: bytes, path: Nibbles) -> "Node | None | object":
        """Delete within the subtree at ``ref``.

        Returns the replacement *node* (not ref), ``None`` when the subtree
        vanishes, or ``_UNCHANGED`` when the key was absent.
        """
        node = self.store.load(ref)
        if isinstance(node, LeafNode):
            return None if node.path == path else _UNCHANGED
        if isinstance(node, ExtensionNode):
            length = len(node.path)
            if path[:length] != node.path:
                return _UNCHANGED
            result = self._delete(node.child, path[length:])
            if result is _UNCHANGED:
                return _UNCHANGED
            if result is None:
                return None
            return self._merge_extension(node.path, result)
        # Branch node.
        if not path:
            if node.value is None:
                return _UNCHANGED
            return self._collapse_branch(node.with_value(None))
        slot = path[0]
        child = node.children[slot]
        if child == EMPTY_REF:
            return _UNCHANGED
        result = self._delete(child, path[1:])
        if result is _UNCHANGED:
            return _UNCHANGED
        if result is None:
            return self._collapse_branch(node.with_child(slot, EMPTY_REF))
        return node.with_child(slot, self.store.save(result))

    def _merge_extension(self, prefix: Nibbles, child: Node) -> Node:
        """Fold an extension over its replacement child."""
        if isinstance(child, LeafNode):
            return LeafNode(path=prefix + child.path, value=child.value)
        if isinstance(child, ExtensionNode):
            return ExtensionNode(path=prefix + child.path, child=child.child)
        return ExtensionNode(path=prefix, child=self.store.save(child))

    def _collapse_branch(self, node: BranchNode) -> Node | None:
        """Re-normalise a branch after a slot or value was cleared."""
        count = node.child_count()
        if count == 0:
            if node.value is None:
                return None
            return LeafNode(path=(), value=node.value)
        if count == 1 and node.value is None:
            slot, ref = node.only_child()
            child = self.store.load(ref)
            return self._merge_extension((slot,), child)
        return node

    # -------------------------------------------------------------- proofs

    def prove(self, key: bytes) -> list[bytes]:
        """Merkle proof: the encoded nodes on the path to ``key``.

        Valid both as a proof of inclusion (key present) and exclusion
        (path shows where the key would diverge).
        """
        proof: list[bytes] = []
        if self.root == EMPTY_ROOT:
            return proof
        ref = self.root
        path = bytes_to_nibbles(key)
        while True:
            encoded = self.store.raw(ref)
            proof.append(encoded)
            node = decode_node(encoded)
            if isinstance(node, LeafNode):
                return proof
            if isinstance(node, ExtensionNode):
                length = len(node.path)
                if path[:length] != node.path:
                    return proof
                path = path[length:]
                ref = node.child
                continue
            if not path:
                return proof
            child = node.children[path[0]]
            if child == EMPTY_REF:
                return proof
            path = path[1:]
            ref = child

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None


_UNCHANGED = object()
"""Sentinel: the delete did not find the key."""
