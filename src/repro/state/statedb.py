"""The mutable world state, authenticated by an MPT.

``StateDB`` maps string addresses to non-negative integers (account and
contract-slot balances).  Every commit produces a new trie root; because
the trie is copy-on-write, any historical root stays readable, which is
what snapshots (and the DAG pipeline's per-epoch state roots) rely on.

Node bytes can live in memory or inside any :class:`~repro.storage.api.KVStore`
(the LevelDB role) through :class:`KVNodeMapping`.
"""

from __future__ import annotations

from typing import Iterator, Mapping, MutableMapping

from repro.errors import StateError
from repro.state.account import decode_int, encode_int
from repro.state.mpt.trie import EMPTY_ROOT, MerklePatriciaTrie, NodeStore
from repro.storage.api import KVStore
from repro.txn.rwset import Address


class KVNodeMapping(MutableMapping[bytes, bytes]):
    """Adapter exposing a KVStore as the trie's node mapping.

    ``len()`` needs the store's key count, which only a full scan can
    establish; :meth:`count` performs that scan once, caches the result,
    and keeps it current incrementally.  Until someone asks, mutations
    stay scan-free — the trie's save path never pays for the counter.
    """

    def __init__(self, store: KVStore, prefix: bytes = b"n:") -> None:
        self._store = store
        self._prefix = prefix
        self._count: int | None = None

    def __getitem__(self, key: bytes) -> bytes:
        value = self._store.get(self._prefix + key)
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key: bytes, value: bytes) -> None:
        if self._count is not None and self._store.get(self._prefix + key) is None:
            self._count += 1
        self._store.put(self._prefix + key, value)

    def __delitem__(self, key: bytes) -> None:
        if self._count is not None and self._store.get(self._prefix + key) is not None:
            self._count -= 1
        self._store.delete(self._prefix + key)

    def __iter__(self) -> Iterator[bytes]:
        offset = len(self._prefix)
        for key, _ in self._store.scan(self._prefix):
            yield key[offset:]

    def count(self) -> int:
        """Number of stored nodes (one scan, then tracked incrementally)."""
        if self._count is None:
            self._count = sum(1 for _ in self)
        return self._count

    def __len__(self) -> int:
        return self.count()


class StateSnapshot:
    """Immutable read view of the state at one root."""

    def __init__(self, store: NodeStore, root: bytes) -> None:
        self._trie = MerklePatriciaTrie(store=store, root=root)
        self.root = root

    def get(self, address: Address) -> int:
        """Value at ``address`` (0 when the address was never written)."""
        raw = self._trie.get(address.encode())
        return 0 if raw is None else decode_int(raw)

    def items(self) -> Iterator[tuple[Address, int]]:
        """All populated addresses in key order."""
        for key, value in self._trie.items():
            yield key.decode(), decode_int(value)


class StateDB:
    """Authenticated account state with cheap snapshots.

    Reads hit an in-memory cache of dirty entries first and fall through
    to the trie; :meth:`commit` folds the dirty set into the trie and
    returns the new root.
    """

    DECODED_CACHE_SIZE = 0
    """Decoded-node cache capacity; the flat fast path overrides this."""

    def __init__(
        self,
        store: KVStore | None = None,
        root: bytes = EMPTY_ROOT,
        cache_size: int = 0,
    ) -> None:
        backing = KVNodeMapping(store) if store is not None else None
        self.cache = None
        if backing is not None and cache_size > 0:
            from repro.state.cache import LRUCacheMapping

            backing = LRUCacheMapping(backing, capacity=cache_size)
            self.cache = backing
        # With an explicit node-byte LRU, leave the decoded-node cache off
        # so the configured cache sees every load and its hit-rate stats
        # (exported via --state-cache / record_state) stay truthful.
        self._nodes = NodeStore(
            backing,
            decoded_cache_size=0 if self.cache is not None else self.DECODED_CACHE_SIZE,
        )
        self._trie = MerklePatriciaTrie(store=self._nodes, root=root)
        self._dirty: dict[Address, int] = {}

    @property
    def root(self) -> bytes:
        """Root of the last committed state (dirty writes excluded)."""
        return self._trie.root

    @property
    def dirty_count(self) -> int:
        """Number of uncommitted writes."""
        return len(self._dirty)

    def get(self, address: Address) -> int:
        """Current value, observing uncommitted writes."""
        if address in self._dirty:
            return self._dirty[address]
        raw = self._trie.get(address.encode())
        return 0 if raw is None else decode_int(raw)

    def set(self, address: Address, value: int) -> None:
        """Stage a write (committed by :meth:`commit`)."""
        if value < 0:
            raise StateError(f"state values must be non-negative, got {value}")
        self._dirty[address] = value

    def apply_writes(self, writes: Mapping[Address, int]) -> None:
        """Stage a batch of writes (a transaction's write set)."""
        for address, value in writes.items():
            self.set(address, value)

    def commit(self) -> bytes:
        """Fold staged writes into the trie; returns the new root."""
        for address in sorted(self._dirty):
            self._trie.put(address.encode(), encode_int(self._dirty[address]))
        self._dirty.clear()
        return self._trie.root

    def rollback(self) -> None:
        """Discard staged writes."""
        self._dirty.clear()

    def snapshot(self, root: bytes | None = None) -> StateSnapshot:
        """Read view pinned at ``root`` (default: last committed root)."""
        return StateSnapshot(self._nodes, root if root is not None else self._trie.root)

    def seed(self, values: Mapping[Address, int]) -> bytes:
        """Initialise many addresses and commit (genesis helper)."""
        self.apply_writes(values)
        return self.commit()

    def items(self) -> Iterator[tuple[Address, int]]:
        """Committed entries in key order (dirty writes excluded)."""
        for key, value in self._trie.items():
            yield key.decode(), decode_int(value)
