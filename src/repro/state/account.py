"""Account-model values stored in the state trie.

The paper's system model is account-based (Section III-A): conflicts are
concurrent reads/writes of account addresses.  Two value shapes live in
the trie:

* plain integer slots (contract storage such as SmallBank balances);
* structured :class:`Account` objects (balance + nonce), used by the DAG
  chain's native value transfers and the examples.

Both serialise through RLP so state roots are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StateError
from repro.state.mpt.codec import rlp_decode, rlp_encode


def encode_int(value: int) -> bytes:
    """Canonical RLP integer encoding (big-endian, no leading zeros).

    The zero encoding is a single zero byte rather than the empty string
    because trie values must be non-empty.
    """
    if value < 0:
        raise StateError(f"state integers must be non-negative, got {value}")
    if value == 0:
        return b"\x00"
    out = b""
    while value:
        out = bytes([value & 0xFF]) + out
        value >>= 8
    return out


def decode_int(data: bytes) -> int:
    """Inverse of :func:`encode_int`."""
    if not data:
        raise StateError("empty integer encoding")
    return int.from_bytes(data, "big")


@dataclass(frozen=True)
class Account:
    """A native account: spendable balance and replay-protection nonce."""

    balance: int = 0
    nonce: int = 0

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise StateError(f"balance must be non-negative, got {self.balance}")
        if self.nonce < 0:
            raise StateError(f"nonce must be non-negative, got {self.nonce}")

    def encode(self) -> bytes:
        """Canonical RLP: ``[balance, nonce]``."""
        return rlp_encode([encode_int(self.balance), encode_int(self.nonce)])

    @classmethod
    def decode(cls, data: bytes) -> "Account":
        """Parse the canonical encoding."""
        item = rlp_decode(data)
        if not isinstance(item, list) or len(item) != 2:
            raise StateError("account encoding must be a two-item list")
        balance, nonce = item
        return cls(balance=decode_int(balance), nonce=decode_int(nonce))

    def credited(self, amount: int) -> "Account":
        """Copy with ``amount`` added to the balance."""
        return Account(balance=self.balance + amount, nonce=self.nonce)

    def debited(self, amount: int) -> "Account":
        """Copy with ``amount`` removed; raises when overdrawn."""
        if amount > self.balance:
            raise StateError(
                f"insufficient balance: have {self.balance}, need {amount}"
            )
        return Account(balance=self.balance - amount, nonce=self.nonce)

    def bumped(self) -> "Account":
        """Copy with the nonce advanced by one."""
        return Account(balance=self.balance, nonce=self.nonce + 1)
