"""Flat account state with journaled snapshot layers.

``StateDB`` routes every read through the copy-on-write trie and every
commit through one ``put`` — one full path re-encode and re-hash — per
dirty key.  At realistic account counts that is the dominant commit
cost.  :class:`FlatStateDB` keeps the *same* authenticated root sequence
while moving the hot path onto plain dictionaries:

* **Reads** hit a flat ``dict`` (dirty overlay first), never the trie.
* **Commits** push a *journal layer* — the map of overwritten old
  values — then seal the epoch by folding the whole dirty set into the
  MPT with :meth:`~repro.state.mpt.trie.MerklePatriciaTrie.put_batch`
  (one subtree rebuild, unchanged children keep their hashes).
* **Historical reads** (``snapshot(old_root)``) replay the retained
  journal layers backwards over the flat dict; roots older than the
  journal window fall back to the trie-backed oracle, which stays
  correct because the trie is copy-on-write.
* **Rollback** (:meth:`FlatStateDB.rollback_to`) pops journal layers,
  restoring both the flat dict and the root, without touching the trie.

The lazy-root invariant: between commits the trie holds the *previous*
epoch's state; the flat dict is the only up-to-date view.  At each
commit the two re-converge, and the root is bit-identical to what the
trie-backed ``StateDB`` would have produced for the same writes (swept
by ``tests/state/test_flat_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis import race
from repro.errors import StateError
from repro.obs.tracer import Tracer, maybe_span
from repro.state.account import decode_int, encode_int
from repro.state.mpt.trie import DEFAULT_DECODED_CACHE, EMPTY_ROOT, MerklePatriciaTrie
from repro.state.statedb import StateDB, StateSnapshot
from repro.storage.api import KVStore
from repro.txn.rwset import Address

DEFAULT_JOURNAL_LAYERS = 64
"""Epoch commits whose undo maps are retained for cheap historical reads."""


@dataclass
class JournalLayer:
    """Undo record of one epoch commit.

    ``undo`` maps every address the commit changed to its value *before*
    the commit (``None`` when the address did not exist yet).  Applying
    ``undo`` over the flat dict rewinds exactly one epoch.
    """

    root_before: bytes
    root_after: bytes
    undo: dict[Address, int | None] = field(default_factory=dict)


class FlatSnapshot:
    """Read view pinned at one root, served from flat state + journals.

    Drop-in for :class:`~repro.state.statedb.StateSnapshot`: exposes
    ``root``, :meth:`get`, and :meth:`items`.  Reads stay O(journal
    depth) while the pinned root is inside the retained window and
    degrade gracefully to authenticated trie reads once it ages out.
    """

    def __init__(self, db: "FlatStateDB", root: bytes) -> None:
        self._db = db
        self.root = root

    def get(self, address: Address) -> int:
        """Value at ``address`` (0 when the address was never written)."""
        return self._db._value_at(self.root, address)

    def items(self) -> Iterator[tuple[Address, int]]:
        """All populated addresses in key order."""
        yield from self._db._items_at(self.root)


class FlatStateDB(StateDB):
    """Authenticated account state with a flat read/write fast path.

    Same contract as :class:`~repro.state.statedb.StateDB` — same roots,
    same snapshot semantics — but reads are dict lookups and each commit
    costs one batched subtree rebuild instead of per-key path rewrites.
    ``max_journal_layers`` bounds the undo window; ``tracer`` (optional)
    records ``state.trie_seal`` / ``state.flat_read`` spans per commit.
    """

    DECODED_CACHE_SIZE = DEFAULT_DECODED_CACHE
    """Fast path keeps decoded trie nodes hot across epoch seals."""

    def __init__(
        self,
        store: KVStore | None = None,
        root: bytes = EMPTY_ROOT,
        cache_size: int = 0,
        max_journal_layers: int = DEFAULT_JOURNAL_LAYERS,
        tracer: Tracer | None = None,
    ) -> None:
        if max_journal_layers < 0:
            raise StateError("max_journal_layers must be non-negative")
        super().__init__(store=store, root=root, cache_size=cache_size)
        self.max_journal_layers = max_journal_layers
        self.tracer = tracer
        self._journal: list[JournalLayer] = []
        self._flat: dict[Address, int] = {}
        if root != EMPTY_ROOT:
            # Hydrate once from the authenticated trie; afterwards the
            # flat dict is the single source of truth for reads.
            for key, value in self._trie.items():
                self._flat[key.decode()] = decode_int(value)
        self.flat_reads = 0
        self.fallback_reads = 0

    # -------------------------------------------------------------- hot path

    def get(self, address: Address) -> int:
        """Current value, observing uncommitted writes (dict lookups only)."""
        if address in self._dirty:
            return self._dirty[address]
        self.flat_reads += 1
        return self._flat.get(address, 0)

    def peek(self, address: Address) -> int:
        """Race-tolerant read for cross-epoch speculation.

        The streaming engine speculates epoch ``e+1`` on the main thread
        while epoch ``e``'s commit mutates this state on a background
        stage.  Each dict operation here is atomic under the GIL, and
        the only addresses mutated during a commit are the epoch's write
        delta — so a ``peek`` of any *other* address is exact, and a
        peek of a written address returns either its old or new value
        (the engine re-executes every transaction that read one of
        those, so a torn value can never reach a committed result).  No
        stats counters are bumped: ``flat_reads`` is reset by the
        concurrent commit and a racing increment would corrupt it.

        The sanitizer hook is *relaxed* — this read races with the
        committing thread's relaxed per-address writes by design (the
        C11-atomics analogue), so the detector waives the pair while
        still flagging any plain access that slips into the window.
        """
        if race.active():
            race.trace_read(("flat", id(self), address), relaxed=True)
        try:
            return self._dirty[address]
        except KeyError:
            return self._flat.get(address, 0)

    def commit(self) -> bytes:
        """Fold staged writes into flat state, journal the old values,
        and seal the epoch's authenticated root in one trie batch."""
        if not self._dirty:
            return self._trie.root
        root_before = self._trie.root
        undo: dict[Address, int | None] = {}
        for address, value in self._dirty.items():
            old = self._flat.get(address)
            if old != value:
                undo[address] = old
        reads = self.flat_reads
        with maybe_span(self.tracer, "state.trie_seal") as span:
            self._trie.put_batch(
                (address.encode(), encode_int(value))
                for address, value in self._dirty.items()
            )
            span.set(writes=len(self._dirty), accounts=len(self._flat))
        with maybe_span(self.tracer, "state.flat_read") as span:
            # Summary span: reads served flat since the previous seal.
            span.set(reads=reads, fallback=self.fallback_reads)
        self.flat_reads = 0
        if race.active():
            # Relaxed per-address writes: cross-epoch speculation may
            # peek these concurrently (see :meth:`peek`); both sides are
            # GIL-atomic dict operations and the engine re-executes any
            # transaction that observed a mutated address.
            for address in self._dirty:
                race.trace_write(("flat", id(self), address), relaxed=True)
        self._flat.update(self._dirty)
        self._dirty.clear()
        self._journal.append(
            JournalLayer(root_before=root_before, root_after=self._trie.root, undo=undo)
        )
        if len(self._journal) > self.max_journal_layers:
            del self._journal[: len(self._journal) - self.max_journal_layers]
        return self._trie.root

    # ------------------------------------------------------------- snapshots

    def snapshot(self, root: bytes | None = None) -> "FlatSnapshot | StateSnapshot":
        """Read view pinned at ``root`` (default: last committed root).

        Roots inside the journal window are served from flat state;
        anything older falls back to the trie-backed oracle view.
        """
        target = root if root is not None else self._trie.root
        if target == self._trie.root or self._journal_index(target) is not None:
            return FlatSnapshot(self, target)
        self.fallback_reads += 1
        return StateSnapshot(self._nodes, target)

    def rollback_to(self, root: bytes) -> None:
        """Rewind committed state to an earlier retained root.

        Pops journal layers, restoring the flat dict and the root in
        O(values changed since ``root``); staged writes are discarded.
        The trie keeps every node (copy-on-write), so no trie work at
        all.  Raises :class:`~repro.errors.StateError` when ``root`` has
        aged out of the journal window.
        """
        self._dirty.clear()
        if root == self._trie.root:
            return
        if self._journal_index(root) is None:
            raise StateError(
                f"root {root.hex()[:16]}... is outside the retained journal"
            )
        while self._journal:
            layer = self._journal.pop()
            for address, old in layer.undo.items():
                if old is None:
                    self._flat.pop(address, None)
                else:
                    self._flat[address] = old
            if layer.root_before == root:
                break
        self._trie.root = root

    def items(self) -> Iterator[tuple[Address, int]]:
        """Committed entries in key order (dirty writes excluded)."""
        for address in sorted(self._flat, key=str.encode):
            yield address, self._flat[address]

    @property
    def journal_depth(self) -> int:
        """Retained journal layers (observability and tests)."""
        return len(self._journal)

    # ------------------------------------------------------------- internals

    def _journal_index(self, root: bytes) -> int | None:
        for index, layer in enumerate(self._journal):
            if layer.root_before == root:
                return index
        return None

    def _value_at(self, root: bytes, address: Address) -> int:
        if root == self._trie.root:
            return self._flat.get(address, 0)
        value = self._flat.get(address)
        for layer in reversed(self._journal):
            if address in layer.undo:
                value = layer.undo[address]
            if layer.root_before == root:
                return value if value is not None else 0
        # The root aged out of the journal after this snapshot was taken:
        # fall back to an authenticated read (the trie retains all roots).
        self.fallback_reads += 1
        raw = MerklePatriciaTrie(store=self._nodes, root=root).get(address.encode())
        return 0 if raw is None else decode_int(raw)

    def _items_at(self, root: bytes) -> Iterator[tuple[Address, int]]:
        if root == self._trie.root:
            yield from self.items()
            return
        overlay: dict[Address, int | None] = {}
        for layer in reversed(self._journal):
            for address, old in layer.undo.items():
                overlay[address] = old
            if layer.root_before == root:
                merged: dict[Address, int] = dict(self._flat)
                for address, old in overlay.items():
                    if old is None:
                        merged.pop(address, None)
                    else:
                        merged[address] = old
                for address in sorted(merged, key=str.encode):
                    yield address, merged[address]
                return
        self.fallback_reads += 1
        for key, value in MerklePatriciaTrie(store=self._nodes, root=root).items():
            yield key.decode(), decode_int(value)


def make_statedb(
    store: KVStore | None = None,
    root: bytes = EMPTY_ROOT,
    cache_size: int = 0,
    flat: bool = True,
    tracer: Tracer | None = None,
) -> StateDB:
    """Build the configured state backend.

    ``flat=True`` (the default) returns the :class:`FlatStateDB` fast
    path; ``flat=False`` returns the trie-backed reference ``StateDB``
    oracle.  Both produce bit-identical root sequences.
    """
    if flat:
        return FlatStateDB(
            store=store, root=root, cache_size=cache_size, tracer=tracer
        )
    return StateDB(store=store, root=root, cache_size=cache_size)
