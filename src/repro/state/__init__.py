"""Account state: MPT-authenticated world state with snapshots."""

from repro.state.account import Account, decode_int, encode_int
from repro.state.cache import CacheStats, LRUCacheMapping
from repro.state.flat import FlatSnapshot, FlatStateDB, JournalLayer, make_statedb
from repro.state.mpt import EMPTY_ROOT, MerklePatriciaTrie, NodeStore, verify_proof
from repro.state.pruning import PruneReport, collect_reachable, prune
from repro.state.statedb import KVNodeMapping, StateDB, StateSnapshot

__all__ = [
    "Account",
    "CacheStats",
    "FlatSnapshot",
    "FlatStateDB",
    "JournalLayer",
    "LRUCacheMapping",
    "PruneReport",
    "EMPTY_ROOT",
    "KVNodeMapping",
    "MerklePatriciaTrie",
    "NodeStore",
    "StateDB",
    "StateSnapshot",
    "collect_reachable",
    "decode_int",
    "encode_int",
    "make_statedb",
    "prune",
    "verify_proof",
]
