"""State pruning: garbage-collecting unreachable trie nodes.

Copy-on-write tries never overwrite nodes, so every epoch's commit grows
the node store by the rewritten path nodes.  Long-running nodes prune:
mark every node reachable from the roots worth keeping (usually the last
few epochs plus any snapshot pinned by an ongoing operation), then sweep
everything else from the backing store.

Pruning is safe by construction — reachability is computed over the trie
structure itself — and destructive: un-kept historical roots become
unreadable afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.state.mpt.nodes import (
    EMPTY_REF,
    BranchNode,
    ExtensionNode,
    LeafNode,
    decode_node,
)
from repro.state.mpt.trie import EMPTY_ROOT, NodeStore


@dataclass(frozen=True)
class PruneReport:
    """What one pruning pass did."""

    live_roots: int
    reachable_nodes: int
    removed_nodes: int

    @property
    def kept_nodes(self) -> int:
        """Nodes that survived the sweep."""
        return self.reachable_nodes


def collect_reachable(store: NodeStore, roots: Iterable[bytes]) -> set[bytes]:
    """Every node ref reachable from the given roots (iterative DFS)."""
    reachable: set[bytes] = set()
    stack = [root for root in roots if root != EMPTY_ROOT]
    while stack:
        ref = stack.pop()
        if ref in reachable or ref == EMPTY_REF:
            continue
        reachable.add(ref)
        node = decode_node(store.raw(ref))
        if isinstance(node, LeafNode):
            continue
        if isinstance(node, ExtensionNode):
            stack.append(node.child)
            continue
        for child in node.children:
            if child != EMPTY_REF:
                stack.append(child)
    return reachable


def prune(store: NodeStore, keep_roots: Iterable[bytes]) -> PruneReport:
    """Remove every node not reachable from ``keep_roots``.

    Returns a report with reachable/removed counts.  The node mapping is
    mutated in place; on a KV-backed mapping the deletes go through to
    the storage engine (and are compacted away on its next compaction).
    """
    roots = [root for root in keep_roots if root != EMPTY_ROOT]
    reachable = collect_reachable(store, roots)
    backing = store._nodes  # noqa: SLF001 - pruning is a NodeStore concern
    doomed = [ref for ref in list(backing) if ref not in reachable]
    for ref in doomed:
        del backing[ref]
    store.drop_caches()  # decoded-node cache must not outlive deletions
    return PruneReport(
        live_roots=len(roots),
        reachable_nodes=len(reachable),
        removed_nodes=len(doomed),
    )
