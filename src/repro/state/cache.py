"""LRU caching for trie nodes backed by a key-value store.

Reading one state entry walks ~8 trie nodes; when nodes live in the LSM
store every walk pays deserialisation and (after a flush) file reads.
``LRUCacheMapping`` interposes a bounded in-memory cache — the same role
LevelDB's block cache plays in the paper's stack.  Writes go through to
the backing mapping immediately (write-through), so crash recovery never
depends on the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, MutableMapping

from repro.analysis import race
from repro.errors import StateError


@dataclass
class CacheStats:
    """Hit/miss counters (observability and tests).

    Increments go through the ``record_*`` methods, which hold a private
    lock: caches sit under the trie node store, which the streaming
    engine's background commit thread reads concurrently with main-thread
    fallback lookups, and a bare ``hits += 1`` is a read-modify-write
    that loses updates under that interleaving (surfaced by the ND201
    rule / concurrency sanitizer, pinned by
    ``tests/state/test_cache_threads.py``).  Reading the fields without
    the lock stays fine — torn reads of a single int cannot happen under
    the GIL and observability tolerates staleness.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def _bump(self, counter: str) -> None:
        with self._lock:
            race.lock_acquired(("cache-stats", id(self)))
            race.trace_write(("cache-stats", id(self), counter))
            setattr(self, counter, getattr(self, counter) + 1)
            race.lock_released(("cache-stats", id(self)))

    def record_hit(self) -> None:
        self._bump("hits")

    def record_miss(self) -> None:
        self._bump("misses")

    def record_eviction(self) -> None:
        self._bump("evictions")

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCacheMapping(MutableMapping[bytes, bytes]):
    """Write-through LRU cache over another byte mapping."""

    def __init__(self, backing: MutableMapping[bytes, bytes], capacity: int = 4096) -> None:
        if capacity <= 0:
            raise StateError("cache capacity must be positive")
        self._backing = backing
        self._capacity = capacity
        self._cache: OrderedDict[bytes, bytes] = OrderedDict()
        self.stats = CacheStats()

    def __getitem__(self, key: bytes) -> bytes:
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.record_hit()
            return cached
        self.stats.record_miss()
        value = self._backing[key]  # KeyError propagates
        self._insert(key, value)
        return value

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self._backing[key] = value
        self._insert(key, value)

    def __delitem__(self, key: bytes) -> None:
        self._cache.pop(key, None)
        del self._backing[key]

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._backing)

    def __len__(self) -> int:
        return len(self._backing)

    def __contains__(self, key: object) -> bool:
        if key in self._cache:
            return True
        return key in self._backing

    def _insert(self, key: bytes, value: bytes) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
            self.stats.record_eviction()

    @property
    def cached_count(self) -> int:
        """Entries currently held in memory."""
        return len(self._cache)
