"""Read/write units and per-address unit lists.

The paper decomposes each transaction ``T_v`` into fine-grained *units*:
``T_v^R`` (its read on some address) and ``T_v^W`` (its write).  Every
address ``A_j`` keeps an ordered read/write set ``RW_j`` holding all units
that touch it, with read units placed before write units and write units
ordered by transaction id (Section IV-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.txn.rwset import Address


class UnitKind(enum.Enum):
    """Whether a unit is a read (``T^R``), a write (``T^W``), or a
    commutative delta (``T^D``)."""

    READ = "R"
    WRITE = "W"
    DELTA = "D"


@dataclass(frozen=True, order=True)
class Unit:
    """One read or write operation of a transaction on one address."""

    txid: int
    kind: UnitKind = field(compare=False)
    address: Address = field(compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"T{self.txid}^{self.kind.value}@{self.address}"


@dataclass
class AddressRWList:
    """The ordered read/write set ``RW_j`` of one address.

    Reads always precede writes (read-write dependency rule) and writes are
    kept in ascending transaction-id order (deterministic write-write
    ordering rule).  Transaction ids appear at most once per list: a
    transaction that both reads and writes the address appears in both
    lists.
    """

    address: Address
    reads: list[int] = field(default_factory=list)
    writes: list[int] = field(default_factory=list)
    deltas: list[int] = field(default_factory=list)

    def add_read(self, txid: int) -> None:
        """Record that ``txid`` reads this address (id order maintained)."""
        self.reads.append(txid)

    def add_write(self, txid: int) -> None:
        """Record that ``txid`` writes this address (id order maintained)."""
        self.writes.append(txid)

    def add_delta(self, txid: int) -> None:
        """Record that ``txid`` applies a commutative delta to this address."""
        self.deltas.append(txid)

    def finalize(self) -> None:
        """Sort the unit lists by transaction id.

        Construction appends in whatever order transactions arrive; the
        paper's ordering rules require id order, restored here once.
        """
        self.reads.sort()
        self.writes.sort()
        self.deltas.sort()

    @property
    def read_set(self) -> set[int]:
        """Ids of transactions reading this address."""
        return set(self.reads)

    @property
    def write_set(self) -> set[int]:
        """Ids of transactions writing this address."""
        return set(self.writes)

    @property
    def delta_set(self) -> set[int]:
        """Ids of transactions applying commutative deltas to this address."""
        return set(self.deltas)

    def units(self) -> Iterator[Unit]:
        """Yield units in ``RW_j`` order: reads, then writes, then deltas."""
        for txid in self.reads:
            yield Unit(txid=txid, kind=UnitKind.READ, address=self.address)
        for txid in self.writes:
            yield Unit(txid=txid, kind=UnitKind.WRITE, address=self.address)
        for txid in self.deltas:
            yield Unit(txid=txid, kind=UnitKind.DELTA, address=self.address)

    def __len__(self) -> int:
        return len(self.reads) + len(self.writes) + len(self.deltas)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        reads = ", ".join(f"T{t}^R" for t in self.reads)
        writes = ", ".join(f"T{t}^W" for t in self.writes)
        deltas = ", ".join(f"T{t}^D" for t in self.deltas)
        return f"RW({self.address}: [{reads} | {writes} | {deltas}])"
