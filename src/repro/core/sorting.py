"""Per-address transaction sorting (Algorithm 2) with optional reordering.

After rank division, addresses are visited in rank order and Lamport-style
sequence numbers are assigned to the units on each address:

* all read units on an address share a sequence number (reads never
  conflict with each other);
* write units receive increasing, pairwise-distinct numbers strictly
  greater than the address's maximum read number;
* a previously-assigned write unit whose number does not exceed the
  address's maximum read number belongs to an unserializable transaction,
  which is aborted — this replaces the conventional scheme's cycle
  detection;
* a transaction that both reads and writes the address keeps a single
  number (atomicity) placed just above the maximum read number.

The *reordering* enhancement (Section IV-D) rescues an unserializable
transaction with multiple write units by re-assigning it a number greater
than the maximum already used on any address it touches, exploiting the
reorderability of write-write dependencies.

Commutative *delta* units extend the scheme with a third unit kind that
behaves like the shared-read case on the write side:

* delta units on an address may freely share one sequence number with
  each other (their effects fold to the same sum in any order — ``D=D``);
* every delta number must be strictly greater than the address's maximum
  read number (readers must observe the pre-delta value — ``R<D``);
* a delta unit never shares a number with a plain write unit on the same
  address (a plain write clobbers the folded value — ``W≠D``).

Plain writes are processed first; deltas second.  A previously-assigned
plain writer colliding with a delta number pays in the write pass, and a
previously-assigned delta colliding with a surviving plain-write number
pays in the delta pass — deterministic in both pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.acg import ACG, DenseACG
from repro.obs.taxonomy import (
    EDGE_RD,
    EDGE_RW,
    EDGE_WD,
    EDGE_WW,
    UNKNOWN_PEER,
    UNSERIALIZABLE_WRITE,
)
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction

Edge = tuple[int, str, str]
"""Attributed conflict edge ``(peer txid, address, kind)`` — see
:data:`repro.obs.taxonomy.EDGE_KINDS`."""

DenseEdge = tuple[int, int, str]
"""Dense-path edge ``(peer dense index, dense address id, kind)``."""

UNASSIGNED = -1
"""Dense-path sentinel for "no sequence number yet" (valid numbers are >= 0)."""

INITIAL_SEQUENCE = 1
"""First sequence number handed out (0 is the "no reads" sentinel)."""


@dataclass
class SortState:
    """Mutable state threaded through the per-address sorting passes.

    ``reasons`` attributes every abort to a taxonomy label (see
    :mod:`repro.obs.taxonomy`); ``edges`` attributes it to the conflict
    that triggered it — the peer transaction, the contended address and
    the violated invariant; ``revived`` records transactions the
    validator's second-chance pass brought back (their reason and edge
    entries are removed, so both maps always cover exactly ``aborted``).
    """

    sequences: dict[int, int] = field(default_factory=dict)
    aborted: set[int] = field(default_factory=set)
    reordered: set[int] = field(default_factory=set)
    reasons: dict[int, str] = field(default_factory=dict)
    edges: dict[int, Edge] = field(default_factory=dict)
    revived: set[int] = field(default_factory=set)

    def sequence_of(self, txid: int) -> int | None:
        """Assigned sequence number of ``txid``, or ``None``."""
        return self.sequences.get(txid)

    def is_live(self, txid: int) -> bool:
        """True while the transaction has not been aborted."""
        return txid not in self.aborted

    def abort(
        self,
        txid: int,
        reason: str = UNSERIALIZABLE_WRITE,
        edge: Edge | None = None,
    ) -> None:
        """Abort the transaction; its units are ignored from now on."""
        self.aborted.add(txid)
        self.sequences.pop(txid, None)
        self.reasons[txid] = reason
        if edge is not None:
            self.edges[txid] = edge


def sort_transactions(
    acg: ACG,
    rank_order: Sequence[Address],
    transactions: Mapping[int, Transaction],
    enable_reorder: bool = True,
    initial_seq: int = INITIAL_SEQUENCE,
) -> SortState:
    """Run Algorithm 2 over every address in rank order.

    Parameters
    ----------
    acg:
        The address-based conflict graph holding the per-address unit lists.
    rank_order:
        Output of :func:`repro.core.rank.divide_ranks`.
    transactions:
        Mapping txid -> transaction, used by the reordering enhancement to
        inspect a transaction's other write units.
    enable_reorder:
        Apply the Section IV-D enhancement instead of aborting when a
        transaction with multiple writes turns out unserializable.
    """
    state = SortState()
    for address in rank_order:
        _sort_address(acg, address, state, transactions, enable_reorder, initial_seq)
    # Transactions touching no address at all (no-ops) conflict with
    # nothing; they commit in the first group.
    for txid in transactions:
        if state.is_live(txid) and state.sequence_of(txid) is None:
            state.sequences[txid] = initial_seq
    return state


def _sort_address(
    acg: ACG,
    address: Address,
    state: SortState,
    transactions: Mapping[int, Transaction],
    enable_reorder: bool,
    initial_seq: int,
) -> None:
    """Assign sequence numbers to the live units of one address."""
    rw = acg.rw(address)
    reads = [t for t in rw.reads if state.is_live(t)]
    writes = [t for t in rw.writes if state.is_live(t)]
    deltas = [t for t in rw.deltas if state.is_live(t)]

    # --- Read units -------------------------------------------------------
    sorted_reads = [t for t in reads if state.sequence_of(t) is not None]
    if not sorted_reads:
        for txid in reads:
            state.sequences[txid] = initial_seq
        max_read = initial_seq if reads else 0
    else:
        values = [state.sequences[t] for t in sorted_reads]
        min_seq = min(values)
        max_read = max(values)
        for txid in reads:
            if state.sequence_of(txid) is None:
                state.sequences[txid] = min_seq

    # --- Previously-assigned write units ----------------------------------
    read_ids = set(reads)
    sorted_writes = [t for t in writes if state.sequence_of(t) is not None]

    # A transaction with both units on this address keeps one number placed
    # directly above the reads (paper line 17-19).  Rule 1 only constrains
    # *distinct* transactions, so the bump compares against the highest
    # read of the others and is skipped when the number already clears it
    # (a transaction sequenced higher on an earlier-ranked address).
    for txid in sorted_writes:
        if txid not in read_ids:
            continue
        other_max = max(
            (
                state.sequences[reader]
                for reader in reads
                if reader != txid and state.sequence_of(reader) is not None
            ),
            default=0,
        )
        if state.sequences[txid] <= other_max:
            state.sequences[txid] = max(max_read, other_max) + 1
        max_read = max(max_read, state.sequences[txid])

    # Unserializability check (paper lines 20-24).  The paper tests
    # ``sequence < maxRead``; rule 1 requires reads to be *strictly*
    # smaller than writes, so equality is also invalid (see DESIGN.md).
    # A plain write landing on a previously-assigned delta number is the
    # same anomaly as a write-write duplicate (W≠D).
    delta_seqs_assigned = {
        state.sequences[t]: t
        for t in reversed(deltas)
        if state.sequence_of(t) is not None
    }
    seen_write_seqs: dict[int, int] = {}
    for txid in sorted_writes:
        sequence = state.sequences[txid]
        duplicate = sequence in seen_write_seqs and seen_write_seqs[sequence] != txid
        too_small = sequence <= max_read and txid not in read_ids
        if too_small or duplicate or sequence in delta_seqs_assigned:
            # Below a read unit, two writes assigned on different earlier
            # addresses collided with equal numbers, or a write collided
            # with a delta number.
            if too_small:
                edge = (_top_live_reader(reads, state, txid), address, EDGE_RW)
            elif duplicate:
                edge = (seen_write_seqs[sequence], address, EDGE_WW)
            else:
                edge = (delta_seqs_assigned[sequence], address, EDGE_WD)
            _resolve_unserializable(
                acg, address, txid, state, transactions, enable_reorder, edge
            )
        if state.is_live(txid):
            seen_write_seqs[state.sequences[txid]] = txid

    # --- Remaining write units --------------------------------------------
    write_seq = initial_seq if max_read == 0 else max_read + 1
    assigned_here = {
        state.sequences[t]
        for t in (*reads, *writes, *deltas)
        if state.is_live(t) and state.sequence_of(t) is not None
    }
    for txid in writes:
        if not state.is_live(txid) or state.sequence_of(txid) is not None:
            continue
        while write_seq in assigned_here:
            write_seq += 1
        state.sequences[txid] = write_seq
        assigned_here.add(write_seq)

    # --- Delta units ------------------------------------------------------
    if deltas:
        _sort_deltas(
            acg, address, deltas, max_read, state, transactions,
            enable_reorder, initial_seq,
        )


def _sort_deltas(
    acg: ACG,
    address: Address,
    deltas: list[int],
    max_read: int,
    state: SortState,
    transactions: Mapping[int, Transaction],
    enable_reorder: bool,
    initial_seq: int,
) -> None:
    """Assign sequence numbers to the live delta units of one address.

    All deltas on the address converge on one shared number — the minimum
    valid number already held by a previously-assigned delta, or a fresh
    number above ``max_read`` that avoids every plain-write number (the
    shared-read rule transplanted to the write side).
    """
    rw = acg.rw(address)
    writer_seqs = {
        state.sequences[t]: t
        for t in reversed(rw.writes)
        if state.is_live(t) and state.sequence_of(t) is not None
    }
    # Previously-assigned deltas: R<D and W≠D violations pay here.
    for txid in deltas:
        sequence = state.sequence_of(txid)
        if sequence is None:
            continue
        if sequence <= max_read or sequence in writer_seqs:
            if sequence <= max_read:
                edge = (_top_live_reader(rw.reads, state, txid), address, EDGE_RD)
            else:
                edge = (writer_seqs[sequence], address, EDGE_WD)
            _resolve_unserializable(
                acg, address, txid, state, transactions, enable_reorder, edge
            )
    # Surviving assigned deltas all hold valid numbers now (a rescue bumps
    # past every assigned number on every touched address).
    valid = [
        state.sequences[t]
        for t in deltas
        if state.is_live(t) and state.sequence_of(t) is not None
    ]
    if valid:
        fill = min(valid)
    else:
        fill = initial_seq if max_read == 0 else max_read + 1
        while fill in writer_seqs:
            fill += 1
    for txid in deltas:
        if state.is_live(txid) and state.sequence_of(txid) is None:
            state.sequences[txid] = fill


def _top_live_reader(
    reads: Sequence[int], state: SortState, exclude: int
) -> int:
    """Live reader holding the highest assigned number (first in list order).

    The attribution peer for an R<W / R<D violation: the reader whose
    number the violating write failed to clear.  ``UNKNOWN_PEER`` when no
    live assigned reader remains (the blocking reader itself aborted later
    in the same pass).
    """
    peer = UNKNOWN_PEER
    best = 0
    for reader in reads:
        if reader == exclude or not state.is_live(reader):
            continue
        sequence = state.sequence_of(reader)
        if sequence is not None and sequence > best:
            best = sequence
            peer = reader
    return peer


def _resolve_unserializable(
    acg: ACG,
    address: Address,
    txid: int,
    state: SortState,
    transactions: Mapping[int, Transaction],
    enable_reorder: bool,
    edge: Edge | None = None,
) -> None:
    """Abort an unserializable transaction, or reorder it when possible.

    Reordering (Section IV-D) targets anomalies caused by *write-write*
    dependencies: a transaction with more than one write unit is bumped to
    a sequence number greater than the maximum assigned on any address it
    touches, which is valid because the order between write units may be
    switched.  The bump is gated on the transaction's reads being
    writer-free: pushing a transaction past every assigned number also
    pushes its *read* units past any other writer of those addresses,
    which always violates the R<W invariant — the validator would abort
    the bumped transaction anyway, after its inflated number has skewed
    the sorting of every later-ranked address it touches (collateral
    aborts).  Restricting the rescue to transactions whose read addresses
    have no other live writer keeps it a pure write-write reorder, which
    is exactly the case Section IV-D argues is safe.
    """
    txn = transactions.get(txid)
    rescuable = (
        enable_reorder
        and txn is not None
        and len(txn.write_set) > 1
        and reads_are_writer_free(acg, txn, state)
    )
    if rescuable:
        new_seq = _max_sequence_on_addresses(acg, txn, state) + 1
        state.sequences[txid] = new_seq
        state.reordered.add(txid)
    else:
        state.abort(txid, edge=edge)


def reads_are_writer_free(acg: ACG, txn: Transaction, state: SortState) -> bool:
    """True when no other live transaction writes any address ``txn`` reads.

    Delta units mutate their address, so they count as writers here.
    """
    for address in txn.read_set:
        rw = acg.rw_lists.get(address)
        if rw is None:
            continue
        for writer in (*rw.writes, *rw.deltas):
            if writer != txn.txid and state.is_live(writer):
                return False
    return True


def _max_sequence_on_addresses(acg: ACG, txn: Transaction, state: SortState) -> int:
    """Maximum sequence currently assigned on any address ``txn`` touches."""
    best = 0
    for address in txn.rwset.addresses:
        rw = acg.rw_lists.get(address)
        if rw is None:
            continue
        for other in (*rw.reads, *rw.writes, *rw.deltas):
            if not state.is_live(other):
                continue
            sequence = state.sequence_of(other)
            if sequence is not None and sequence > best:
                best = sequence
    return best


# ---------------------------------------------------------------------------
# Dense fast path: Algorithm 2 over flat unit arrays
# ---------------------------------------------------------------------------


@dataclass
class DenseSortState:
    """Flat-array equivalent of :class:`SortState` on dense txn indices.

    ``seq[i]`` is the sequence number of the transaction at dense index
    ``i`` (``UNASSIGNED`` until sorted), ``alive[i]`` is 1 until the
    transaction aborts, and ``reordered`` holds the dense indices rescued
    by the Section IV-D enhancement.  ``reasons``/``revived`` mirror
    :class:`SortState` (keyed by dense index).  Requires
    ``initial_seq >= 0`` (the scheduler's config mandates a positive
    value).
    """

    seq: list[int]
    alive: bytearray
    reordered: set[int] = field(default_factory=set)
    reasons: dict[int, str] = field(default_factory=dict)
    edges: dict[int, DenseEdge] = field(default_factory=dict)
    revived: set[int] = field(default_factory=set)

    def abort(
        self,
        txn_idx: int,
        reason: str = UNSERIALIZABLE_WRITE,
        edge: DenseEdge | None = None,
    ) -> None:
        """Abort the transaction; mirrors :meth:`SortState.abort`."""
        self.alive[txn_idx] = 0
        self.seq[txn_idx] = UNASSIGNED
        self.reasons[txn_idx] = reason
        if edge is not None:
            self.edges[txn_idx] = edge

    def aborted_indices(self) -> list[int]:
        """Dense indices of aborted transactions, ascending."""
        return [i for i, live in enumerate(self.alive) if not live]


def sort_transactions_dense(
    dense: DenseACG,
    rank_order: Sequence[int],
    enable_reorder: bool = True,
    initial_seq: int = INITIAL_SEQUENCE,
) -> DenseSortState:
    """Algorithm 2 on dense ids — the fast-path twin of
    :func:`sort_transactions`.

    Produces, position for position, the same sequence numbers, aborts and
    reorder decisions as the reference (dense txn index ``i`` corresponds
    to the ``i``-th smallest txid); only the data layout differs.

    Two address shapes cover the bulk of realistic batches (an address
    touched by one or two transactions) and collapse to a constant-time
    assignment, proven equivalent to the full per-address pass:

    * **reads only** — every unassigned live reader gets the minimum
      assigned read number (or ``initial_seq`` when none is assigned);
      the write-unit machinery is vacuous;
    * **single owner** — all live units belong to one transaction (one
      write, plus at most a read by the same transaction): an unassigned
      owner gets ``initial_seq``; an assigned owner is left untouched
      (``max_read`` is 0 or its own number, so neither the bump, the
      unserializability test, nor the duplicate test can fire).

    The single-owner shortcut assumes ``initial_seq >= 1`` (the config
    invariant) so an assigned number can never be ``<= 0 == max_read``;
    with a nonpositive ``initial_seq`` every address takes the full pass.
    """
    txn_count = dense.txn_count
    state = DenseSortState(
        seq=[UNASSIGNED] * txn_count, alive=bytearray(b"\x01") * txn_count
    )
    seq = state.seq
    alive = state.alive
    read_indptr, read_txns = dense.read_indptr, dense.read_txns
    write_indptr, write_txns = dense.write_indptr, dense.write_txns
    delta_indptr, delta_txns = dense.delta_indptr, dense.delta_txns
    allow_trivial = initial_seq >= 1
    for addr_id in rank_order:
        read_lo, read_hi = read_indptr[addr_id], read_indptr[addr_id + 1]
        write_lo, write_hi = write_indptr[addr_id], write_indptr[addr_id + 1]
        delta_lo, delta_hi = delta_indptr[addr_id], delta_indptr[addr_id + 1]
        reads = [t for t in read_txns[read_lo:read_hi] if alive[t]]
        writes = [t for t in write_txns[write_lo:write_hi] if alive[t]]
        if delta_lo != delta_hi:
            # Delta-carrying addresses take the full pass: the constant
            # shortcuts below model the plain read/write shapes only.
            deltas = [t for t in delta_txns[delta_lo:delta_hi] if alive[t]]
            _sort_address_dense(
                dense, addr_id, reads, writes, deltas, state,
                enable_reorder, initial_seq,
            )
            continue
        if not writes:
            if not reads:
                continue
            # Reads-only address: reads share the minimum assigned number.
            fill = None
            for txn_idx in reads:
                sequence = seq[txn_idx]
                if sequence != UNASSIGNED and (fill is None or sequence < fill):
                    fill = sequence
            if fill is None:
                fill = initial_seq
            for txn_idx in reads:
                if seq[txn_idx] == UNASSIGNED:
                    seq[txn_idx] = fill
            continue
        if (
            allow_trivial
            and len(writes) == 1
            and (not reads or (len(reads) == 1 and reads[0] == writes[0]))
        ):
            # Single-owner address: at most one transaction holds units.
            owner = writes[0]
            if seq[owner] == UNASSIGNED:
                seq[owner] = initial_seq
            continue
        _sort_address_dense(
            dense, addr_id, reads, writes, [], state, enable_reorder, initial_seq
        )
    for txn_idx in range(txn_count):
        if alive[txn_idx] and seq[txn_idx] == UNASSIGNED:
            seq[txn_idx] = initial_seq
    return state


def _top_live_reader_dense(
    reads: Sequence[int], state: DenseSortState, exclude: int
) -> int:
    """Dense twin of :func:`_top_live_reader` (same peer, dense index)."""
    peer = UNKNOWN_PEER
    best = 0
    seq = state.seq
    alive = state.alive
    for reader in reads:
        if reader == exclude or not alive[reader]:
            continue
        sequence = seq[reader]
        if sequence != UNASSIGNED and sequence > best:
            best = sequence
            peer = reader
    return peer


def _sort_address_dense(
    dense: DenseACG,
    addr_id: int,
    reads: list[int],
    writes: list[int],
    deltas: list[int],
    state: DenseSortState,
    enable_reorder: bool,
    initial_seq: int,
) -> None:
    """Assign sequence numbers to the live units of one address (dense).

    ``reads``/``writes``/``deltas`` are the address's live unit lists,
    pre-filtered by the caller's liveness scan.
    """
    seq = state.seq
    alive = state.alive

    # --- Read units -------------------------------------------------------
    sorted_reads = [t for t in reads if seq[t] != UNASSIGNED]
    if not sorted_reads:
        for txn_idx in reads:
            seq[txn_idx] = initial_seq
        max_read = initial_seq if reads else 0
    else:
        values = [seq[t] for t in sorted_reads]
        min_seq = min(values)
        max_read = max(values)
        for txn_idx in reads:
            if seq[txn_idx] == UNASSIGNED:
                seq[txn_idx] = min_seq

    # --- Previously-assigned write units ----------------------------------
    read_ids = set(reads)
    sorted_writes = [t for t in writes if seq[t] != UNASSIGNED]

    for txn_idx in sorted_writes:
        if txn_idx not in read_ids:
            continue
        other_max = max(
            (
                seq[reader]
                for reader in reads
                if reader != txn_idx and seq[reader] != UNASSIGNED
            ),
            default=0,
        )
        if seq[txn_idx] <= other_max:
            seq[txn_idx] = max(max_read, other_max) + 1
        max_read = max(max_read, seq[txn_idx])

    delta_seqs_assigned = {
        seq[t]: t for t in reversed(deltas) if seq[t] != UNASSIGNED
    }
    seen_write_seqs: dict[int, int] = {}
    for txn_idx in sorted_writes:
        sequence = seq[txn_idx]
        duplicate = (
            sequence in seen_write_seqs and seen_write_seqs[sequence] != txn_idx
        )
        too_small = sequence <= max_read and txn_idx not in read_ids
        if too_small or duplicate or sequence in delta_seqs_assigned:
            if too_small:
                peer = _top_live_reader_dense(reads, state, txn_idx)
                edge = (peer, addr_id, EDGE_RW)
            elif duplicate:
                edge = (seen_write_seqs[sequence], addr_id, EDGE_WW)
            else:
                edge = (delta_seqs_assigned[sequence], addr_id, EDGE_WD)
            _resolve_unserializable_dense(
                dense, txn_idx, state, enable_reorder, edge
            )
        if alive[txn_idx]:
            seen_write_seqs[seq[txn_idx]] = txn_idx

    # --- Remaining write units --------------------------------------------
    write_seq = initial_seq if max_read == 0 else max_read + 1
    assigned_here = {
        seq[t]
        for t in (*reads, *writes, *deltas)
        if alive[t] and seq[t] != UNASSIGNED
    }
    for txn_idx in writes:
        if not alive[txn_idx] or seq[txn_idx] != UNASSIGNED:
            continue
        while write_seq in assigned_here:
            write_seq += 1
        seq[txn_idx] = write_seq
        assigned_here.add(write_seq)

    # --- Delta units ------------------------------------------------------
    if deltas:
        writer_seqs = {
            seq[t]: t
            for t in reversed(writes)
            if alive[t] and seq[t] != UNASSIGNED
        }
        for txn_idx in deltas:
            sequence = seq[txn_idx]
            if sequence == UNASSIGNED:
                continue
            if sequence <= max_read or sequence in writer_seqs:
                if sequence <= max_read:
                    peer = _top_live_reader_dense(reads, state, txn_idx)
                    edge = (peer, addr_id, EDGE_RD)
                else:
                    edge = (writer_seqs[sequence], addr_id, EDGE_WD)
                _resolve_unserializable_dense(
                    dense, txn_idx, state, enable_reorder, edge
                )
        valid = [seq[t] for t in deltas if alive[t] and seq[t] != UNASSIGNED]
        if valid:
            fill = min(valid)
        else:
            fill = initial_seq if max_read == 0 else max_read + 1
            while fill in writer_seqs:
                fill += 1
        for txn_idx in deltas:
            if alive[txn_idx] and seq[txn_idx] == UNASSIGNED:
                seq[txn_idx] = fill


def _resolve_unserializable_dense(
    dense: DenseACG,
    txn_idx: int,
    state: DenseSortState,
    enable_reorder: bool,
    edge: DenseEdge | None = None,
) -> None:
    """Dense twin of :func:`_resolve_unserializable` (same gate, same bump)."""
    rescuable = (
        enable_reorder
        and dense.write_count_of(txn_idx) > 1
        and reads_are_writer_free_dense(dense, txn_idx, state)
    )
    if rescuable:
        state.seq[txn_idx] = 1 + max_sequence_on_addresses_dense(
            dense, txn_idx, state
        )
        state.reordered.add(txn_idx)
    else:
        state.abort(txn_idx, edge=edge)


def reads_are_writer_free_dense(
    dense: DenseACG, txn_idx: int, state: DenseSortState
) -> bool:
    """True when no other live transaction writes any address ``txn_idx`` reads.

    Delta units mutate their address, so they count as writers here.
    """
    alive = state.alive
    addrs = dense.txn_read_addrs
    for position in range(
        dense.txn_read_indptr[txn_idx], dense.txn_read_indptr[txn_idx + 1]
    ):
        addr_id = addrs[position]
        for writer in (*dense.writes_of(addr_id), *dense.deltas_of(addr_id)):
            if writer != txn_idx and alive[writer]:
                return False
    return True


def max_sequence_on_addresses_dense(
    dense: DenseACG, txn_idx: int, state: DenseSortState
) -> int:
    """Maximum sequence currently assigned on any address ``txn_idx`` touches."""
    seq = state.seq
    alive = state.alive
    best = 0
    read_addrs = dense.txn_read_addrs[
        dense.txn_read_indptr[txn_idx] : dense.txn_read_indptr[txn_idx + 1]
    ]
    write_addrs = dense.txn_write_addrs[
        dense.txn_write_indptr[txn_idx] : dense.txn_write_indptr[txn_idx + 1]
    ]
    delta_addrs = dense.txn_delta_addrs[
        dense.txn_delta_indptr[txn_idx] : dense.txn_delta_indptr[txn_idx + 1]
    ]
    for addr_id in (*read_addrs, *write_addrs, *delta_addrs):
        for other in (
            *dense.reads_of(addr_id),
            *dense.writes_of(addr_id),
            *dense.deltas_of(addr_id),
        ):
            if not alive[other]:
                continue
            sequence = seq[other]
            if sequence != UNASSIGNED and sequence > best:
                best = sequence
    return best
