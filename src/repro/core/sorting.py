"""Per-address transaction sorting (Algorithm 2) with optional reordering.

After rank division, addresses are visited in rank order and Lamport-style
sequence numbers are assigned to the units on each address:

* all read units on an address share a sequence number (reads never
  conflict with each other);
* write units receive increasing, pairwise-distinct numbers strictly
  greater than the address's maximum read number;
* a previously-assigned write unit whose number does not exceed the
  address's maximum read number belongs to an unserializable transaction,
  which is aborted — this replaces the conventional scheme's cycle
  detection;
* a transaction that both reads and writes the address keeps a single
  number (atomicity) placed just above the maximum read number.

The *reordering* enhancement (Section IV-D) rescues an unserializable
transaction with multiple write units by re-assigning it a number greater
than the maximum already used on any address it touches, exploiting the
reorderability of write-write dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.acg import ACG
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction

INITIAL_SEQUENCE = 1
"""First sequence number handed out (0 is the "no reads" sentinel)."""


@dataclass
class SortState:
    """Mutable state threaded through the per-address sorting passes."""

    sequences: dict[int, int] = field(default_factory=dict)
    aborted: set[int] = field(default_factory=set)
    reordered: set[int] = field(default_factory=set)

    def sequence_of(self, txid: int) -> int | None:
        """Assigned sequence number of ``txid``, or ``None``."""
        return self.sequences.get(txid)

    def is_live(self, txid: int) -> bool:
        """True while the transaction has not been aborted."""
        return txid not in self.aborted

    def abort(self, txid: int) -> None:
        """Abort the transaction; its units are ignored from now on."""
        self.aborted.add(txid)
        self.sequences.pop(txid, None)


def sort_transactions(
    acg: ACG,
    rank_order: Sequence[Address],
    transactions: Mapping[int, Transaction],
    enable_reorder: bool = True,
    initial_seq: int = INITIAL_SEQUENCE,
) -> SortState:
    """Run Algorithm 2 over every address in rank order.

    Parameters
    ----------
    acg:
        The address-based conflict graph holding the per-address unit lists.
    rank_order:
        Output of :func:`repro.core.rank.divide_ranks`.
    transactions:
        Mapping txid -> transaction, used by the reordering enhancement to
        inspect a transaction's other write units.
    enable_reorder:
        Apply the Section IV-D enhancement instead of aborting when a
        transaction with multiple writes turns out unserializable.
    """
    state = SortState()
    for address in rank_order:
        _sort_address(acg, address, state, transactions, enable_reorder, initial_seq)
    # Transactions touching no address at all (no-ops) conflict with
    # nothing; they commit in the first group.
    for txid in transactions:
        if state.is_live(txid) and state.sequence_of(txid) is None:
            state.sequences[txid] = initial_seq
    return state


def _sort_address(
    acg: ACG,
    address: Address,
    state: SortState,
    transactions: Mapping[int, Transaction],
    enable_reorder: bool,
    initial_seq: int,
) -> None:
    """Assign sequence numbers to the live units of one address."""
    rw = acg.rw(address)
    reads = [t for t in rw.reads if state.is_live(t)]
    writes = [t for t in rw.writes if state.is_live(t)]

    # --- Read units -------------------------------------------------------
    sorted_reads = [t for t in reads if state.sequence_of(t) is not None]
    if not sorted_reads:
        for txid in reads:
            state.sequences[txid] = initial_seq
        max_read = initial_seq if reads else 0
    else:
        values = [state.sequences[t] for t in sorted_reads]
        min_seq = min(values)
        max_read = max(values)
        for txid in reads:
            if state.sequence_of(txid) is None:
                state.sequences[txid] = min_seq

    # --- Previously-assigned write units ----------------------------------
    read_ids = set(reads)
    sorted_writes = [t for t in writes if state.sequence_of(t) is not None]

    # A transaction with both units on this address keeps one number placed
    # directly above the reads (paper line 17-19).  Rule 1 only constrains
    # *distinct* transactions, so the bump compares against the highest
    # read of the others and is skipped when the number already clears it
    # (a transaction sequenced higher on an earlier-ranked address).
    for txid in sorted_writes:
        if txid not in read_ids:
            continue
        other_max = max(
            (
                state.sequences[reader]
                for reader in reads
                if reader != txid and state.sequence_of(reader) is not None
            ),
            default=0,
        )
        if state.sequences[txid] <= other_max:
            state.sequences[txid] = max(max_read, other_max) + 1
        max_read = max(max_read, state.sequences[txid])

    # Unserializability check (paper lines 20-24).  The paper tests
    # ``sequence < maxRead``; rule 1 requires reads to be *strictly*
    # smaller than writes, so equality is also invalid (see DESIGN.md).
    seen_write_seqs: dict[int, int] = {}
    for txid in sorted_writes:
        sequence = state.sequences[txid]
        duplicate = sequence in seen_write_seqs and seen_write_seqs[sequence] != txid
        too_small = sequence <= max_read and txid not in read_ids
        if too_small or duplicate:
            # Either below a read unit, or two writes assigned on
            # different earlier addresses collided with equal numbers.
            _resolve_unserializable(
                acg, address, txid, state, transactions, enable_reorder
            )
        if state.is_live(txid):
            seen_write_seqs[state.sequences[txid]] = txid

    # --- Remaining write units --------------------------------------------
    write_seq = initial_seq if max_read == 0 else max_read + 1
    assigned_here = {
        state.sequences[t]
        for t in (*reads, *writes)
        if state.is_live(t) and state.sequence_of(t) is not None
    }
    for txid in writes:
        if not state.is_live(txid) or state.sequence_of(txid) is not None:
            continue
        while write_seq in assigned_here:
            write_seq += 1
        state.sequences[txid] = write_seq
        assigned_here.add(write_seq)


def _resolve_unserializable(
    acg: ACG,
    address: Address,
    txid: int,
    state: SortState,
    transactions: Mapping[int, Transaction],
    enable_reorder: bool,
) -> None:
    """Abort an unserializable transaction, or reorder it when possible.

    Reordering (Section IV-D) targets anomalies caused by *write-write*
    dependencies: a transaction with more than one write unit is bumped to
    a sequence number greater than the maximum assigned on any address it
    touches, which is valid because the order between write units may be
    switched.  The bump is optimistic — if the transaction also *reads*
    contended addresses, moving it later can strand another writer below
    its read; the safety-validation pass resolves such cases by aborting
    the reordered transaction itself (see ``validate_sort``), so enabling
    reordering never aborts more than disabling it.
    """
    txn = transactions.get(txid)
    if enable_reorder and txn is not None and len(txn.write_set) > 1:
        new_seq = _max_sequence_on_addresses(acg, txn, state) + 1
        state.sequences[txid] = new_seq
        state.reordered.add(txid)
    else:
        state.abort(txid)


def _max_sequence_on_addresses(acg: ACG, txn: Transaction, state: SortState) -> int:
    """Maximum sequence currently assigned on any address ``txn`` touches."""
    best = 0
    for address in txn.rwset.addresses:
        rw = acg.rw_lists.get(address)
        if rw is None:
            continue
        for other in (*rw.reads, *rw.writes):
            if not state.is_live(other):
                continue
            sequence = state.sequence_of(other)
            if sequence is not None and sequence > best:
                best = sequence
    return best
