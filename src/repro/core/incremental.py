"""Incremental ACG construction for the streaming epoch engine.

The barrier pipeline builds the dense conflict graph in one shot at
``process_epoch`` time (:func:`~repro.core.acg.build_dense_acg` over an
interned batch).  The streaming engine instead *accumulates* the graph
while epoch ``e+1``'s blocks are speculatively executing — one
:meth:`IncrementalACG.add_block` call per block's simulated results —
and seals the CSR structures once at epoch close, after reconciliation
replaced the few transactions whose speculation was invalidated.

Bit-identity contract: :meth:`IncrementalACG.seal` returns a
:class:`~repro.core.acg.DenseACG` **bit-identical** to
``build_dense_acg(intern_batch(transactions))`` over the same final
transaction set (swept by ``tests/core/test_incremental_acg.py``).  The
two properties that make this cheap to guarantee:

* per-address unit lists in the batch construction are appended in
  ascending txid order, so they equal the *sorted* dense indices of the
  accumulated (arrival-ordered) txid lists;
* the deduplicated adjacency rows are sorted in both constructions, so
  deriving them from the accumulated edge-multiplicity map at seal time
  reproduces them exactly.

The incremental unit-of-work per block is the per-transaction rwset walk
(the ``O(u * N)`` part of graph construction); the seal pays only the
sorts and the CSR flattening.  ``build_seconds`` accumulates both, so
the scheduler's ``graph_construction`` timing stays honest.
"""

from __future__ import annotations

import time
from array import array
from typing import Iterable

from repro.core.acg import DenseACG, _csr
from repro.core.interner import InternedBatch
from repro.errors import SchedulingError
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction


class IncrementalACG:
    """Accumulates one epoch's conflict graph block by block.

    Feed **successful simulated transactions** (rwsets attached) with
    :meth:`add_block`; retract or swap individual transactions with
    :meth:`replace` when reconciliation re-executes them; then
    :meth:`seal` the dense CSR graph for rank division and sorting.
    """

    def __init__(self) -> None:
        self._txns: dict[int, Transaction] = {}
        self._reads: dict[Address, list[int]] = {}
        self._writes: dict[Address, list[int]] = {}
        self._deltas: dict[Address, list[int]] = {}
        self._edges: dict[tuple[Address, Address], int] = {}
        self.build_seconds = 0.0
        self.blocks_fed = 0

    @property
    def txn_count(self) -> int:
        """Transactions currently contributing units to the graph."""
        return len(self._txns)

    def __contains__(self, txid: int) -> bool:
        return txid in self._txns

    # ------------------------------------------------------------- growing

    def add_block(self, transactions: Iterable[Transaction]) -> None:
        """Extend the graph with one block's simulated transactions.

        Rejects duplicate txids exactly like
        :func:`~repro.core.interner.intern_batch`, so a block replayed
        twice fails loudly instead of double-counting units.
        """
        start = time.perf_counter()
        for txn in transactions:
            self._add_txn(txn)
        self.blocks_fed += 1
        self.build_seconds += time.perf_counter() - start

    def replace(self, txid: int, txn: Transaction | None) -> None:
        """Swap (or retract, when ``txn`` is ``None``) one transaction.

        Used by reconciliation: a re-executed transaction's new rwset
        replaces its speculated one; a re-execution that failed retracts
        the transaction entirely (failed simulations never enter CC).
        """
        start = time.perf_counter()
        old = self._txns.pop(txid, None)
        if old is not None:
            self._remove_units(old)
        if txn is not None:
            self._add_txn(txn)
        self.build_seconds += time.perf_counter() - start

    def _add_txn(self, txn: Transaction) -> None:
        if txn.txid in self._txns:
            raise SchedulingError(f"duplicate txid {txn.txid} in batch")
        self._txns[txn.txid] = txn
        txid = txn.txid
        reads = list(txn.rwset.reads)
        for address in reads:
            self._reads.setdefault(address, []).append(txid)
        mutated: list[Address] = []
        for address in txn.rwset.writes:
            self._writes.setdefault(address, []).append(txid)
            mutated.append(address)
        for address in txn.rwset.deltas:
            self._deltas.setdefault(address, []).append(txid)
            mutated.append(address)
        edges = self._edges
        for write_addr in mutated:
            for read_addr in reads:
                if write_addr == read_addr:
                    continue
                key = (write_addr, read_addr)
                edges[key] = edges.get(key, 0) + 1

    def _remove_units(self, txn: Transaction) -> None:
        txid = txn.txid
        reads = list(txn.rwset.reads)
        for address in reads:
            self._reads[address].remove(txid)
        mutated: list[Address] = []
        for address in txn.rwset.writes:
            self._writes[address].remove(txid)
            mutated.append(address)
        for address in txn.rwset.deltas:
            self._deltas[address].remove(txid)
            mutated.append(address)
        edges = self._edges
        for write_addr in mutated:
            for read_addr in reads:
                if write_addr == read_addr:
                    continue
                key = (write_addr, read_addr)
                count = edges[key] - 1
                if count:
                    edges[key] = count
                else:
                    del edges[key]

    # -------------------------------------------------------------- sealing

    def seal(self) -> DenseACG:
        """Freeze the accumulated graph into dense CSR form.

        Bit-identical to ``build_dense_acg(intern_batch(txns))`` over the
        current transaction set; the accumulator itself stays usable (a
        later :meth:`replace` + re-seal reflects the change).
        """
        start = time.perf_counter()
        ordered = sorted(self._txns.values(), key=lambda t: t.txid)
        txids = [t.txid for t in ordered]
        txn_index = {txid: i for i, txid in enumerate(txids)}
        universe: set[Address] = set()
        for units in (self._reads, self._writes, self._deltas):
            for address, txn_list in units.items():
                if txn_list:
                    universe.add(address)
        addresses = sorted(universe)
        addr_ids = {address: i for i, address in enumerate(addresses)}
        batch = InternedBatch(
            transactions=ordered,
            txids=txids,
            txn_index=txn_index,
            addresses=addresses,
            addr_ids=addr_ids,
        )
        addr_count = len(addresses)

        def unit_rows(units: dict[Address, list[int]]) -> list[list[int]]:
            rows: list[list[int]] = [[] for _ in range(addr_count)]
            for address, txn_list in units.items():
                if txn_list:
                    rows[addr_ids[address]] = sorted(
                        txn_index[txid] for txid in txn_list
                    )
            return rows

        read_indptr, read_txns = _csr(unit_rows(self._reads))
        write_indptr, write_txns = _csr(unit_rows(self._writes))
        delta_indptr, delta_txns = _csr(unit_rows(self._deltas))

        out_lists: list[list[int]] = [[] for _ in range(addr_count)]
        in_lists: list[list[int]] = [[] for _ in range(addr_count)]
        edge_mult: dict[int, int] = {}
        for (write_addr, read_addr), count in self._edges.items():
            write_id = addr_ids[write_addr]
            read_id = addr_ids[read_addr]
            edge_mult[write_id * addr_count + read_id] = count
            out_lists[write_id].append(read_id)
            in_lists[read_id].append(write_id)
        for row in out_lists:
            row.sort()
        for row in in_lists:
            row.sort()
        out_indptr, out_ids = _csr(out_lists)
        in_indptr, in_ids = _csr(in_lists)

        txn_reads: list[list[int]] = []
        txn_writes: list[list[int]] = []
        txn_deltas: list[list[int]] = []
        for txn in ordered:
            txn_reads.append([addr_ids[a] for a in txn.rwset.reads])
            txn_writes.append([addr_ids[a] for a in txn.rwset.writes])
            txn_deltas.append([addr_ids[a] for a in txn.rwset.deltas])
        txn_read_indptr, txn_read_addrs = _csr(txn_reads)
        txn_write_indptr, txn_write_addrs = _csr(txn_writes)
        txn_delta_indptr, txn_delta_addrs = _csr(txn_deltas)

        dense = DenseACG(
            batch=batch,
            read_indptr=read_indptr,
            read_txns=read_txns,
            write_indptr=write_indptr,
            write_txns=write_txns,
            delta_indptr=delta_indptr,
            delta_txns=delta_txns,
            out_indptr=out_indptr,
            out_ids=out_ids,
            in_indptr=in_indptr,
            in_ids=in_ids,
            txn_read_indptr=txn_read_indptr,
            txn_read_addrs=txn_read_addrs,
            txn_write_indptr=txn_write_indptr,
            txn_write_addrs=txn_write_addrs,
            txn_delta_indptr=txn_delta_indptr,
            txn_delta_addrs=txn_delta_addrs,
            edge_mult=edge_mult,
        )
        self.build_seconds += time.perf_counter() - start
        return dense


def _csr_equal(left: tuple[array, array], right: tuple[array, array]) -> bool:
    return left[0] == right[0] and left[1] == right[1]


def dense_acg_equal(left: DenseACG, right: DenseACG) -> bool:
    """Structural bit-equality of two dense graphs (test helper)."""
    return (
        left.batch.txids == right.batch.txids
        and left.batch.addresses == right.batch.addresses
        and _csr_equal(
            (left.read_indptr, left.read_txns),
            (right.read_indptr, right.read_txns),
        )
        and _csr_equal(
            (left.write_indptr, left.write_txns),
            (right.write_indptr, right.write_txns),
        )
        and _csr_equal(
            (left.delta_indptr, left.delta_txns),
            (right.delta_indptr, right.delta_txns),
        )
        and _csr_equal(
            (left.out_indptr, left.out_ids), (right.out_indptr, right.out_ids)
        )
        and _csr_equal(
            (left.in_indptr, left.in_ids), (right.in_indptr, right.in_ids)
        )
        and _csr_equal(
            (left.txn_read_indptr, left.txn_read_addrs),
            (right.txn_read_indptr, right.txn_read_addrs),
        )
        and _csr_equal(
            (left.txn_write_indptr, left.txn_write_addrs),
            (right.txn_write_indptr, right.txn_write_addrs),
        )
        and _csr_equal(
            (left.txn_delta_indptr, left.txn_delta_addrs),
            (right.txn_delta_indptr, right.txn_delta_addrs),
        )
        and left.edge_mult == right.edge_mult
    )
