"""Final safety validation of a hierarchical-sorting result.

Algorithm 2 as printed in the paper assigns sequence numbers in one pass
over the addresses.  Three rare corner cases can slip through (see
DESIGN.md, "Implementation hardening"):

1. two writes assigned on *different* earlier-ranked addresses can reach a
   shared later address carrying the same sequence number;
2. re-assigning a transaction (line 17-19) can retroactively invalidate an
   address that was already sorted;
3. the reordering enhancement is optimistic — bumping a transaction that
   also *reads* contended addresses can strand another writer below the
   bumped read.

This module re-checks the two serialization invariants in linear time and
deterministically aborts violators, guaranteeing that every schedule the
library emits is conflict-serializable:

* **R<W**: for distinct live transactions ``u``/``v``, if ``u`` reads an
  address ``v`` writes, then ``seq(u) < seq(v)``;
* **W!=W**: two live writers of the same address never share a number.

Commutative delta units are pseudo-writers: **R<D** (every reader stays
below every delta) and **W!=D** (a delta never shares a number with a
plain write) are enforced the same way, while two deltas on one address
may legally share a number (**D=D** — their effects fold commutatively).

Abort policy: the *writer* is aborted (matching the paper, which aborts
the transaction whose write unit carries the abnormal number) — unless
the blocking reader is a transaction the reordering enhancement bumped,
in which case the bumped transaction is aborted instead (it is the one
that moved; without reordering it would have been aborted anyway, so
reordering can never increase the total abort count).  Ties go to the
larger transaction id.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.acg import ACG, DenseACG
from repro.core.sorting import (
    UNASSIGNED,
    DenseEdge,
    DenseSortState,
    Edge,
    SortState,
    max_sequence_on_addresses_dense,
    reads_are_writer_free,
    reads_are_writer_free_dense,
)
from repro.obs.taxonomy import (
    DOOMED_REORDER,
    EDGE_RD,
    EDGE_RW,
    EDGE_WD,
    EDGE_WW,
    UNKNOWN_PEER,
    UNSERIALIZABLE_WRITE,
)
from repro.txn.transaction import Transaction


def _abort_reason(txid: int, reordered: set[int]) -> str:
    """Taxonomy label for a validator abort.

    A transaction the Section IV-D enhancement bumped was rescued once
    already — aborting it now means the bump itself was doomed; anything
    else is a plain unserializable write.
    """
    return DOOMED_REORDER if txid in reordered else UNSERIALIZABLE_WRITE


def validate_sort(
    acg: ACG,
    state: SortState,
    transactions: Mapping[int, Transaction] | None = None,
    enable_reorder: bool = False,
) -> set[int]:
    """Abort transactions violating the serialization invariants.

    Repeats sweeps until a fixpoint (aborting or bumping only removes or
    defers constraints, and each transaction is bumped at most once, so
    the loop terminates).  With ``enable_reorder``, a stranded writer with
    more than one write unit gets one Section IV-D rescue attempt — a bump
    past every number on its addresses — before it is aborted.  Returns
    the ids aborted here.
    """
    newly_aborted: set[int] = set()
    attempted: set[int] = set(state.reordered)
    addresses = acg.addresses
    while True:
        violators = _find_violations(acg, state, addresses)
        if not violators:
            break
        for txid in sorted(violators):
            txn = transactions.get(txid) if transactions else None
            rescuable = (
                enable_reorder
                and txid not in attempted
                and txn is not None
                and len(txn.write_set) > 1
                and reads_are_writer_free(acg, txn, state)
            )
            if rescuable:
                attempted.add(txid)
                new_seq = 1 + _max_sequence_on_addresses(acg, txn, state)
                state.sequences[txid] = new_seq
                state.reordered.add(txid)
            else:
                state.abort(
                    txid, _abort_reason(txid, state.reordered),
                    edge=violators[txid],
                )
                newly_aborted.add(txid)
    if enable_reorder and transactions is not None:
        newly_aborted -= _resurrect(acg, state, transactions)
    return newly_aborted


def _resurrect(
    acg: ACG, state: SortState, transactions: Mapping[int, Transaction]
) -> set[int]:
    """Second-chance commit for aborted transactions that are now safe.

    Aborting a transaction removes the constraints it imposed, which can
    leave earlier casualties retroactively innocent — most commonly a
    blind writer stranded at an equal number by a reader that has since
    been re-bumped or aborted.  A transaction can be revived at a number
    above everything on its addresses iff none of its read addresses has
    a live writer (its snapshot reads then stay valid no matter how late
    it commits; its writes are write-write reorderable by definition).
    Revival preserves both invariants by construction, so no re-sweep is
    needed.  Processed in ascending id order for determinism.
    """
    revived: set[int] = set()
    for txid in sorted(state.aborted):
        txn = transactions.get(txid)
        if txn is None:
            continue
        if not reads_are_writer_free(acg, txn, state):
            continue
        state.aborted.discard(txid)
        state.reasons.pop(txid, None)
        state.edges.pop(txid, None)
        state.revived.add(txid)
        state.sequences[txid] = 1 + _max_sequence_on_addresses(acg, txn, state)
        revived.add(txid)
    return revived


def _max_sequence_on_addresses(acg: ACG, txn: Transaction, state: SortState) -> int:
    """Maximum sequence currently assigned on any address ``txn`` touches."""
    best = 0
    for address in txn.rwset.addresses:
        rw = acg.rw_lists.get(address)
        if rw is None:
            continue
        for other in (*rw.reads, *rw.writes, *rw.deltas):
            if not state.is_live(other):
                continue
            sequence = state.sequence_of(other)
            if sequence is not None and sequence > best:
                best = sequence
    return best


def _find_violations(
    acg: ACG, state: SortState, addresses: Sequence[str]
) -> dict[int, Edge]:
    """One sweep: every transaction to abort, with its attributed edge.

    The edge names the conflict that convicted the violator — peer txid,
    contended address, violated invariant — and the first conviction in
    sweep order wins (deterministic: addresses in graph order, units in
    list order), so attribution is identical on every replica.
    """
    violators: dict[int, Edge] = {}
    for address in addresses:
        rw = acg.rw_lists[address]
        # Split readers into normally-sorted and reordered; track the two
        # highest normal reads so a writer that also reads the address can
        # be compared against the highest *other* normal read.
        top_seq = 0
        top_reader = -1
        second_seq = 0
        second_reader = -1
        reordered_readers: list[tuple[int, int]] = []
        for txid in rw.reads:
            if not state.is_live(txid):
                continue
            sequence = state.sequence_of(txid)
            if sequence is None:
                continue
            if txid in state.reordered:
                reordered_readers.append((txid, sequence))
                continue
            if sequence > top_seq:
                second_seq = top_seq
                second_reader = top_reader
                top_seq = sequence
                top_reader = txid
            elif sequence > second_seq:
                second_seq = sequence
                second_reader = txid
        seen: dict[int, int] = {}
        for txid in rw.writes:
            if not state.is_live(txid):
                continue
            sequence = state.sequence_of(txid)
            if sequence is None:
                # Unassigned live writer: sorting never reached it, which
                # cannot happen for a completed run; treat as violation.
                violators.setdefault(txid, (UNKNOWN_PEER, address, EDGE_WW))
                continue
            limit = second_seq if txid == top_reader else top_seq
            if sequence <= limit:
                peer = second_reader if txid == top_reader else top_reader
                violators.setdefault(txid, (peer, address, EDGE_RW))
            else:
                for reader, read_seq in reordered_readers:
                    if reader != txid and sequence <= read_seq:
                        # A bumped reader stranded an otherwise-valid
                        # writer: the bumped transaction pays.
                        violators.setdefault(reader, (txid, address, EDGE_RW))
            prior = seen.get(sequence)
            if prior is not None and prior != txid:
                victim = _duplicate_victim(prior, txid, state)
                peer = txid if victim == prior else prior
                violators.setdefault(victim, (peer, address, EDGE_WW))
            else:
                seen[sequence] = txid
        # Delta units: pseudo-writers.  R<D against every normal reader
        # (a delta transaction never reads its own delta address, so the
        # top-reader carve-out is vacuous), W!=D against the plain
        # writers recorded in ``seen``; two deltas may share a number.
        for txid in rw.deltas:
            if not state.is_live(txid):
                continue
            sequence = state.sequence_of(txid)
            if sequence is None:
                violators.setdefault(txid, (UNKNOWN_PEER, address, EDGE_WD))
                continue
            if sequence <= top_seq:
                violators.setdefault(txid, (top_reader, address, EDGE_RD))
            else:
                for reader, read_seq in reordered_readers:
                    if reader != txid and sequence <= read_seq:
                        violators.setdefault(reader, (txid, address, EDGE_RD))
            prior = seen.get(sequence)
            if prior is not None and prior != txid:
                victim = _duplicate_victim(prior, txid, state)
                peer = txid if victim == prior else prior
                violators.setdefault(victim, (peer, address, EDGE_WD))
    return violators


def _duplicate_victim(first: int, second: int, state: SortState) -> int:
    """Which of two equal-sequence writers aborts: reordered, else larger id."""
    if first in state.reordered and second not in state.reordered:
        return first
    if second in state.reordered and first not in state.reordered:
        return second
    return max(first, second)


# ---------------------------------------------------------------------------
# Dense fast path: validation over flat unit arrays
# ---------------------------------------------------------------------------


def validate_sort_dense(
    dense: DenseACG, state: DenseSortState, enable_reorder: bool = False
) -> set[int]:
    """Fast-path twin of :func:`validate_sort` on dense ids.

    Same fixpoint sweeps, same rescue gate, same resurrection pass; the
    returned set holds *dense transaction indices* aborted here.
    """
    newly_aborted: set[int] = set()
    attempted: set[int] = set(state.reordered)
    while True:
        violators = _find_violations_dense(dense, state)
        if not violators:
            break
        for txn_idx in sorted(violators):
            rescuable = (
                enable_reorder
                and txn_idx not in attempted
                and dense.write_count_of(txn_idx) > 1
                and reads_are_writer_free_dense(dense, txn_idx, state)
            )
            if rescuable:
                attempted.add(txn_idx)
                state.seq[txn_idx] = 1 + max_sequence_on_addresses_dense(
                    dense, txn_idx, state
                )
                state.reordered.add(txn_idx)
            else:
                state.abort(
                    txn_idx, _abort_reason(txn_idx, state.reordered),
                    edge=violators[txn_idx],
                )
                newly_aborted.add(txn_idx)
    if enable_reorder:
        newly_aborted -= _resurrect_dense(dense, state)
    return newly_aborted


def _resurrect_dense(dense: DenseACG, state: DenseSortState) -> set[int]:
    """Dense twin of :func:`_resurrect` (same candidate order, same rule)."""
    revived: set[int] = set()
    for txn_idx in state.aborted_indices():
        if not reads_are_writer_free_dense(dense, txn_idx, state):
            continue
        state.alive[txn_idx] = 1
        state.reasons.pop(txn_idx, None)
        state.edges.pop(txn_idx, None)
        state.revived.add(txn_idx)
        state.seq[txn_idx] = 1 + max_sequence_on_addresses_dense(
            dense, txn_idx, state
        )
        revived.add(txn_idx)
    return revived


def _find_violations_dense(
    dense: DenseACG, state: DenseSortState
) -> dict[int, DenseEdge]:
    """One sweep over all dense addresses: every transaction to abort.

    Mirrors :func:`_find_violations` — same victims, same attributed
    edges (on dense indices/address ids).
    """
    seq = state.seq
    alive = state.alive
    reordered = state.reordered
    violators: dict[int, DenseEdge] = {}
    for addr_id in range(dense.addr_count):
        top_seq = 0
        top_reader = -1
        second_seq = 0
        second_reader = -1
        reordered_readers: list[tuple[int, int]] = []
        for txn_idx in dense.reads_of(addr_id):
            if not alive[txn_idx]:
                continue
            sequence = seq[txn_idx]
            if sequence == UNASSIGNED:
                continue
            if txn_idx in reordered:
                reordered_readers.append((txn_idx, sequence))
                continue
            if sequence > top_seq:
                second_seq = top_seq
                second_reader = top_reader
                top_seq = sequence
                top_reader = txn_idx
            elif sequence > second_seq:
                second_seq = sequence
                second_reader = txn_idx
        seen: dict[int, int] = {}
        for txn_idx in dense.writes_of(addr_id):
            if not alive[txn_idx]:
                continue
            sequence = seq[txn_idx]
            if sequence == UNASSIGNED:
                violators.setdefault(txn_idx, (UNKNOWN_PEER, addr_id, EDGE_WW))
                continue
            limit = second_seq if txn_idx == top_reader else top_seq
            if sequence <= limit:
                peer = second_reader if txn_idx == top_reader else top_reader
                violators.setdefault(txn_idx, (peer, addr_id, EDGE_RW))
            else:
                for reader, read_seq in reordered_readers:
                    if reader != txn_idx and sequence <= read_seq:
                        violators.setdefault(reader, (txn_idx, addr_id, EDGE_RW))
            prior = seen.get(sequence)
            if prior is not None and prior != txn_idx:
                victim = _duplicate_victim_dense(prior, txn_idx, reordered)
                peer = txn_idx if victim == prior else prior
                violators.setdefault(victim, (peer, addr_id, EDGE_WW))
            else:
                seen[sequence] = txn_idx
        for txn_idx in dense.deltas_of(addr_id):
            if not alive[txn_idx]:
                continue
            sequence = seq[txn_idx]
            if sequence == UNASSIGNED:
                violators.setdefault(txn_idx, (UNKNOWN_PEER, addr_id, EDGE_WD))
                continue
            if sequence <= top_seq:
                violators.setdefault(txn_idx, (top_reader, addr_id, EDGE_RD))
            else:
                for reader, read_seq in reordered_readers:
                    if reader != txn_idx and sequence <= read_seq:
                        violators.setdefault(reader, (txn_idx, addr_id, EDGE_RD))
            prior = seen.get(sequence)
            if prior is not None and prior != txn_idx:
                victim = _duplicate_victim_dense(prior, txn_idx, reordered)
                peer = txn_idx if victim == prior else prior
                violators.setdefault(victim, (peer, addr_id, EDGE_WD))
    return violators


def _duplicate_victim_dense(first: int, second: int, reordered: set[int]) -> int:
    """Which of two equal-sequence writers aborts (dense-index rule)."""
    if first in reordered and second not in reordered:
        return first
    if second in reordered and first not in reordered:
        return second
    return max(first, second)


def check_invariants(
    transactions: Mapping[int, Transaction] | Sequence[Transaction],
    sequences: Mapping[int, int],
    aborted: set[int] | frozenset[int] = frozenset(),
) -> list[str]:
    """Return human-readable descriptions of invariant violations.

    Used by tests and by :mod:`repro.analysis` to certify schedules from
    *any* scheme (Nezha, CG, OCC).  An empty list means the committed
    transactions form a valid serialization order.
    """
    if not isinstance(transactions, Mapping):
        transactions = {t.txid: t for t in transactions}
    problems: list[str] = []
    readers: dict[str, list[tuple[int, int]]] = {}
    writers: dict[str, list[tuple[int, int]]] = {}
    delta_writers: dict[str, list[tuple[int, int]]] = {}
    for txid, txn in transactions.items():
        if txid in aborted:
            continue
        if txid not in sequences:
            problems.append(f"committed T{txid} has no sequence number")
            continue
        sequence = sequences[txid]
        for address in txn.read_set:
            readers.setdefault(address, []).append((txid, sequence))
        for address in txn.write_set:
            writers.setdefault(address, []).append((txid, sequence))
        for address in txn.delta_set:
            delta_writers.setdefault(address, []).append((txid, sequence))
    for address, write_list in sorted(writers.items()):
        seen: dict[int, int] = {}
        for txid, sequence in write_list:
            prior = seen.get(sequence)
            if prior is not None and prior != txid:
                problems.append(
                    f"writes of T{prior} and T{txid} on {address} share sequence {sequence}"
                )
            seen[sequence] = txid
        for reader, read_seq in readers.get(address, ()):
            for writer, write_seq in write_list:
                if reader != writer and write_seq <= read_seq:
                    problems.append(
                        f"T{reader} reads {address} at seq {read_seq} but "
                        f"T{writer} writes it at seq {write_seq}"
                    )
    # Delta pseudo-writers: R<D against every reader, W!=D against every
    # plain writer; two deltas may legally share a number (D=D).
    for address, delta_list in sorted(delta_writers.items()):
        plain_seqs = {sequence: txid for txid, sequence in writers.get(address, ())}
        for txid, sequence in delta_list:
            plain = plain_seqs.get(sequence)
            if plain is not None and plain != txid:
                problems.append(
                    f"delta of T{txid} and write of T{plain} on {address} "
                    f"share sequence {sequence}"
                )
            for reader, read_seq in readers.get(address, ()):
                if reader != txid and sequence <= read_seq:
                    problems.append(
                        f"T{reader} reads {address} at seq {read_seq} but "
                        f"T{txid} applies a delta at seq {sequence}"
                    )
    return problems
