"""Final safety validation of a hierarchical-sorting result.

Algorithm 2 as printed in the paper assigns sequence numbers in one pass
over the addresses.  Three rare corner cases can slip through (see
DESIGN.md, "Implementation hardening"):

1. two writes assigned on *different* earlier-ranked addresses can reach a
   shared later address carrying the same sequence number;
2. re-assigning a transaction (line 17-19) can retroactively invalidate an
   address that was already sorted;
3. the reordering enhancement is optimistic — bumping a transaction that
   also *reads* contended addresses can strand another writer below the
   bumped read.

This module re-checks the two serialization invariants in linear time and
deterministically aborts violators, guaranteeing that every schedule the
library emits is conflict-serializable:

* **R<W**: for distinct live transactions ``u``/``v``, if ``u`` reads an
  address ``v`` writes, then ``seq(u) < seq(v)``;
* **W!=W**: two live writers of the same address never share a number.

Abort policy: the *writer* is aborted (matching the paper, which aborts
the transaction whose write unit carries the abnormal number) — unless
the blocking reader is a transaction the reordering enhancement bumped,
in which case the bumped transaction is aborted instead (it is the one
that moved; without reordering it would have been aborted anyway, so
reordering can never increase the total abort count).  Ties go to the
larger transaction id.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.acg import ACG
from repro.core.sorting import SortState
from repro.txn.transaction import Transaction


def validate_sort(
    acg: ACG,
    state: SortState,
    transactions: Mapping[int, Transaction] | None = None,
    enable_reorder: bool = False,
) -> set[int]:
    """Abort transactions violating the serialization invariants.

    Repeats sweeps until a fixpoint (aborting or bumping only removes or
    defers constraints, and each transaction is bumped at most once, so
    the loop terminates).  With ``enable_reorder``, a stranded writer with
    more than one write unit gets one Section IV-D rescue attempt — a bump
    past every number on its addresses — before it is aborted.  Returns
    the ids aborted here.
    """
    newly_aborted: set[int] = set()
    attempted: set[int] = set(state.reordered)
    addresses = acg.addresses
    while True:
        violators = _find_violations(acg, state, addresses)
        if not violators:
            break
        for txid in sorted(violators):
            txn = transactions.get(txid) if transactions else None
            rescuable = (
                enable_reorder
                and txid not in attempted
                and txn is not None
                and len(txn.write_set) > 1
            )
            if rescuable:
                attempted.add(txid)
                new_seq = 1 + _max_sequence_on_addresses(acg, txn, state)
                state.sequences[txid] = new_seq
                state.reordered.add(txid)
            else:
                state.abort(txid)
                newly_aborted.add(txid)
    if enable_reorder and transactions is not None:
        newly_aborted -= _resurrect(acg, state, transactions)
    return newly_aborted


def _resurrect(
    acg: ACG, state: SortState, transactions: Mapping[int, Transaction]
) -> set[int]:
    """Second-chance commit for aborted transactions that are now safe.

    Aborting a transaction removes the constraints it imposed, which can
    leave earlier casualties retroactively innocent — most commonly a
    blind writer stranded at an equal number by a reader that has since
    been re-bumped or aborted.  A transaction can be revived at a number
    above everything on its addresses iff none of its read addresses has
    a live writer (its snapshot reads then stay valid no matter how late
    it commits; its writes are write-write reorderable by definition).
    Revival preserves both invariants by construction, so no re-sweep is
    needed.  Processed in ascending id order for determinism.
    """
    revived: set[int] = set()
    for txid in sorted(state.aborted):
        txn = transactions.get(txid)
        if txn is None:
            continue
        if not _reads_are_writer_free(acg, txn, state):
            continue
        state.aborted.discard(txid)
        state.sequences[txid] = 1 + _max_sequence_on_addresses(acg, txn, state)
        revived.add(txid)
    return revived


def _reads_are_writer_free(acg: ACG, txn: Transaction, state: SortState) -> bool:
    """True when no live transaction writes any address ``txn`` reads."""
    for address in txn.read_set:
        rw = acg.rw_lists.get(address)
        if rw is None:
            continue
        for writer in rw.writes:
            if writer != txn.txid and state.is_live(writer):
                return False
    return True


def _max_sequence_on_addresses(acg: ACG, txn: Transaction, state: SortState) -> int:
    """Maximum sequence currently assigned on any address ``txn`` touches."""
    best = 0
    for address in txn.rwset.addresses:
        rw = acg.rw_lists.get(address)
        if rw is None:
            continue
        for other in (*rw.reads, *rw.writes):
            if not state.is_live(other):
                continue
            sequence = state.sequence_of(other)
            if sequence is not None and sequence > best:
                best = sequence
    return best


def _find_violations(
    acg: ACG, state: SortState, addresses: Sequence[str]
) -> set[int]:
    """One sweep: collect every transaction to abort."""
    violators: set[int] = set()
    for address in addresses:
        rw = acg.rw_lists[address]
        # Split readers into normally-sorted and reordered; track the two
        # highest normal reads so a writer that also reads the address can
        # be compared against the highest *other* normal read.
        top_seq = 0
        top_reader = -1
        second_seq = 0
        reordered_readers: list[tuple[int, int]] = []
        for txid in rw.reads:
            if not state.is_live(txid):
                continue
            sequence = state.sequence_of(txid)
            if sequence is None:
                continue
            if txid in state.reordered:
                reordered_readers.append((txid, sequence))
                continue
            if sequence > top_seq:
                second_seq = top_seq
                top_seq = sequence
                top_reader = txid
            elif sequence > second_seq:
                second_seq = sequence
        seen: dict[int, int] = {}
        for txid in rw.writes:
            if not state.is_live(txid):
                continue
            sequence = state.sequence_of(txid)
            if sequence is None:
                # Unassigned live writer: sorting never reached it, which
                # cannot happen for a completed run; treat as violation.
                violators.add(txid)
                continue
            limit = second_seq if txid == top_reader else top_seq
            if sequence <= limit:
                violators.add(txid)
            else:
                for reader, read_seq in reordered_readers:
                    if reader != txid and sequence <= read_seq:
                        # A bumped reader stranded an otherwise-valid
                        # writer: the bumped transaction pays.
                        violators.add(reader)
            prior = seen.get(sequence)
            if prior is not None and prior != txid:
                violators.add(_duplicate_victim(prior, txid, state))
            else:
                seen[sequence] = txid
    return violators


def _duplicate_victim(first: int, second: int, state: SortState) -> int:
    """Which of two equal-sequence writers aborts: reordered, else larger id."""
    if first in state.reordered and second not in state.reordered:
        return first
    if second in state.reordered and first not in state.reordered:
        return second
    return max(first, second)


def check_invariants(
    transactions: Mapping[int, Transaction] | Sequence[Transaction],
    sequences: Mapping[int, int],
    aborted: set[int] | frozenset[int] = frozenset(),
) -> list[str]:
    """Return human-readable descriptions of invariant violations.

    Used by tests and by :mod:`repro.analysis` to certify schedules from
    *any* scheme (Nezha, CG, OCC).  An empty list means the committed
    transactions form a valid serialization order.
    """
    if not isinstance(transactions, Mapping):
        transactions = {t.txid: t for t in transactions}
    problems: list[str] = []
    readers: dict[str, list[tuple[int, int]]] = {}
    writers: dict[str, list[tuple[int, int]]] = {}
    for txid, txn in transactions.items():
        if txid in aborted:
            continue
        if txid not in sequences:
            problems.append(f"committed T{txid} has no sequence number")
            continue
        sequence = sequences[txid]
        for address in txn.read_set:
            readers.setdefault(address, []).append((txid, sequence))
        for address in txn.write_set:
            writers.setdefault(address, []).append((txid, sequence))
    for address, write_list in sorted(writers.items()):
        seen: dict[int, int] = {}
        for txid, sequence in write_list:
            prior = seen.get(sequence)
            if prior is not None and prior != txid:
                problems.append(
                    f"writes of T{prior} and T{txid} on {address} share sequence {sequence}"
                )
            seen[sequence] = txid
        for reader, read_seq in readers.get(address, ()):
            for writer, write_seq in write_list:
                if reader != writer and write_seq <= read_seq:
                    problems.append(
                        f"T{reader} reads {address} at seq {read_seq} but "
                        f"T{writer} writes it at seq {write_seq}"
                    )
    return problems
