"""Commit schedules: the output of every concurrency-control scheme.

A schedule partitions the committed transactions into *commit groups*;
groups commit in ascending sequence order while the transactions inside a
group are pairwise conflict-free and may commit concurrently (the paper's
"total commit order with a certain degree of concurrency").  A fully
serial schedule is simply one transaction per group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence


@dataclass(frozen=True)
class CommitGroup:
    """Transactions sharing one sequence number."""

    sequence: int
    txids: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.txids)


@dataclass(frozen=True)
class Schedule:
    """A total commit order with intra-group concurrency.

    Attributes
    ----------
    groups:
        Commit groups in ascending sequence order; txids inside a group are
        sorted ascending for determinism.
    aborted:
        Ids of transactions aborted by concurrency control, sorted.
    reordered:
        Ids rescued by the reordering enhancement (Nezha only), sorted.
    """

    groups: tuple[CommitGroup, ...] = ()
    aborted: tuple[int, ...] = ()
    reordered: tuple[int, ...] = ()

    @property
    def committed(self) -> tuple[int, ...]:
        """All committed txids in commit order (group by group)."""
        out: list[int] = []
        for group in self.groups:
            out.extend(group.txids)
        return tuple(out)

    @property
    def committed_count(self) -> int:
        """Number of committed transactions."""
        return sum(len(group) for group in self.groups)

    @property
    def aborted_count(self) -> int:
        """Number of aborted transactions."""
        return len(self.aborted)

    @property
    def total_count(self) -> int:
        """Committed plus aborted transactions."""
        return self.committed_count + self.aborted_count

    @property
    def abort_rate(self) -> float:
        """Fraction of input transactions that were aborted."""
        total = self.total_count
        return self.aborted_count / total if total else 0.0

    @property
    def max_group_size(self) -> int:
        """Size of the largest concurrent commit group."""
        return max((len(group) for group in self.groups), default=0)

    @property
    def mean_group_size(self) -> float:
        """Average commit-group size (commit concurrency measure)."""
        if not self.groups:
            return 0.0
        return self.committed_count / len(self.groups)

    def sequences(self) -> dict[int, int]:
        """Mapping txid -> sequence number for committed transactions."""
        return {
            txid: group.sequence for group in self.groups for txid in group.txids
        }

    def serial_order(self) -> list[int]:
        """The equivalent serial order: ascending (sequence, txid)."""
        return list(self.committed)

    def iter_groups(self) -> Iterator[CommitGroup]:
        """Yield commit groups in commit order."""
        return iter(self.groups)


def schedule_from_sequences(
    sequences: Mapping[int, int],
    aborted: Sequence[int] | set[int] = (),
    reordered: Sequence[int] | set[int] = (),
) -> Schedule:
    """Group committed transactions by their sequence numbers."""
    aborted_set = set(aborted)
    by_sequence: dict[int, list[int]] = {}
    for txid, sequence in sequences.items():
        if txid in aborted_set:
            continue
        by_sequence.setdefault(sequence, []).append(txid)
    groups = tuple(
        CommitGroup(sequence=sequence, txids=tuple(sorted(by_sequence[sequence])))
        for sequence in sorted(by_sequence)
    )
    return Schedule(
        groups=groups,
        aborted=tuple(sorted(aborted_set)),
        reordered=tuple(sorted(set(reordered) - aborted_set)),
    )


def serial_schedule(txids: Sequence[int], aborted: Sequence[int] = ()) -> Schedule:
    """Build a one-transaction-per-group schedule (the Serial baseline)."""
    aborted_set = set(aborted)
    groups = tuple(
        CommitGroup(sequence=position + 1, txids=(txid,))
        for position, txid in enumerate(t for t in txids if t not in aborted_set)
    )
    return Schedule(groups=groups, aborted=tuple(sorted(aborted_set)))
