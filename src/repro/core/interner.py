"""Per-batch interning of addresses and transaction ids to dense ints.

The concurrency-control hot path (rank division, transaction sorting,
validation) spends most of its time hashing address strings and copying
per-vertex sets when it runs on the string-keyed reference structures.
The fast path instead interns every address and txid to a contiguous
integer *once* per batch and runs every later phase on flat arrays
indexed by those ids.

Two properties make the dense pipeline bit-identical to the reference
one (see ``tests/core/test_fastpath.py``):

* address ids are assigned in **sorted address order**, so comparing two
  ids is equivalent to comparing the two address strings — every
  "smallest address wins" tie-break in Algorithm 1 picks the same vertex;
* transaction indices are assigned in **ascending txid order**, so the
  deterministic write-write ordering rule (ascending txid) is preserved
  by plain integer comparison.

The mapping back to strings is applied only at the ``Schedule`` boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SchedulingError
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction


@dataclass
class InternedBatch:
    """Dense-id views of one batch of transactions.

    Attributes
    ----------
    transactions:
        The batch in ascending txid order; a transaction's position in
        this list is its dense index.
    txids:
        Dense index -> txid (ascending).
    txn_index:
        txid -> dense index.
    addresses:
        Dense address id -> address string, in sorted address order.
    addr_ids:
        Address string -> dense address id.
    """

    transactions: list[Transaction]
    txids: list[int]
    txn_index: dict[int, int]
    addresses: list[Address]
    addr_ids: dict[Address, int]

    @property
    def txn_count(self) -> int:
        """Number of transactions in the batch."""
        return len(self.transactions)

    @property
    def addr_count(self) -> int:
        """Number of distinct addresses the batch touches."""
        return len(self.addresses)

    def address_of(self, addr_id: int) -> Address:
        """The address string for a dense address id."""
        return self.addresses[addr_id]

    def txid_of(self, index: int) -> int:
        """The txid for a dense transaction index."""
        return self.txids[index]


def intern_batch(
    transactions: Sequence[Transaction] | Iterable[Transaction],
) -> InternedBatch:
    """Intern one batch: sort by txid, reject duplicates, number addresses.

    Runs in ``O(N log N + U log U)`` for ``N`` transactions touching ``U``
    distinct addresses — both sorts are single C-level passes; every
    subsequent phase then works on ints only.
    """
    ordered = sorted(transactions, key=lambda t: t.txid)
    txids: list[int] = []
    txn_index: dict[int, int] = {}
    seen: set[Address] = set()
    for position, txn in enumerate(ordered):
        if txn.txid in txn_index:
            raise SchedulingError(f"duplicate txid {txn.txid} in batch")
        txn_index[txn.txid] = position
        txids.append(txn.txid)
        seen.update(txn.rwset.reads)
        seen.update(txn.rwset.writes)
        seen.update(txn.rwset.deltas)
    addresses = sorted(seen)
    addr_ids = {address: i for i, address in enumerate(addresses)}
    return InternedBatch(
        transactions=ordered,
        txids=txids,
        txn_index=txn_index,
        addresses=addresses,
        addr_ids=addr_ids,
    )
