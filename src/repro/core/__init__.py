"""Nezha concurrency control: ACG construction plus hierarchical sorting."""

from repro.core.acg import ACG, build_acg
from repro.core.export import acg_to_dot, conflict_graph_to_dot, schedule_to_dot
from repro.core.rank import RankPolicy, divide_ranks, rank_addresses
from repro.core.schedule import (
    CommitGroup,
    Schedule,
    schedule_from_sequences,
    serial_schedule,
)
from repro.core.scheduler import NezhaConfig, NezhaResult, NezhaScheduler, PhaseTimings
from repro.core.sorting import INITIAL_SEQUENCE, SortState, sort_transactions
from repro.core.units import AddressRWList, Unit, UnitKind
from repro.core.validate import check_invariants, validate_sort

__all__ = [
    "ACG",
    "AddressRWList",
    "CommitGroup",
    "INITIAL_SEQUENCE",
    "NezhaConfig",
    "NezhaResult",
    "NezhaScheduler",
    "PhaseTimings",
    "RankPolicy",
    "Schedule",
    "SortState",
    "Unit",
    "UnitKind",
    "acg_to_dot",
    "build_acg",
    "conflict_graph_to_dot",
    "check_invariants",
    "divide_ranks",
    "rank_addresses",
    "schedule_from_sequences",
    "schedule_to_dot",
    "serial_schedule",
    "sort_transactions",
    "validate_sort",
]
