"""Nezha concurrency control: ACG construction plus hierarchical sorting."""

from repro.core.acg import (
    ACG,
    DenseACG,
    build_acg,
    build_dense_acg,
    dense_acg_from_transactions,
)
from repro.core.export import acg_to_dot, conflict_graph_to_dot, schedule_to_dot
from repro.core.incremental import IncrementalACG, dense_acg_equal
from repro.core.interner import InternedBatch, intern_batch
from repro.core.rank import (
    RankPolicy,
    divide_ranks,
    divide_ranks_dense,
    rank_addresses,
)
from repro.core.schedule import (
    CommitGroup,
    Schedule,
    schedule_from_sequences,
    serial_schedule,
)
from repro.core.scheduler import NezhaConfig, NezhaResult, NezhaScheduler, PhaseTimings
from repro.core.sorting import (
    INITIAL_SEQUENCE,
    DenseSortState,
    SortState,
    sort_transactions,
    sort_transactions_dense,
)
from repro.core.units import AddressRWList, Unit, UnitKind
from repro.core.validate import check_invariants, validate_sort, validate_sort_dense

__all__ = [
    "ACG",
    "AddressRWList",
    "CommitGroup",
    "DenseACG",
    "DenseSortState",
    "INITIAL_SEQUENCE",
    "IncrementalACG",
    "InternedBatch",
    "NezhaConfig",
    "NezhaResult",
    "NezhaScheduler",
    "PhaseTimings",
    "RankPolicy",
    "Schedule",
    "SortState",
    "Unit",
    "UnitKind",
    "acg_to_dot",
    "build_acg",
    "build_dense_acg",
    "conflict_graph_to_dot",
    "check_invariants",
    "dense_acg_equal",
    "dense_acg_from_transactions",
    "divide_ranks",
    "divide_ranks_dense",
    "intern_batch",
    "rank_addresses",
    "schedule_from_sequences",
    "schedule_to_dot",
    "serial_schedule",
    "sort_transactions",
    "sort_transactions_dense",
    "validate_sort",
    "validate_sort_dense",
]
