"""The Nezha concurrency-control scheduler (public entry point).

Chains the three steps of Figure 3(b) — ACG construction, sorting-rank
division, and per-address transaction sorting — plus the safety
validation pass, and reports per-step wall-clock timings so benchmarks can
reproduce the paper's sub-phase breakdown (Figure 10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.acg import ACG, build_acg
from repro.core.rank import RankPolicy, divide_ranks
from repro.core.schedule import Schedule, schedule_from_sequences
from repro.core.sorting import INITIAL_SEQUENCE, sort_transactions
from repro.core.validate import validate_sort
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class NezhaConfig:
    """Tunables for the Nezha scheduler.

    Attributes
    ----------
    enable_reorder:
        Apply the Section IV-D reordering enhancement (default on; turning
        it off reproduces the ablation in Figure 11's discussion).
    enable_validation:
        Run the final safety pass (see DESIGN.md).  Kept switchable for
        ablation benchmarks; production use should leave it on.
    initial_seq:
        First sequence number assigned (must be positive).
    rank_policy:
        Cycle-breaking rule of Algorithm 1 (ablation knob; the default is
        the paper's most-dependencies-first choice).
    """

    enable_reorder: bool = True
    enable_validation: bool = True
    initial_seq: int = INITIAL_SEQUENCE
    rank_policy: RankPolicy = RankPolicy.MAX_OUT_DEGREE


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each scheduling sub-phase."""

    graph_construction: float = 0.0
    rank_division: float = 0.0
    transaction_sorting: float = 0.0
    validation: float = 0.0

    @property
    def total(self) -> float:
        """Total concurrency-control time."""
        return (
            self.graph_construction
            + self.rank_division
            + self.transaction_sorting
            + self.validation
        )

    def as_dict(self) -> dict[str, float]:
        """Phase name -> seconds, for harness reporting."""
        return {
            "graph_construction": self.graph_construction,
            "rank_division": self.rank_division,
            "transaction_sorting": self.transaction_sorting,
            "validation": self.validation,
        }


@dataclass
class NezhaResult:
    """Everything produced by one scheduling run."""

    schedule: Schedule
    timings: PhaseTimings
    acg: ACG
    rank_order: list[str] = field(default_factory=list)

    @property
    def aborted(self) -> tuple[int, ...]:
        """Ids aborted by sorting or validation."""
        return self.schedule.aborted


class NezhaScheduler:
    """Schedules one epoch's concurrent transactions with Nezha.

    Example
    -------
    >>> from repro.txn import make_transaction
    >>> txns = [make_transaction(1, reads=["A2"], writes=["A1"]),
    ...         make_transaction(2, reads=["A3"], writes=["A2"])]
    >>> result = NezhaScheduler().schedule(txns)
    >>> result.schedule.aborted
    ()
    """

    name = "nezha"

    def __init__(self, config: NezhaConfig | None = None) -> None:
        self.config = config or NezhaConfig()

    def schedule(self, transactions: Sequence[Transaction]) -> NezhaResult:
        """Produce a commit schedule for a batch of transactions.

        The input order is irrelevant; ids provide the deterministic order.
        """
        timings = PhaseTimings()
        txn_by_id = {t.txid: t for t in transactions}

        start = time.perf_counter()
        acg = build_acg(transactions)
        timings.graph_construction = time.perf_counter() - start

        start = time.perf_counter()
        rank_order = divide_ranks(acg, policy=self.config.rank_policy)
        timings.rank_division = time.perf_counter() - start

        start = time.perf_counter()
        state = sort_transactions(
            acg,
            rank_order,
            txn_by_id,
            enable_reorder=self.config.enable_reorder,
            initial_seq=self.config.initial_seq,
        )
        timings.transaction_sorting = time.perf_counter() - start

        if self.config.enable_validation:
            start = time.perf_counter()
            validate_sort(
                acg,
                state,
                transactions=txn_by_id,
                enable_reorder=self.config.enable_reorder,
            )
            timings.validation = time.perf_counter() - start

        schedule = schedule_from_sequences(
            sequences=state.sequences,
            aborted=state.aborted,
            reordered=state.reordered,
        )
        return NezhaResult(
            schedule=schedule, timings=timings, acg=acg, rank_order=rank_order
        )
