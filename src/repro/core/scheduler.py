"""The Nezha concurrency-control scheduler (public entry point).

Chains the three steps of Figure 3(b) — ACG construction, sorting-rank
division, and per-address transaction sorting — plus the safety
validation pass, and reports per-step wall-clock timings so benchmarks can
reproduce the paper's sub-phase breakdown (Figure 10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.acg import ACG, DenseACG, build_acg, build_dense_acg
from repro.core.interner import intern_batch
from repro.core.rank import RankPolicy, divide_ranks, divide_ranks_dense
from repro.core.schedule import Schedule, schedule_from_sequences
from repro.core.sorting import (
    INITIAL_SEQUENCE,
    UNASSIGNED,
    sort_transactions,
    sort_transactions_dense,
)
from repro.core.validate import validate_sort, validate_sort_dense
from repro.obs.tracer import Tracer, maybe_span
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class NezhaConfig:
    """Tunables for the Nezha scheduler.

    Attributes
    ----------
    enable_reorder:
        Apply the Section IV-D reordering enhancement (default on; turning
        it off reproduces the ablation in Figure 11's discussion).
    enable_validation:
        Run the final safety pass (see DESIGN.md).  Kept switchable for
        ablation benchmarks; production use should leave it on.
    initial_seq:
        First sequence number assigned (must be positive).
    rank_policy:
        Cycle-breaking rule of Algorithm 1 (ablation knob; the default is
        the paper's most-dependencies-first choice).
    fast_path:
        Run concurrency control on interned dense ids and flat arrays
        (default on).  ``False`` selects the string-keyed reference
        implementation; both produce bit-identical schedules (see
        ``tests/core/test_fastpath.py``).
    """

    enable_reorder: bool = True
    enable_validation: bool = True
    initial_seq: int = INITIAL_SEQUENCE
    rank_policy: RankPolicy = RankPolicy.MAX_OUT_DEGREE
    fast_path: bool = True


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each scheduling sub-phase."""

    graph_construction: float = 0.0
    rank_division: float = 0.0
    transaction_sorting: float = 0.0
    validation: float = 0.0

    @property
    def total(self) -> float:
        """Total concurrency-control time."""
        return (
            self.graph_construction
            + self.rank_division
            + self.transaction_sorting
            + self.validation
        )

    def as_dict(self) -> dict[str, float]:
        """Phase name -> seconds, for harness reporting."""
        return {
            "graph_construction": self.graph_construction,
            "rank_division": self.rank_division,
            "transaction_sorting": self.transaction_sorting,
            "validation": self.validation,
        }


class NezhaResult:
    """Everything produced by one scheduling run.

    ``acg`` is materialised lazily on fast-path runs: the dense pipeline
    never builds the string-keyed graph, so the first attribute access
    converts the CSR structures (outside the timed phases).
    """

    def __init__(
        self,
        schedule: Schedule,
        timings: PhaseTimings,
        acg: ACG | None = None,
        rank_order: list[str] | None = None,
        dense_acg: DenseACG | None = None,
        abort_reasons: dict[int, str] | None = None,
        revived: int = 0,
        delta_commuted: int = 0,
        abort_edges: dict[int, list[tuple[int, str, str]]] | None = None,
        revived_txids: tuple[int, ...] = (),
    ) -> None:
        self.schedule = schedule
        self.timings = timings
        self.rank_order = rank_order if rank_order is not None else []
        self.dense_acg = dense_acg
        self.abort_reasons = abort_reasons if abort_reasons is not None else {}
        self.revived = revived
        self.delta_commuted = delta_commuted
        # Ids rescued by the validator's resurrection pass — the flight
        # ledger flags their schedule events with ``revived=True``.
        self.revived_txids = revived_txids
        # txid -> attributed conflict edges (peer txid, address, kind);
        # covers every abort the sorter/validator convicted with a peer.
        self.abort_edges = abort_edges if abort_edges is not None else {}
        self._acg = acg

    @property
    def acg(self) -> ACG:
        """The address-based conflict graph (built on demand on the fast path)."""
        if self._acg is None:
            if self.dense_acg is None:
                raise ValueError("result carries no conflict graph")
            self._acg = self.dense_acg.to_acg()
        return self._acg

    @property
    def aborted(self) -> tuple[int, ...]:
        """Ids aborted by sorting or validation."""
        return self.schedule.aborted


class NezhaScheduler:
    """Schedules one epoch's concurrent transactions with Nezha.

    Example
    -------
    >>> from repro.txn import make_transaction
    >>> txns = [make_transaction(1, reads=["A2"], writes=["A1"]),
    ...         make_transaction(2, reads=["A3"], writes=["A2"])]
    >>> result = NezhaScheduler().schedule(txns)
    >>> result.schedule.aborted
    ()
    """

    name = "nezha"

    # Commutative delta units are first-class in the Nezha pipeline; the
    # executor only emits them for schedulers advertising this flag, so
    # baselines keep seeing plain read-modify-writes.
    supports_deltas = True

    def __init__(
        self, config: NezhaConfig | None = None, tracer: Tracer | None = None
    ) -> None:
        self.config = config or NezhaConfig()
        # Optional span recorder for the sub-phase breakdown; the pipeline
        # injects its tracer here so CC sub-phases nest under its epoch span.
        self.tracer = tracer

    def schedule(self, transactions: Sequence[Transaction]) -> NezhaResult:
        """Produce a commit schedule for a batch of transactions.

        The input order is irrelevant; ids provide the deterministic order.
        Dispatches to the dense fast path unless the config selects the
        string-keyed reference implementation.
        """
        if self.config.fast_path:
            return self._schedule_fast(transactions)
        return self._schedule_reference(transactions)

    def _schedule_fast(self, transactions: Sequence[Transaction]) -> NezhaResult:
        """Dense-id pipeline: intern once, then flat-array phases."""
        timings = PhaseTimings()

        start = time.perf_counter()
        with maybe_span(self.tracer, "cc.acg_build") as span:
            dense = build_dense_acg(intern_batch(transactions))
            span.set(txns=dense.txn_count, addresses=dense.addr_count)
        timings.graph_construction = time.perf_counter() - start

        return self._finish_dense(dense, timings)

    def schedule_dense(
        self, dense: DenseACG, graph_seconds: float = 0.0
    ) -> NezhaResult:
        """Schedule a pre-built dense graph (streaming engine entry point).

        The streaming epoch engine accumulates the ACG incrementally
        (:class:`~repro.core.incremental.IncrementalACG`) while blocks
        execute, then seals and hands the dense graph here —
        ``graph_seconds`` carries the accumulated construction time so
        the ``graph_construction`` sub-phase timing stays comparable to
        a barrier run.  Everything after construction is the exact
        fast-path pipeline, so results are bit-identical to
        :meth:`schedule` over the same transaction set.
        """
        timings = PhaseTimings(graph_construction=graph_seconds)
        return self._finish_dense(dense, timings)

    def _finish_dense(self, dense: DenseACG, timings: PhaseTimings) -> NezhaResult:
        """Rank + sort + validate an already-built dense graph."""
        start = time.perf_counter()
        with maybe_span(self.tracer, "cc.rank_division"):
            rank_ids = divide_ranks_dense(dense, policy=self.config.rank_policy)
        timings.rank_division = time.perf_counter() - start

        start = time.perf_counter()
        with maybe_span(self.tracer, "cc.sorting") as span:
            state = sort_transactions_dense(
                dense,
                rank_ids,
                enable_reorder=self.config.enable_reorder,
                initial_seq=self.config.initial_seq,
            )
            span.set(reordered=len(state.reordered), aborted=len(state.reasons))
        timings.transaction_sorting = time.perf_counter() - start

        if self.config.enable_validation:
            start = time.perf_counter()
            with maybe_span(self.tracer, "cc.validate") as span:
                validate_sort_dense(
                    dense, state, enable_reorder=self.config.enable_reorder
                )
                span.set(
                    aborted=len(state.reasons),
                    reordered=len(state.reordered),
                    revived=len(state.revived),
                )
            timings.validation = time.perf_counter() - start

        # Translate dense ids back to txids/addresses only at the
        # Schedule boundary.
        txids = dense.batch.txids
        seq = state.seq
        alive = state.alive
        sequences = {
            txids[i]: seq[i]
            for i in range(dense.txn_count)
            if alive[i] and seq[i] != UNASSIGNED
        }
        aborted = {txids[i] for i in range(dense.txn_count) if not alive[i]}
        reordered = {txids[i] for i in state.reordered}
        schedule = schedule_from_sequences(
            sequences=sequences, aborted=aborted, reordered=reordered
        )
        addresses = dense.batch.addresses
        delta_commuted = 0
        if len(dense.delta_txns):
            for addr_id in range(dense.addr_count):
                committed = sum(1 for t in dense.deltas_of(addr_id) if alive[t])
                if committed >= 2:
                    delta_commuted += committed
        return NezhaResult(
            schedule=schedule,
            timings=timings,
            rank_order=[addresses[a] for a in rank_ids],
            dense_acg=dense,
            abort_reasons={
                txids[i]: reason for i, reason in sorted(state.reasons.items())
            },
            revived=len(state.revived),
            delta_commuted=delta_commuted,
            abort_edges={
                txids[i]: [
                    (txids[peer] if peer >= 0 else peer, addresses[addr], kind)
                ]
                for i, (peer, addr, kind) in sorted(state.edges.items())
            },
            revived_txids=tuple(sorted(txids[i] for i in state.revived)),
        )

    def _schedule_reference(
        self, transactions: Sequence[Transaction]
    ) -> NezhaResult:
        """String-keyed reference pipeline (``fast_path=False``)."""
        timings = PhaseTimings()
        txn_by_id = {t.txid: t for t in transactions}

        start = time.perf_counter()
        with maybe_span(self.tracer, "cc.acg_build") as span:
            acg = build_acg(transactions)
            span.set(txns=len(txn_by_id), addresses=len(acg.addresses))
        timings.graph_construction = time.perf_counter() - start

        start = time.perf_counter()
        with maybe_span(self.tracer, "cc.rank_division"):
            rank_order = divide_ranks(acg, policy=self.config.rank_policy)
        timings.rank_division = time.perf_counter() - start

        start = time.perf_counter()
        with maybe_span(self.tracer, "cc.sorting") as span:
            state = sort_transactions(
                acg,
                rank_order,
                txn_by_id,
                enable_reorder=self.config.enable_reorder,
                initial_seq=self.config.initial_seq,
            )
            span.set(reordered=len(state.reordered), aborted=len(state.reasons))
        timings.transaction_sorting = time.perf_counter() - start

        if self.config.enable_validation:
            start = time.perf_counter()
            with maybe_span(self.tracer, "cc.validate") as span:
                validate_sort(
                    acg,
                    state,
                    transactions=txn_by_id,
                    enable_reorder=self.config.enable_reorder,
                )
                span.set(
                    aborted=len(state.reasons),
                    reordered=len(state.reordered),
                    revived=len(state.revived),
                )
            timings.validation = time.perf_counter() - start

        schedule = schedule_from_sequences(
            sequences=state.sequences,
            aborted=state.aborted,
            reordered=state.reordered,
        )
        delta_commuted = 0
        for rw in acg.rw_lists.values():
            if rw.deltas:
                committed = sum(1 for t in rw.deltas if state.is_live(t))
                if committed >= 2:
                    delta_commuted += committed
        return NezhaResult(
            schedule=schedule,
            timings=timings,
            acg=acg,
            rank_order=rank_order,
            abort_reasons=dict(sorted(state.reasons.items())),
            revived=len(state.revived),
            delta_commuted=delta_commuted,
            abort_edges={
                txid: [edge] for txid, edge in sorted(state.edges.items())
            },
            revived_txids=tuple(sorted(state.revived)),
        )
