"""Sorting-rank division (Algorithm 1 of the paper).

Addresses are ranked by a cycle-tolerant topological sort over the
address-dependency graph extracted from the ACG:

* while a zero in-degree vertex exists, emit the one with the smallest
  address (the paper iterates vertices in order and takes the first);
* otherwise (only cycles remain) emit, among the vertices with the minimum
  in-degree, the one with the maximum out-degree, breaking ties by the
  smallest address ("most dependencies first" — its sorting result affects
  the most other addresses).

The paper presents the algorithm recursively; we implement it iteratively
with two lazily-invalidated heaps — one for the zero in-degree frontier,
one keyed ``(in_degree, -score, address)`` for cycle breaking — so the
whole division runs in ``O((V + E) log V)``.  A naive per-pick scan is
``O(V)`` per cycle pick and measurably quadratic on contended batches
(see ``benchmarks/bench_scaling.py``).
"""

from __future__ import annotations

import enum
import heapq
from typing import Callable, Mapping, Sequence

from repro.core.acg import ACG, DenseACG
from repro.txn.rwset import Address


class RankPolicy(enum.Enum):
    """How Algorithm 1 breaks cycles when no zero in-degree vertex exists.

    The paper's choice is ``MAX_OUT_DEGREE`` ("prioritise the address with
    the most dependencies"); the alternatives exist for the ablation
    benchmark that quantifies how much that choice matters.
    """

    MAX_OUT_DEGREE = "max-out-degree"
    MIN_ADDRESS = "min-address"
    MAX_UNIT_COUNT = "max-unit-count"


def divide_ranks(acg: ACG, policy: RankPolicy = RankPolicy.MAX_OUT_DEGREE) -> list[Address]:
    """Return all accessed addresses ordered by sorting rank (rank 1 first)."""
    unit_counts = None
    if policy is RankPolicy.MAX_UNIT_COUNT:
        unit_counts = {address: len(rw) for address, rw in acg.rw_lists.items()}
    return rank_addresses(
        vertices=acg.addresses,
        out_edges=acg.out_edges,
        in_edges=acg.in_edges,
        policy=policy,
        unit_counts=unit_counts,
    )


def rank_addresses(
    vertices: Sequence[Address],
    out_edges: Mapping[Address, set[Address]],
    in_edges: Mapping[Address, set[Address]],
    policy: RankPolicy = RankPolicy.MAX_OUT_DEGREE,
    unit_counts: Mapping[Address, int] | None = None,
) -> list[Address]:
    """Rank an explicit address-dependency graph (Algorithm 1).

    ``vertices`` should contain every address; endpoints appearing only in
    the edge mappings are included automatically.
    """
    all_vertices = set(vertices)
    for src, targets in out_edges.items():
        all_vertices.add(src)
        all_vertices.update(targets)
    for dst, sources in in_edges.items():
        all_vertices.add(dst)
        all_vertices.update(sources)
    ordered_vertices = sorted(all_vertices)

    in_degree: dict[Address, int] = {}
    live_out: dict[Address, set[Address]] = {}
    live_in: dict[Address, set[Address]] = {}
    for vertex in ordered_vertices:
        live_out[vertex] = set(out_edges.get(vertex, ()))
        live_in[vertex] = set(in_edges.get(vertex, ()))
        in_degree[vertex] = len(live_in[vertex])

    def score(vertex: Address) -> int:
        if policy is RankPolicy.MIN_ADDRESS:
            return 0  # every candidate ties; smallest address wins
        if policy is RankPolicy.MAX_UNIT_COUNT:
            return (unit_counts or {}).get(vertex, 0)
        return len(live_out[vertex])

    # Lazy heaps: stale entries (changed degree/score, or removed vertex)
    # are skipped at pop time.  Every degree change pushes a fresh entry,
    # bounding total pushes by O(V + E).
    zero_heap: list[Address] = [v for v in ordered_vertices if in_degree[v] == 0]
    heapq.heapify(zero_heap)
    cycle_heap: list[tuple[int, int, Address]] = [
        (in_degree[v], -score(v), v) for v in ordered_vertices
    ]
    heapq.heapify(cycle_heap)
    removed: set[Address] = set()
    sequence: list[Address] = []

    def reindex(vertex: Address) -> None:
        heapq.heappush(cycle_heap, (in_degree[vertex], -score(vertex), vertex))

    def remove(vertex: Address) -> None:
        removed.add(vertex)
        sequence.append(vertex)
        for succ in live_out.pop(vertex, set()):
            if succ in removed:
                continue
            live_in[succ].discard(vertex)
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                heapq.heappush(zero_heap, succ)
            reindex(succ)
        for pred in live_in.pop(vertex, set()):
            if pred in removed:
                continue
            live_out[pred].discard(vertex)
            if policy is RankPolicy.MAX_OUT_DEGREE:
                reindex(pred)

    total = len(ordered_vertices)
    while len(sequence) < total:
        selected = _pop_zero(zero_heap, removed, in_degree)
        if selected is None:
            selected = _pop_cycle_breaker(cycle_heap, removed, in_degree, score)
        remove(selected)
    return sequence


def divide_ranks_dense(
    dense: DenseACG, policy: RankPolicy = RankPolicy.MAX_OUT_DEGREE
) -> list[int]:
    """Algorithm 1 on dense address ids (the fast path).

    Same lazy-heap algorithm as :func:`rank_addresses`, but vertices are
    contiguous ints, degrees live in flat lists, and adjacency comes from
    the CSR buffers — no per-vertex set copies.  Because dense ids are
    assigned in sorted address order, every heap comparison resolves ties
    exactly as the string-keyed reference does, so the emission order is
    identical after id -> address translation.
    """
    addr_count = dense.addr_count
    out_indptr, out_ids = dense.out_indptr, dense.out_ids
    in_indptr, in_ids = dense.in_indptr, dense.in_ids
    in_degree = [in_indptr[v + 1] - in_indptr[v] for v in range(addr_count)]
    out_degree = [out_indptr[v + 1] - out_indptr[v] for v in range(addr_count)]

    if policy is RankPolicy.MIN_ADDRESS:
        score = [0] * addr_count
    elif policy is RankPolicy.MAX_UNIT_COUNT:
        read_indptr, write_indptr = dense.read_indptr, dense.write_indptr
        delta_indptr = dense.delta_indptr
        score = [
            (read_indptr[v + 1] - read_indptr[v])
            + (write_indptr[v + 1] - write_indptr[v])
            + (delta_indptr[v + 1] - delta_indptr[v])
            for v in range(addr_count)
        ]
    else:
        score = out_degree  # live out-degree, shared list updated in place

    alive = bytearray(b"\x01") * addr_count
    zero_heap = [v for v in range(addr_count) if in_degree[v] == 0]
    # The cycle-breaking heap is built lazily, the first time the zero
    # in-degree frontier runs dry: the pick only depends on the *current*
    # (in-degree, -score) of live vertices, so deferring construction (and
    # the per-degree-change refresh pushes) until a cycle actually has to
    # be broken changes nothing about which vertex is selected.  On
    # mostly-acyclic batches this skips the O(E log V) heap traffic
    # entirely.
    cycle_heap: list[tuple[int, int, int]] | None = None
    sequence: list[int] = []
    track_score = policy is RankPolicy.MAX_OUT_DEGREE
    push = heapq.heappush

    def remove(vertex: int) -> None:
        alive[vertex] = 0
        sequence.append(vertex)
        for succ in out_ids[out_indptr[vertex] : out_indptr[vertex + 1]]:
            if not alive[succ]:
                continue
            degree = in_degree[succ] = in_degree[succ] - 1
            if degree == 0:
                push(zero_heap, succ)
            if cycle_heap is not None:
                push(cycle_heap, (degree, -score[succ], succ))
        if track_score:
            for pred in in_ids[in_indptr[vertex] : in_indptr[vertex + 1]]:
                if not alive[pred]:
                    continue
                out_degree[pred] -= 1
                if cycle_heap is not None:
                    push(cycle_heap, (in_degree[pred], -score[pred], pred))

    while len(sequence) < addr_count:
        selected = _pop_zero_dense(zero_heap, alive, in_degree)
        if selected is None:
            if cycle_heap is None:
                cycle_heap = [
                    (in_degree[v], -score[v], v)
                    for v in range(addr_count)
                    if alive[v]
                ]
                heapq.heapify(cycle_heap)
            selected = _pop_cycle_breaker_dense(cycle_heap, alive, in_degree, score)
        remove(selected)
    return sequence


def _pop_zero_dense(
    zero_heap: list[int], alive: bytearray, in_degree: list[int]
) -> int | None:
    """Pop the smallest live zero in-degree vertex id, or ``None``."""
    while zero_heap:
        vertex = heapq.heappop(zero_heap)
        if not alive[vertex] or in_degree[vertex] != 0:
            continue
        return vertex
    return None


def _pop_cycle_breaker_dense(
    cycle_heap: list[tuple[int, int, int]],
    alive: bytearray,
    in_degree: list[int],
    score: list[int],
) -> int:
    """Pop the live entry with minimum (in-degree, -score, id)."""
    while cycle_heap:
        recorded_in, negative_score, vertex = heapq.heappop(cycle_heap)
        if not alive[vertex]:
            continue
        if recorded_in != in_degree[vertex] or -negative_score != score[vertex]:
            continue  # stale entry; a fresh one exists
        return vertex
    raise AssertionError("graph unexpectedly empty")


def _pop_zero(
    zero_heap: list[Address], removed: set[Address], in_degree: Mapping[Address, int]
) -> Address | None:
    """Pop the smallest live zero in-degree vertex, or ``None``."""
    while zero_heap:
        vertex = heapq.heappop(zero_heap)
        if vertex in removed or in_degree[vertex] != 0:
            continue
        return vertex
    return None


def _pop_cycle_breaker(
    cycle_heap: list[tuple[int, int, Address]],
    removed: set[Address],
    in_degree: Mapping[Address, int],
    score: Callable[[Address], int],
) -> Address:
    """Pop the live entry with minimum (in-degree, -score, address).

    Entries whose recorded degree or score no longer matches the vertex's
    current values are stale copies superseded by a later push.
    """
    while cycle_heap:
        recorded_in, negative_score, vertex = heapq.heappop(cycle_heap)
        if vertex in removed:
            continue
        if recorded_in != in_degree[vertex] or -negative_score != score(vertex):
            continue  # stale entry; a fresh one exists
        return vertex
    raise AssertionError("graph unexpectedly empty")
