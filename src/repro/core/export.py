"""Graphviz DOT export for scheduling graphs.

Renders the ACG (per-address unit lists plus address-dependency edges)
and the transaction-level conflict graph as DOT text — the debugging
artifact behind the paper's Figures 4 and 6.  Output is deterministic
(sorted nodes and edges) so it can be asserted in tests and diffed in
reviews.
"""

from __future__ import annotations

from repro.baselines.conflict_graph import ConflictGraph
from repro.core.acg import ACG
from repro.core.schedule import Schedule


def acg_to_dot(acg: ACG, rank_order: list[str] | None = None) -> str:
    """Render an ACG as DOT.

    Each address becomes a record node listing its read units before its
    write units; address-dependency edges carry their multiplicity.  When
    ``rank_order`` is given, each address label shows its sorting rank.
    """
    ranks = {address: i + 1 for i, address in enumerate(rank_order or [])}
    lines = [
        "digraph ACG {",
        "  rankdir=LR;",
        '  node [shape=record, fontname="monospace"];',
    ]
    for address in acg.addresses:
        rw = acg.rw_lists[address]
        reads = " ".join(f"T{t}^R" for t in rw.reads) or "-"
        writes = " ".join(f"T{t}^W" for t in rw.writes) or "-"
        title = address
        if address in ranks:
            title = f"{address} (rank {ranks[address]})"
        lines.append(
            f'  "{address}" [label="{{{title}|reads: {reads}|writes: {writes}}}"];'
        )
    for (src, dst), count in sorted(acg.edge_multiplicity.items()):
        label = f' [label="x{count}"]' if count > 1 else ""
        lines.append(f'  "{src}" -> "{dst}"{label};')
    lines.append("}")
    return "\n".join(lines)


def conflict_graph_to_dot(graph: ConflictGraph) -> str:
    """Render a transaction-level conflict graph as DOT."""
    lines = ["digraph CG {", "  node [shape=circle];"]
    for txid in sorted(graph.vertices):
        lines.append(f'  "T{txid}";')
    for src in sorted(graph.out_edges):
        for dst in sorted(graph.out_edges[src]):
            lines.append(f'  "T{src}" -> "T{dst}";')
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule: Schedule) -> str:
    """Render a commit schedule as ranked commit groups."""
    lines = ["digraph Schedule {", "  rankdir=LR;", "  node [shape=box];"]
    previous_anchor = None
    for group in schedule.groups:
        anchor = f"seq{group.sequence}"
        members = ", ".join(f"T{t}" for t in group.txids)
        lines.append(f'  "{anchor}" [label="seq {group.sequence}\\n{members}"];')
        if previous_anchor is not None:
            lines.append(f'  "{previous_anchor}" -> "{anchor}";')
        previous_anchor = anchor
    if schedule.aborted:
        aborted = ", ".join(f"T{t}" for t in schedule.aborted)
        lines.append(f'  "aborted" [label="aborted\\n{aborted}", style=dashed];')
    lines.append("}")
    return "\n".join(lines)
