"""Exportable scheduling artifacts: DOT graphs and epoch artifacts.

Renders the ACG (per-address unit lists plus address-dependency edges)
and the transaction-level conflict graph as DOT text — the debugging
artifact behind the paper's Figures 4 and 6.  Output is deterministic
(sorted nodes and edges) so it can be asserted in tests and diffed in
reviews.

Also defines the **epoch artifact** wire format: a JSON-safe record of
exactly what the proof-carrying schedule certifier consumes — admitted
read/write/delta sets, the emitted commit groups, and the abort
bookkeeping.  ``repro simulate --certify`` writes one per epoch and
``repro analyze certify`` re-checks them offline, so a third party can
audit a run without re-executing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.baselines.conflict_graph import ConflictGraph
from repro.core.acg import ACG
from repro.core.schedule import Schedule
from repro.txn.rwset import RWSet


def acg_to_dot(acg: ACG, rank_order: list[str] | None = None) -> str:
    """Render an ACG as DOT.

    Each address becomes a record node listing its read units before its
    write units; address-dependency edges carry their multiplicity.  When
    ``rank_order`` is given, each address label shows its sorting rank.
    """
    ranks = {address: i + 1 for i, address in enumerate(rank_order or [])}
    lines = [
        "digraph ACG {",
        "  rankdir=LR;",
        '  node [shape=record, fontname="monospace"];',
    ]
    for address in acg.addresses:
        rw = acg.rw_lists[address]
        reads = " ".join(f"T{t}^R" for t in rw.reads) or "-"
        writes = " ".join(f"T{t}^W" for t in rw.writes) or "-"
        title = address
        if address in ranks:
            title = f"{address} (rank {ranks[address]})"
        lines.append(
            f'  "{address}" [label="{{{title}|reads: {reads}|writes: {writes}}}"];'
        )
    for (src, dst), count in sorted(acg.edge_multiplicity.items()):
        label = f' [label="x{count}"]' if count > 1 else ""
        lines.append(f'  "{src}" -> "{dst}"{label};')
    lines.append("}")
    return "\n".join(lines)


def conflict_graph_to_dot(graph: ConflictGraph) -> str:
    """Render a transaction-level conflict graph as DOT."""
    lines = ["digraph CG {", "  node [shape=circle];"]
    for txid in sorted(graph.vertices):
        lines.append(f'  "T{txid}";')
    for src in sorted(graph.out_edges):
        for dst in sorted(graph.out_edges[src]):
            lines.append(f'  "T{src}" -> "T{dst}";')
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------- epoch artifacts

ARTIFACT_KIND = "epoch-schedule"
"""The ``artifact`` tag every epoch-artifact payload carries."""


@dataclass(frozen=True)
class EpochArtifact:
    """One epoch's certifier inputs, parsed back from the wire form.

    ``groups``/``aborted`` mirror the schedule shape
    :func:`repro.analysis.certify.certify_epoch` duck-types, so an
    ``EpochArtifact`` can be passed to it directly as the ``schedule``
    argument.
    """

    epoch_index: int
    scheme: str
    rwsets: dict[int, dict[str, Any]]
    groups: tuple[tuple[int, tuple[int, ...]], ...]
    aborted: tuple[int, ...]
    abort_reasons: dict[int, str]
    guard_aborted: tuple[int, ...]
    failed: tuple[int, ...]
    reason_counts: dict[str, int]
    abort_edges: dict[int, list[tuple[int, str, str]]]


def epoch_artifact(
    epoch_index: int,
    scheme: str,
    rwsets: Mapping[int, RWSet],
    schedule: Schedule,
    abort_reasons: Mapping[int, str] | None = None,
    guard_aborted: Sequence[int] = (),
    failed: Sequence[int] = (),
    reason_counts: Mapping[str, int] | None = None,
    abort_edges: Mapping[int, Sequence[tuple[int, str, str]]] | None = None,
) -> dict[str, Any]:
    """Flatten one epoch's certifier inputs to a JSON-safe payload.

    Write *values* are dropped deliberately — the certifier reasons about
    conflict structure only, and the artifact stays small enough to ship
    per epoch.  Delta amounts are kept: the commutativity check refolds
    them.  ``abort_edges`` carries the flight ledger's conflict
    attribution (txid -> ``[peer, address, kind]`` triples) so offline
    audits can cross-check each conviction against the rebuilt graph.
    """
    return {
        "artifact": ARTIFACT_KIND,
        "epoch": int(epoch_index),
        "scheme": scheme,
        "rwsets": {
            int(txid): {
                "reads": sorted(rwset.reads),
                "writes": sorted(rwset.writes),
                "deltas": {
                    address: int(amount)
                    for address, amount in sorted(rwset.deltas.items())
                },
            }
            for txid, rwset in sorted(rwsets.items())
        },
        "groups": [
            [int(group.sequence), [int(txid) for txid in group.txids]]
            for group in schedule.groups
        ],
        "aborted": sorted(int(txid) for txid in schedule.aborted),
        "abort_reasons": {
            int(txid): reason for txid, reason in sorted((abort_reasons or {}).items())
        },
        "guard_aborted": sorted(int(txid) for txid in guard_aborted),
        "failed": sorted(int(txid) for txid in failed),
        "reason_counts": dict(sorted((reason_counts or {}).items())),
        "abort_edges": {
            int(txid): [
                [int(peer), str(address), str(kind)]
                for peer, address, kind in edges
            ]
            for txid, edges in sorted((abort_edges or {}).items())
        },
    }


def parse_epoch_artifact(payload: Mapping[str, Any]) -> EpochArtifact:
    """Rebuild an :class:`EpochArtifact` from its JSON payload.

    Tolerates both int and str txid keys (``json.dump`` stringifies
    object keys).  Raises :class:`ValueError` on a payload that is not
    an epoch artifact.
    """
    if payload.get("artifact") != ARTIFACT_KIND:
        raise ValueError(
            f"not an epoch artifact (artifact={payload.get('artifact')!r})"
        )
    rwsets: dict[int, dict[str, Any]] = {
        int(txid): {
            "reads": list(units.get("reads", ())),
            "writes": list(units.get("writes", ())),
            "deltas": {
                address: int(amount)
                for address, amount in dict(units.get("deltas", {})).items()
            },
        }
        for txid, units in dict(payload.get("rwsets", {})).items()
    }
    groups = tuple(
        (int(sequence), tuple(int(txid) for txid in txids))
        for sequence, txids in payload.get("groups", ())
    )
    return EpochArtifact(
        epoch_index=int(payload.get("epoch", 0)),
        scheme=str(payload.get("scheme", "nezha")),
        rwsets=rwsets,
        groups=groups,
        aborted=tuple(int(txid) for txid in payload.get("aborted", ())),
        abort_reasons={
            int(txid): str(reason)
            for txid, reason in dict(payload.get("abort_reasons", {})).items()
        },
        guard_aborted=tuple(
            int(txid) for txid in payload.get("guard_aborted", ())
        ),
        failed=tuple(int(txid) for txid in payload.get("failed", ())),
        reason_counts={
            str(reason): int(count)
            for reason, count in dict(payload.get("reason_counts", {})).items()
        },
        abort_edges={
            int(txid): [
                (int(peer), str(address), str(kind))
                for peer, address, kind in edges
            ]
            for txid, edges in dict(payload.get("abort_edges", {})).items()
        },
    )


def schedule_to_dot(schedule: Schedule) -> str:
    """Render a commit schedule as ranked commit groups."""
    lines = ["digraph Schedule {", "  rankdir=LR;", "  node [shape=box];"]
    previous_anchor = None
    for group in schedule.groups:
        anchor = f"seq{group.sequence}"
        members = ", ".join(f"T{t}" for t in group.txids)
        lines.append(f'  "{anchor}" [label="seq {group.sequence}\\n{members}"];')
        if previous_anchor is not None:
            lines.append(f'  "{previous_anchor}" -> "{anchor}";')
        previous_anchor = anchor
    if schedule.aborted:
        aborted = ", ".join(f"T{t}" for t in schedule.aborted)
        lines.append(f'  "aborted" [label="aborted\\n{aborted}", style=dashed];')
    lines.append("}")
    return "\n".join(lines)
