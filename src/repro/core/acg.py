"""Address-based Conflict Graph (ACG) construction.

Definition 4 of the paper: the ACG is a directed graph whose vertices are
the per-address read/write sets ``RW_j`` and whose edges connect the
write-address to the read-address of every transaction that writes one
address and reads another (``(RW_i, RW_j)`` when some ``T_v`` has
``T_v^W in RW_i`` and ``T_v^R in RW_j``).

Construction maps each transaction's units to its addresses once, so the
whole graph is built in ``O(u * N)`` for ``N`` transactions with ``u``
units each — this is the paper's answer to the quadratic pairwise
comparison of the conventional conflict graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.units import AddressRWList
from repro.errors import SchedulingError
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction


@dataclass
class ACG:
    """The address-based conflict graph for one batch of transactions.

    Attributes
    ----------
    rw_lists:
        Mapping from address to its ordered read/write set ``RW_j``.
    out_edges / in_edges:
        Simple (deduplicated) address-dependency adjacency.  An edge
        ``A_i -> A_j`` means ``A_i`` is dependent on ``A_j``
        (``A_i -->* A_j`` in the paper): some transaction writes ``A_i``
        and reads ``A_j``.
    edge_multiplicity:
        How many distinct transactions induced each edge; exposed for
        analysis and benchmarks.
    """

    rw_lists: dict[Address, AddressRWList] = field(default_factory=dict)
    out_edges: dict[Address, set[Address]] = field(default_factory=dict)
    in_edges: dict[Address, set[Address]] = field(default_factory=dict)
    edge_multiplicity: dict[tuple[Address, Address], int] = field(default_factory=dict)
    txn_count: int = 0

    @property
    def addresses(self) -> list[Address]:
        """All accessed addresses, in sorted (deterministic) order."""
        return sorted(self.rw_lists)

    @property
    def edge_count(self) -> int:
        """Number of distinct address-dependency edges."""
        return len(self.edge_multiplicity)

    @property
    def unit_count(self) -> int:
        """Total number of read and write units across all addresses."""
        return sum(len(rw) for rw in self.rw_lists.values())

    def rw(self, address: Address) -> AddressRWList:
        """Return ``RW_j`` for the given address."""
        try:
            return self.rw_lists[address]
        except KeyError:
            raise SchedulingError(f"address {address!r} not present in ACG") from None

    def successors(self, address: Address) -> set[Address]:
        """Addresses that ``address`` depends on (outgoing edges)."""
        return self.out_edges.get(address, set())

    def predecessors(self, address: Address) -> set[Address]:
        """Addresses that depend on ``address`` (incoming edges)."""
        return self.in_edges.get(address, set())

    def iter_edges(self) -> Iterator[tuple[Address, Address]]:
        """Yield all distinct edges in deterministic order."""
        for src in sorted(self.out_edges):
            for dst in sorted(self.out_edges[src]):
                yield src, dst


def build_acg(transactions: Sequence[Transaction] | Iterable[Transaction]) -> ACG:
    """Build the ACG for a batch of transactions.

    Transactions are processed in ascending id order so that unit lists end
    up in the paper's deterministic order.  A transaction reading and
    writing the *same* address contributes units to that address but no
    self-loop edge (the paper's ``T_5`` case).

    Complexity: ``O(sum over txns of |RS| * |WS|)`` for edges plus
    ``O(unit count)`` for the lists — linear in practice because contract
    transactions touch a handful of addresses each.
    """
    acg = ACG()
    rw_lists = acg.rw_lists
    ordered = sorted(transactions, key=lambda t: t.txid)
    seen_ids: set[int] = set()
    for txn in ordered:
        if txn.txid in seen_ids:
            raise SchedulingError(f"duplicate txid {txn.txid} in batch")
        seen_ids.add(txn.txid)
        for address in txn.read_set:
            rw = rw_lists.get(address)
            if rw is None:
                rw = rw_lists[address] = AddressRWList(address)
            rw.add_read(txn.txid)
        for address in txn.write_set:
            rw = rw_lists.get(address)
            if rw is None:
                rw = rw_lists[address] = AddressRWList(address)
            rw.add_write(txn.txid)
        for write_addr in txn.write_set:
            for read_addr in txn.read_set:
                if write_addr == read_addr:
                    continue
                _add_edge(acg, write_addr, read_addr)
    for rw in rw_lists.values():
        rw.finalize()
    acg.txn_count = len(ordered)
    return acg


def _add_edge(acg: ACG, src: Address, dst: Address) -> None:
    """Record the address dependency ``src --> dst``."""
    key = (src, dst)
    count = acg.edge_multiplicity.get(key, 0)
    acg.edge_multiplicity[key] = count + 1
    if count == 0:
        acg.out_edges.setdefault(src, set()).add(dst)
        acg.in_edges.setdefault(dst, set()).add(src)
