"""Address-based Conflict Graph (ACG) construction.

Definition 4 of the paper: the ACG is a directed graph whose vertices are
the per-address read/write sets ``RW_j`` and whose edges connect the
write-address to the read-address of every transaction that writes one
address and reads another (``(RW_i, RW_j)`` when some ``T_v`` has
``T_v^W in RW_i`` and ``T_v^R in RW_j``).

Construction maps each transaction's units to its addresses once, so the
whole graph is built in ``O(u * N)`` for ``N`` transactions with ``u``
units each — this is the paper's answer to the quadratic pairwise
comparison of the conventional conflict graph.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.interner import InternedBatch, intern_batch
from repro.core.units import AddressRWList
from repro.errors import SchedulingError
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction

_EMPTY_ADDRESSES: frozenset[Address] = frozenset()


@dataclass
class ACG:
    """The address-based conflict graph for one batch of transactions.

    Attributes
    ----------
    rw_lists:
        Mapping from address to its ordered read/write set ``RW_j``.
    out_edges / in_edges:
        Simple (deduplicated) address-dependency adjacency.  An edge
        ``A_i -> A_j`` means ``A_i`` is dependent on ``A_j``
        (``A_i -->* A_j`` in the paper): some transaction writes ``A_i``
        and reads ``A_j``.
    edge_multiplicity:
        How many distinct transactions induced each edge; exposed for
        analysis and benchmarks.
    """

    rw_lists: dict[Address, AddressRWList] = field(default_factory=dict)
    out_edges: dict[Address, set[Address]] = field(default_factory=dict)
    in_edges: dict[Address, set[Address]] = field(default_factory=dict)
    edge_multiplicity: dict[tuple[Address, Address], int] = field(default_factory=dict)
    txn_count: int = 0

    @property
    def addresses(self) -> list[Address]:
        """All accessed addresses, in sorted (deterministic) order."""
        return sorted(self.rw_lists)

    @property
    def edge_count(self) -> int:
        """Number of distinct address-dependency edges."""
        return len(self.edge_multiplicity)

    @property
    def unit_count(self) -> int:
        """Total number of read, write, and delta units across all addresses."""
        return sum(len(rw) for rw in self.rw_lists.values())

    def rw(self, address: Address) -> AddressRWList:
        """Return ``RW_j`` for the given address."""
        try:
            return self.rw_lists[address]
        except KeyError:
            raise SchedulingError(f"address {address!r} not present in ACG") from None

    def successors(self, address: Address) -> frozenset[Address]:
        """Addresses that ``address`` depends on (outgoing edges).

        Returns an immutable snapshot — mutating the return value can
        never corrupt the graph's internal adjacency.
        """
        edges = self.out_edges.get(address)
        return frozenset(edges) if edges else _EMPTY_ADDRESSES

    def predecessors(self, address: Address) -> frozenset[Address]:
        """Addresses that depend on ``address`` (incoming edges).

        Immutable snapshot, same contract as :meth:`successors`.
        """
        edges = self.in_edges.get(address)
        return frozenset(edges) if edges else _EMPTY_ADDRESSES

    def iter_edges(self) -> Iterator[tuple[Address, Address]]:
        """Yield all distinct edges in deterministic order."""
        for src in sorted(self.out_edges):
            for dst in sorted(self.out_edges[src]):
                yield src, dst


def build_acg(transactions: Sequence[Transaction] | Iterable[Transaction]) -> ACG:
    """Build the ACG for a batch of transactions.

    Transactions are processed in ascending id order so that unit lists end
    up in the paper's deterministic order.  A transaction reading and
    writing the *same* address contributes units to that address but no
    self-loop edge (the paper's ``T_5`` case).

    Complexity: ``O(sum over txns of |RS| * |WS|)`` for edges plus
    ``O(unit count)`` for the lists — linear in practice because contract
    transactions touch a handful of addresses each.
    """
    acg = ACG()
    rw_lists = acg.rw_lists
    ordered = sorted(transactions, key=lambda t: t.txid)
    seen_ids: set[int] = set()
    for txn in ordered:
        if txn.txid in seen_ids:
            raise SchedulingError(f"duplicate txid {txn.txid} in batch")
        seen_ids.add(txn.txid)
        for address in txn.read_set:
            rw = rw_lists.get(address)
            if rw is None:
                rw = rw_lists[address] = AddressRWList(address)
            rw.add_read(txn.txid)
        for address in txn.write_set:
            rw = rw_lists.get(address)
            if rw is None:
                rw = rw_lists[address] = AddressRWList(address)
            rw.add_write(txn.txid)
        for address in txn.delta_set:
            rw = rw_lists.get(address)
            if rw is None:
                rw = rw_lists[address] = AddressRWList(address)
            rw.add_delta(txn.txid)
        # Delta units mutate their address, so they join the write side of
        # the address-dependency edges (write-addr -> read-addr).
        for write_addr in txn.write_set | txn.delta_set:
            for read_addr in txn.read_set:
                if write_addr == read_addr:
                    continue
                _add_edge(acg, write_addr, read_addr)
    for rw in rw_lists.values():
        rw.finalize()
    acg.txn_count = len(ordered)
    return acg


def _add_edge(acg: ACG, src: Address, dst: Address) -> None:
    """Record the address dependency ``src --> dst``."""
    key = (src, dst)
    count = acg.edge_multiplicity.get(key, 0)
    acg.edge_multiplicity[key] = count + 1
    if count == 0:
        acg.out_edges.setdefault(src, set()).add(dst)
        acg.in_edges.setdefault(dst, set()).add(src)


# ---------------------------------------------------------------------------
# Dense fast path: CSR adjacency over interned ids
# ---------------------------------------------------------------------------


def _csr(lists: list[list[int]]) -> tuple[array, array]:
    """Flatten a list-of-lists into (indptr, indices) ``array('q')`` pairs."""
    indptr = array("q", [0])
    indices = array("q")
    for row in lists:
        indices.extend(row)
        indptr.append(len(indices))
    return indptr, indices


@dataclass
class DenseACG:
    """The ACG of one batch on dense integer ids, stored CSR-style.

    Every structure is a parallel ``(indptr, indices)`` pair of flat
    ``array('q')`` buffers — no per-vertex dicts or sets, so the sorting
    and validation passes iterate plain integer slices.

    * ``read_indptr/read_txns``, ``write_indptr/write_txns`` and
      ``delta_indptr/delta_txns`` are the per-address unit lists ``RW_j``
      (dense txn indices, ascending — the paper's deterministic unit
      order);
    * ``out_indptr/out_ids`` and ``in_indptr/in_ids`` are the
      deduplicated address-dependency adjacency (sorted successor ids);
    * ``txn_read_indptr/txn_read_addrs`` and the write twins are the
      transpose: each transaction's touched address ids, used by the
      reordering enhancement and the resurrection pass.

    Edge multiplicities are kept in a single int-keyed dict
    (``src * addr_count + dst``) so :meth:`to_acg` can materialise the
    exact string-keyed :class:`ACG` on demand.
    """

    batch: InternedBatch
    read_indptr: array
    read_txns: array
    write_indptr: array
    write_txns: array
    delta_indptr: array
    delta_txns: array
    out_indptr: array
    out_ids: array
    in_indptr: array
    in_ids: array
    txn_read_indptr: array
    txn_read_addrs: array
    txn_write_indptr: array
    txn_write_addrs: array
    txn_delta_indptr: array
    txn_delta_addrs: array
    edge_mult: dict[int, int] = field(default_factory=dict)

    @property
    def addr_count(self) -> int:
        """Number of distinct addresses (dense address ids are 0..A-1)."""
        return self.batch.addr_count

    @property
    def txn_count(self) -> int:
        """Number of transactions (dense txn indices are 0..N-1)."""
        return self.batch.txn_count

    @property
    def edge_count(self) -> int:
        """Number of distinct address-dependency edges."""
        return len(self.edge_mult)

    @property
    def unit_count(self) -> int:
        """Total number of read, write, and delta units across all addresses."""
        return len(self.read_txns) + len(self.write_txns) + len(self.delta_txns)

    def reads_of(self, addr_id: int) -> array:
        """Dense txn indices reading ``addr_id`` (ascending)."""
        return self.read_txns[self.read_indptr[addr_id] : self.read_indptr[addr_id + 1]]

    def writes_of(self, addr_id: int) -> array:
        """Dense txn indices writing ``addr_id`` (ascending)."""
        return self.write_txns[
            self.write_indptr[addr_id] : self.write_indptr[addr_id + 1]
        ]

    def deltas_of(self, addr_id: int) -> array:
        """Dense txn indices applying deltas to ``addr_id`` (ascending)."""
        return self.delta_txns[
            self.delta_indptr[addr_id] : self.delta_indptr[addr_id + 1]
        ]

    def write_count_of(self, txn_idx: int) -> int:
        """Number of plain write units of transaction ``txn_idx``."""
        return self.txn_write_indptr[txn_idx + 1] - self.txn_write_indptr[txn_idx]

    def delta_count_of(self, txn_idx: int) -> int:
        """Number of delta units of transaction ``txn_idx``."""
        return self.txn_delta_indptr[txn_idx + 1] - self.txn_delta_indptr[txn_idx]

    def to_acg(self) -> ACG:
        """Materialise the equivalent string-keyed :class:`ACG`.

        Bit-identical to ``build_acg`` on the same batch (unit order,
        adjacency, multiplicities); used when a caller wants the rich
        reference object after a fast-path scheduling run.
        """
        batch = self.batch
        addresses = batch.addresses
        txids = batch.txids
        acg = ACG(txn_count=batch.txn_count)
        for addr_id, address in enumerate(addresses):
            rw = AddressRWList(address)
            rw.reads = [txids[t] for t in self.reads_of(addr_id)]
            rw.writes = [txids[t] for t in self.writes_of(addr_id)]
            rw.deltas = [txids[t] for t in self.deltas_of(addr_id)]
            acg.rw_lists[address] = rw
        addr_count = len(addresses)
        for key, count in self.edge_mult.items():
            src = addresses[key // addr_count]
            dst = addresses[key % addr_count]
            acg.edge_multiplicity[(src, dst)] = count
            acg.out_edges.setdefault(src, set()).add(dst)
            acg.in_edges.setdefault(dst, set()).add(src)
        return acg


def build_dense_acg(batch: InternedBatch) -> DenseACG:
    """Build the CSR-form ACG for an interned batch.

    Same construction as :func:`build_acg` — one pass over transactions in
    ascending id order, ``O(u * N)`` for units plus ``O(|RS| * |WS|)`` per
    transaction for edges — but every address lookup is a single dict hit
    and every list is integer-only.
    """
    addr_ids = batch.addr_ids
    addr_count = batch.addr_count
    reads_by_addr: list[list[int]] = [[] for _ in range(addr_count)]
    writes_by_addr: list[list[int]] = [[] for _ in range(addr_count)]
    deltas_by_addr: list[list[int]] = [[] for _ in range(addr_count)]
    out_lists: list[list[int]] = [[] for _ in range(addr_count)]
    in_lists: list[list[int]] = [[] for _ in range(addr_count)]
    edge_mult: dict[int, int] = {}
    txn_reads: list[list[int]] = []
    txn_writes: list[list[int]] = []
    txn_deltas: list[list[int]] = []
    for txn_idx, txn in enumerate(batch.transactions):
        read_ids = [addr_ids[a] for a in txn.rwset.reads]
        write_ids = [addr_ids[a] for a in txn.rwset.writes]
        delta_ids = [addr_ids[a] for a in txn.rwset.deltas]
        txn_reads.append(read_ids)
        txn_writes.append(write_ids)
        txn_deltas.append(delta_ids)
        for addr_id in read_ids:
            reads_by_addr[addr_id].append(txn_idx)
        for addr_id in write_ids:
            writes_by_addr[addr_id].append(txn_idx)
        for addr_id in delta_ids:
            deltas_by_addr[addr_id].append(txn_idx)
        for write_id in write_ids + delta_ids:
            base = write_id * addr_count
            for read_id in read_ids:
                if write_id == read_id:
                    continue
                key = base + read_id
                count = edge_mult.get(key, 0)
                edge_mult[key] = count + 1
                if count == 0:
                    out_lists[write_id].append(read_id)
                    in_lists[read_id].append(write_id)
    for row in out_lists:
        row.sort()
    for row in in_lists:
        row.sort()
    read_indptr, read_txns = _csr(reads_by_addr)
    write_indptr, write_txns = _csr(writes_by_addr)
    delta_indptr, delta_txns = _csr(deltas_by_addr)
    out_indptr, out_ids = _csr(out_lists)
    in_indptr, in_ids = _csr(in_lists)
    txn_read_indptr, txn_read_addrs = _csr(txn_reads)
    txn_write_indptr, txn_write_addrs = _csr(txn_writes)
    txn_delta_indptr, txn_delta_addrs = _csr(txn_deltas)
    return DenseACG(
        batch=batch,
        read_indptr=read_indptr,
        read_txns=read_txns,
        write_indptr=write_indptr,
        write_txns=write_txns,
        delta_indptr=delta_indptr,
        delta_txns=delta_txns,
        out_indptr=out_indptr,
        out_ids=out_ids,
        in_indptr=in_indptr,
        in_ids=in_ids,
        txn_read_indptr=txn_read_indptr,
        txn_read_addrs=txn_read_addrs,
        txn_write_indptr=txn_write_indptr,
        txn_write_addrs=txn_write_addrs,
        txn_delta_indptr=txn_delta_indptr,
        txn_delta_addrs=txn_delta_addrs,
        edge_mult=edge_mult,
    )


def dense_acg_from_transactions(
    transactions: Sequence[Transaction] | Iterable[Transaction],
) -> DenseACG:
    """Intern a raw batch and build its dense ACG in one call."""
    return build_dense_acg(intern_batch(transactions))
