"""Command-line interface.

Four subcommands cover the everyday uses of the library::

    repro-nezha quickstart                        # paper's worked example
    repro-nezha schedule --scheme nezha --skew .8 # one batch, one scheme
    repro-nezha compare --skew .6                 # all schemes side by side
    repro-nezha simulate --scheme nezha --epochs 5  # cluster throughput

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import measure_conflicts, pairwise_conflict_count
from repro.bench import SCHEMES, make_scheme, run_scheme
from repro.bench.tables import render_table
from repro.workload import (
    SmallBankConfig,
    SmallBankWorkload,
    SyntheticConfig,
    SyntheticWorkload,
    TokenConfig,
    TokenWorkload,
    flatten_blocks,
)

WORKLOADS = ("smallbank", "token", "synthetic")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro-nezha",
        description="Nezha (ICDCS 2022) reproduction: concurrency control "
        "for DAG-based blockchains",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="walk through the paper's worked example")

    schedule = sub.add_parser("schedule", help="schedule one epoch's batch")
    _add_workload_args(schedule)
    schedule.add_argument(
        "--scheme", choices=sorted(SCHEMES), default="nezha", help="scheme to run"
    )

    compare = sub.add_parser("compare", help="run every scheme on one batch")
    _add_workload_args(compare)

    simulate = sub.add_parser("simulate", help="simulated cluster throughput")
    _add_workload_args(simulate)
    simulate.add_argument("--scheme", choices=sorted(SCHEMES), default="nezha")
    simulate.add_argument("--epochs", type=int, default=3, help="epochs to run")
    simulate.add_argument(
        "--paper-costs",
        action="store_true",
        help="charge execution at the paper-calibrated EVM rate",
    )
    simulate.add_argument(
        "--workers",
        type=int,
        default=0,
        help="execution/commit worker pool size (0 = serial)",
    )
    simulate.add_argument(
        "--exec-backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="execution-phase backend (process = multi-core speculative "
        "execution with delta-synced worker state replicas)",
    )
    simulate.add_argument(
        "--delta-cc",
        action="store_true",
        help="operation-level CC: promote provably commutative writes to "
        "delta units that share sequence numbers instead of conflicting "
        "(Nezha scheduler only; baselines ignore the flag)",
    )
    simulate.add_argument(
        "--state-cache",
        type=int,
        default=0,
        metavar="N",
        help="trie-node LRU cache capacity in front of the state store "
        "(0 = uncached; hit rate lands in the metrics snapshot)",
    )
    simulate.add_argument(
        "--trie-state",
        action="store_true",
        help="disable the flat journaled state fast path and run the "
        "trie-backed reference StateDB (same roots, slower commits)",
    )
    simulate.add_argument(
        "--streaming",
        action="store_true",
        help="streaming epoch engine: overlap the next epoch's speculative "
        "execution with the current epoch's concurrency control and commit "
        "(Nezha scheduler only; results stay bit-identical to the barrier "
        "pipeline)",
    )
    simulate.add_argument(
        "--certify",
        action="store_true",
        help="run the independent proof-carrying schedule certifier over "
        "every committed epoch (the run fails on the first rejected "
        "certificate)",
    )
    simulate.add_argument(
        "--certify-out",
        default=None,
        metavar="DIR",
        help="with --certify: write per-epoch artifact and certificate "
        "JSON files into DIR (re-checkable via 'analyze certify')",
    )
    simulate.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the vector-clock concurrency sanitizer for the run "
        "and report data races (nonzero exit when any are found)",
    )
    _add_obs_args(simulate)
    _add_ledger_args(simulate)

    multinode = sub.add_parser(
        "multinode", help="replica network: N full nodes, agreement per epoch"
    )
    multinode.add_argument("--scheme", choices=sorted(SCHEMES), default="nezha")
    multinode.add_argument("--replicas", type=int, default=3, help="full nodes")
    multinode.add_argument("--epochs", type=int, default=3, help="epochs to run")
    multinode.add_argument("--omega", type=int, default=4, help="block concurrency")
    multinode.add_argument("--block-size", type=int, default=50, help="txns per block")
    multinode.add_argument("--skew", type=float, default=0.5, help="Zipfian exponent")
    multinode.add_argument("--accounts", type=int, default=1_000, help="population")
    multinode.add_argument("--seed", type=int, default=0, help="PRNG seed")
    _add_obs_args(multinode)
    _add_ledger_args(multinode)

    conflicts = sub.add_parser("conflicts", help="conflict analysis (Table I)")
    _add_workload_args(conflicts)

    hotspots = sub.add_parser(
        "hotspots",
        help="contention analysis of a workload (static access counts; "
        "see 'analyze contention' for observed abort attribution from a "
        "recorded flight ledger)",
    )
    _add_workload_args(hotspots)
    hotspots.add_argument("--top", type=int, default=10, help="hot addresses to list")

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: bytecode verifier, determinism/concurrency "
        "lint, and the offline schedule certifier",
    )
    analyze_sub = analyze.add_subparsers(dest="analyze_command", required=True)
    bytecode = analyze_sub.add_parser(
        "bytecode", help="verify shipped contract bytecode (stack/jump/gas/RW-sets)"
    )
    bytecode.add_argument(
        "--contract",
        choices=("all", "smallbank", "token"),
        default="all",
        help="contract to verify",
    )
    bytecode.add_argument(
        "--check-containment",
        action="store_true",
        help="also execute a seeded argument sweep and assert the static "
        "RW key sets contain every observed LoggedStorage RW-set",
    )
    bytecode.add_argument(
        "--sweeps", type=int, default=40, help="executions per method in the sweep"
    )
    bytecode.add_argument("--seed", type=int, default=0, help="sweep PRNG seed")
    bytecode.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    lint = analyze_sub.add_parser(
        "lint", help="determinism/concurrency lint over consensus-critical Python"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: the consensus-critical "
        "repro packages: core, dag, state, node)",
    )
    lint.add_argument(
        "--select", default=None, help="comma-separated rule codes (default: all)"
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    certify = analyze_sub.add_parser(
        "certify",
        help="re-check exported epoch schedule artifacts with the "
        "independent proof-carrying certifier",
    )
    certify.add_argument(
        "paths",
        nargs="+",
        help="epoch artifact JSON files, or directories containing them "
        "(as written by 'simulate --certify --certify-out DIR')",
    )
    certify.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write one certificate JSON per artifact into DIR",
    )
    certify.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    txn = analyze_sub.add_parser(
        "txn",
        help="replay one transaction's causal timeline from a recorded "
        "flight ledger (ingest -> execute -> schedule -> commit/abort, "
        "with the abort's attributed conflict chain)",
    )
    txn.add_argument("txid", type=int, help="transaction id to replay")
    txn.add_argument(
        "--ledger", required=True, metavar="FILE",
        help="flight-ledger JSONL written via --ledger-out",
    )
    txn.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    contention = analyze_sub.add_parser(
        "contention",
        help="per-address hot-key report from a recorded flight ledger: "
        "abort mass, edge-kind breakdown, delta-promotion candidates, "
        "and a Zipf skew estimate",
    )
    contention.add_argument(
        "--ledger", required=True, metavar="FILE",
        help="flight-ledger JSONL written via --ledger-out",
    )
    contention.add_argument(
        "--top", type=int, default=10, help="contended addresses to list"
    )
    contention.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    ledger_check = analyze_sub.add_parser(
        "ledger", help="schema-check an exported flight-ledger JSONL file"
    )
    ledger_check.add_argument("file", help="flight-ledger JSONL to validate")

    trace = sub.add_parser("trace", help="record, inspect, and replay workload traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_sub.add_parser("record", help="generate and save a trace")
    _add_workload_args(record)
    record.add_argument("--out", required=True, help="trace file to write")
    info = trace_sub.add_parser("info", help="show a trace's shape")
    info.add_argument("file", help="trace file to inspect")
    replay = trace_sub.add_parser("run", help="schedule a recorded trace")
    replay.add_argument("file", help="trace file to replay")
    replay.add_argument("--scheme", choices=sorted(SCHEMES), default="nezha")
    _add_obs_args(replay)

    top = sub.add_parser(
        "top", help="slowest spans of a recorded flight-recorder trace"
    )
    top.add_argument("file", help="Chrome trace JSON written via --trace-out")
    top.add_argument("--limit", type=int, default=15, help="rows to show")
    return parser


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=WORKLOADS, default="smallbank")
    parser.add_argument("--omega", type=int, default=4, help="block concurrency")
    parser.add_argument("--block-size", type=int, default=100, help="txns per block")
    parser.add_argument("--skew", type=float, default=0.0, help="Zipfian exponent")
    parser.add_argument("--accounts", type=int, default=10_000, help="population")
    parser.add_argument("--seed", type=int, default=0, help="PRNG seed")


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a Chrome/Perfetto trace_event JSON of the run",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a Prometheus text-exposition metrics snapshot",
    )


def _add_ledger_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger-out",
        default=None,
        metavar="FILE",
        help="record the transaction flight ledger and write it as JSONL "
        "(replayable via 'analyze txn' / 'analyze contention')",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics (Prometheus) and /healthz live on "
        "127.0.0.1:PORT for the duration of the run (0 = ephemeral port)",
    )


def make_workload(args: argparse.Namespace):
    """Instantiate the selected workload generator."""
    if args.workload == "smallbank":
        return SmallBankWorkload(
            SmallBankConfig(account_count=args.accounts, skew=args.skew, seed=args.seed)
        )
    if args.workload == "token":
        return TokenWorkload(
            TokenConfig(holder_count=args.accounts, skew=args.skew, seed=args.seed)
        )
    return SyntheticWorkload(
        SyntheticConfig(address_count=args.accounts, skew=args.skew, seed=args.seed)
    )


def generate_batch(args: argparse.Namespace):
    """One epoch's deduplicated transactions for the CLI parameters."""
    workload = make_workload(args)
    return flatten_blocks(workload.generate_blocks(args.omega, args.block_size))


def cmd_quickstart(_args: argparse.Namespace) -> int:
    from repro.core import NezhaScheduler, build_acg, divide_ranks
    from repro.txn import make_transaction

    transactions = [
        make_transaction(1, reads=["A2"], writes=["A1"]),
        make_transaction(2, reads=["A3"], writes=["A2"]),
        make_transaction(3, reads=["A4"], writes=["A2"]),
        make_transaction(4, reads=["A4"], writes=["A3"]),
        make_transaction(5, reads=["A4"], writes=["A4"]),
        make_transaction(6, reads=["A1"], writes=["A3"]),
    ]
    acg = build_acg(transactions)
    print("ACG unit lists (paper Figure 4):")
    for address in acg.addresses:
        print(f"  {acg.rw_lists[address]!r}")
    print(f"address dependencies: {sorted(acg.iter_edges())}")
    print(f"sorting ranks (Figure 6): {divide_ranks(acg)}")
    result = NezhaScheduler().schedule(transactions)
    print("commit schedule (Figure 7):")
    for group in result.schedule.groups:
        print(f"  seq {group.sequence}: {[f'T{t}' for t in group.txids]}")
    print(f"aborted: {[f'T{t}' for t in result.schedule.aborted]}")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    transactions = generate_batch(args)
    run = run_scheme(make_scheme(args.scheme), transactions)
    rows = [
        ["transactions", len(transactions)],
        ["committed", run.schedule.committed_count],
        ["aborted", run.schedule.aborted_count],
        ["abort rate", f"{100 * run.schedule.abort_rate:.2f}%"],
        ["commit groups", len(run.schedule.groups)],
        ["mean group size", f"{run.schedule.mean_group_size:.2f}"],
        ["latency", f"{run.total_seconds * 1000:.2f} ms"],
    ]
    for phase, seconds in run.phase_seconds.items():
        rows.append([f"  {phase}", f"{seconds * 1000:.2f} ms"])
    if run.failed:
        rows.append(["FAILED", "cycle budget exhausted (paper: OOM)"])
    print(render_table(f"{args.scheme} on {args.workload}", ["metric", "value"], rows))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    transactions = generate_batch(args)
    rows = []
    for scheme_name in sorted(SCHEMES):
        run = run_scheme(make_scheme(scheme_name), transactions)
        if run.failed:
            rows.append([scheme_name, "-", "-", "-", "FAILED"])
            continue
        rows.append(
            [
                scheme_name,
                run.schedule.committed_count,
                f"{100 * run.schedule.abort_rate:.1f}%",
                len(run.schedule.groups),
                f"{run.total_seconds * 1000:.2f} ms",
            ]
        )
    print(
        render_table(
            f"all schemes, {args.workload}, omega={args.omega}, skew={args.skew}",
            ["scheme", "committed", "aborts", "groups", "latency"],
            rows,
        )
    )
    return 0


def _make_obs(args: argparse.Namespace):
    """(tracer, metrics, ledger) per the observability flags.

    A live ``--metrics-port`` endpoint needs a registry (and records the
    ledger's volume counters), so either flag materialises the registry;
    the flight ledger exists when anything will read it.
    """
    from repro.node.metrics import MetricsRegistry
    from repro.obs import FlightLedger, Tracer

    metrics_port = getattr(args, "metrics_port", None)
    tracer = Tracer() if args.trace_out else None
    metrics = (
        MetricsRegistry()
        if args.metrics_out or metrics_port is not None
        else None
    )
    ledger = (
        FlightLedger()
        if getattr(args, "ledger_out", None) or metrics_port is not None
        else None
    )
    return tracer, metrics, ledger


def _start_endpoint(args: argparse.Namespace, metrics, tracer, ledger, health):
    """Bind the live /metrics endpoint when ``--metrics-port`` is given."""
    if getattr(args, "metrics_port", None) is None:
        return None
    from repro.obs import MetricsEndpoint

    endpoint = MetricsEndpoint(
        metrics,
        tracer=tracer,
        ledger=ledger,
        port=args.metrics_port,
        health=health,
    ).start()
    print(f"metrics endpoint: {endpoint.url}/metrics (and /healthz)")
    return endpoint


def _write_obs_outputs(args: argparse.Namespace, tracer, metrics, ledger=None) -> None:
    """Flush the flight recorder to the requested artifact files."""
    from repro.obs import write_chrome_trace, write_prometheus

    if tracer is not None and args.trace_out:
        count = write_chrome_trace(args.trace_out, tracer.spans())
        print(f"trace: {count} spans -> {args.trace_out}")
    if metrics is not None and args.metrics_out:
        lines = write_prometheus(args.metrics_out, metrics, tracer, ledger)
        print(f"metrics: {lines} lines -> {args.metrics_out}")
    if ledger is not None and getattr(args, "ledger_out", None):
        lines = ledger.write_jsonl(args.ledger_out)
        print(f"ledger: {lines} lines -> {args.ledger_out}")


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis import race
    from repro.net import Cluster, ClusterConfig
    from repro.vm.costmodel import ExecutionCostModel, ZERO_COST

    if args.workload != "smallbank":
        print("simulate currently drives the SmallBank cluster only", file=sys.stderr)
        return 2
    tracer, metrics, ledger = _make_obs(args)
    detector = race.enable() if args.sanitize else None
    cluster = Cluster(
        make_scheme(args.scheme),
        ClusterConfig(
            block_concurrency=args.omega,
            block_size=args.block_size,
            skew=args.skew,
            account_count=args.accounts,
            seed=args.seed,
            workers=args.workers,
            exec_backend=args.exec_backend,
            delta_cc=args.delta_cc,
            flat_state=not args.trie_state,
            state_cache=args.state_cache,
            streaming=args.streaming,
            certify=args.certify,
            cost_model=ExecutionCostModel() if args.paper_costs else ZERO_COST,
        ),
        metrics=metrics,
        tracer=tracer,
        ledger=ledger,
    )
    endpoint = _start_endpoint(
        args,
        metrics,
        tracer,
        ledger,
        health=lambda: {
            "scheme": args.scheme,
            "epochs_processed": len(cluster.node.reports),
            "epochs_target": args.epochs,
        },
    )
    try:
        with cluster:
            run = cluster.run_epochs(args.epochs)
    finally:
        if endpoint is not None:
            endpoint.stop()
        if detector is not None:
            race.disable()
    rows = [
        ["epochs", len(run.outcomes)],
        ["committed", run.committed],
        ["simulated duration", f"{run.duration:.2f} s"],
        ["effective throughput", f"{run.effective_throughput:.1f} tps"],
        ["mean abort rate", f"{100 * run.mean_abort_rate:.2f}%"],
    ]
    if args.certify:
        certificates = [
            outcome.report.certificate
            for outcome in run.outcomes
            if outcome.report.certificate is not None
        ]
        rows.append(["certified epochs", f"{len(certificates)}/{len(run.outcomes)}"])
        rows.append(
            [
                "conflict edges checked",
                sum(cert.conflict_edges for cert in certificates),
            ]
        )
        if args.certify_out:
            written = _write_certificates(
                args.certify_out, cluster.node.pipeline.artifacts, certificates
            )
            rows.append(["certificate files", f"{written} -> {args.certify_out}"])
    print(
        render_table(
            f"cluster: {args.scheme}, omega={args.omega}, skew={args.skew}",
            ["metric", "value"],
            rows,
        )
    )
    _write_obs_outputs(args, tracer, metrics, ledger)
    if detector is not None:
        summary = detector.summary()
        print(
            f"sanitizer: {summary['accesses']} accesses across "
            f"{summary['locations']} locations, {len(summary['races'])} races"
        )
        for finding in detector.report():
            print(f"  {finding.render()}", file=sys.stderr)
        if summary["races"]:
            return 1
    return 0


def _write_certificates(out_dir: str, artifacts, certificates) -> int:
    """Write per-epoch artifact + certificate JSON files; return the count."""
    import json
    from pathlib import Path

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written = 0
    for payload in artifacts:
        path = directory / f"epoch-{payload['epoch']:04d}.artifact.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written += 1
    for certificate in certificates:
        path = directory / f"epoch-{certificate.epoch_index:04d}.certificate.json"
        path.write_text(
            json.dumps(certificate.to_json(), indent=2, sort_keys=True) + "\n"
        )
        written += 1
    return written


def cmd_multinode(args: argparse.Namespace) -> int:
    from repro.net.multinode import ReplicaNetwork, ReplicaNetworkConfig
    from repro.obs import Tracer

    tracer = Tracer() if args.trace_out else None
    with_ledgers = bool(args.ledger_out) or args.metrics_port is not None
    network = ReplicaNetwork(
        scheduler_factory=lambda: make_scheme(args.scheme),
        config=ReplicaNetworkConfig(
            replica_count=args.replicas,
            chain_count=args.omega,
            block_size=args.block_size,
            account_count=args.accounts,
            skew=args.skew,
            seed=args.seed,
        ),
        tracer=tracer,
        with_ledgers=with_ledgers,
    )
    # The network keeps one registry/ledger per replica; the endpoint and
    # artifact files export replica 0's (agreement makes them equivalent).
    endpoint = _start_endpoint(
        args,
        network.metrics[0],
        tracer,
        network.ledgers[0],
        health=lambda: {
            "scheme": args.scheme,
            "replicas": args.replicas,
            "epochs_processed": len(network.agreements),
            "agreed": network.all_agreed,
        },
    )
    try:
        agreements = network.run_epochs(args.epochs)
    finally:
        if endpoint is not None:
            endpoint.stop()
    rows = [
        [
            agreement.epoch_index,
            "yes" if agreement.agreed else "NO",
            agreement.committed[0],
            f"{max(agreement.delivery_times):.3f} s",
        ]
        for agreement in agreements
    ]
    print(
        render_table(
            f"replica network: {args.scheme}, {args.replicas} replicas",
            ["epoch", "agreed", "committed", "slowest delivery"],
            rows,
        )
    )
    _write_obs_outputs(args, tracer, network.metrics[0], network.ledgers[0])
    return 0 if network.all_agreed else 1


def cmd_top(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import render_top, validate_chrome_trace

    try:
        payload = json.loads(Path(args.file).read_text())
        events = validate_chrome_trace(payload)
    except (OSError, ValueError) as exc:
        print(f"invalid trace {args.file}: {exc}", file=sys.stderr)
        return 2
    print(render_top(events, limit=args.limit))
    return 0


def cmd_conflicts(args: argparse.Namespace) -> int:
    transactions = generate_batch(args)
    measured = measure_conflicts(transactions)
    theoretical = pairwise_conflict_count(len(transactions))
    rows = [
        ["transactions", measured.transaction_count],
        ["possible pairs (C coefficient)", f"{theoretical:,.0f}"],
        ["conflicting pairs (measured)", measured.conflicting_pairs],
        ["conflict probability p", f"{measured.conflict_probability:.4f}"],
        ["distinct addresses", measured.distinct_addresses],
        ["mean conflicts per address", f"{measured.mean_conflicts_per_address:.2f}"],
        ["max conflicts on one address", measured.max_conflicts_on_address],
    ]
    print(
        render_table(
            f"conflicts: {args.workload}, omega={args.omega}, skew={args.skew}",
            ["metric", "value"],
            rows,
        )
    )
    return 0


def cmd_hotspots(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_contention

    transactions = generate_batch(args)
    report = analyze_contention(transactions, top=args.top)
    rows = [
        [heat.address, heat.reads, heat.writes, heat.total]
        for heat in report.hottest
    ]
    print(
        render_table(
            f"hotspots: {args.workload}, skew={args.skew} — {report.describe()}",
            ["address", "reads", "writes", "total"],
            rows,
        )
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.analyze_command == "bytecode":
        return _analyze_bytecode(args)
    if args.analyze_command == "certify":
        return _analyze_certify(args)
    if args.analyze_command == "txn":
        return _analyze_txn(args)
    if args.analyze_command == "contention":
        return _analyze_contention(args)
    if args.analyze_command == "ledger":
        return _analyze_ledger(args)
    return _analyze_lint(args)


def _load_ledger_events(path: str):
    """Read a ledger export for analysis; exits with code 2 on bad files."""
    from repro.obs import read_jsonl

    try:
        return read_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"invalid ledger {path}: {exc}", file=sys.stderr)
        return None


def _analyze_txn(args: argparse.Namespace) -> int:
    import json

    from repro.obs import iter_timeline, timeline_digest

    loaded = _load_ledger_events(args.ledger)
    if loaded is None:
        return 2
    meta, events = loaded
    timeline = list(iter_timeline(events, args.txid))
    if not timeline:
        print(f"T{args.txid}: no events in {args.ledger}", file=sys.stderr)
        return 1
    digest = timeline_digest(events, txid=args.txid)
    # Follow the attributed edges outward: who killed this transaction,
    # and (when the killer also died) who killed the killer.
    chain: list[dict] = []
    seen = {args.txid}
    frontier = [args.txid]
    by_txid: dict[int, list[dict]] = {}
    for event in events:
        if event["kind"] == "abort":
            by_txid.setdefault(event["txid"], []).append(event)
    while frontier:
        txid = frontier.pop(0)
        for event in by_txid.get(txid, ()):
            for peer, address, kind in event.get("edges", ()):
                chain.append(
                    {
                        "victim": txid,
                        "peer": peer,
                        "address": address,
                        "edge": kind,
                        "reason": event.get("reason"),
                    }
                )
                if peer >= 0 and peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
    if args.json:
        print(
            json.dumps(
                {
                    "report": "txn-timeline",
                    "txid": args.txid,
                    "meta": meta,
                    "digest": digest,
                    "timeline": timeline,
                    "abort_chain": chain,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    rows = []
    for event in timeline:
        extra = {
            key: value
            for key, value in event.items()
            if key not in ("epoch", "txid", "kind")
        }
        detail = ", ".join(f"{key}={value}" for key, value in sorted(extra.items()))
        rows.append([event["epoch"], event["kind"], detail])
    print(
        render_table(
            f"T{args.txid} timeline (digest {digest[:12]})",
            ["epoch", "stage", "detail"],
            rows,
        )
    )
    if chain:
        print("abort chain:")
        for link in chain:
            peer = f"T{link['peer']}" if link["peer"] >= 0 else "(unknown)"
            print(
                f"  T{link['victim']} <-[{link['edge']} @ {link['address']}]- "
                f"{peer} ({link['reason']})"
            )
    return 0


def _analyze_contention(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        aggregate_contention,
        delta_promotion_candidates,
        estimate_skew,
    )

    loaded = _load_ledger_events(args.ledger)
    if loaded is None:
        return 2
    _meta, events = loaded
    table = aggregate_contention(events)
    if not table:
        print("no attributed aborts in the ledger")
        return 0
    ranked = sorted(table.items(), key=lambda item: (-item[1]["aborts"], item[0]))
    candidates = delta_promotion_candidates(table)
    skew = estimate_skew(entry["aborts"] for entry in table.values())
    if args.json:
        print(
            json.dumps(
                {
                    "report": "contention",
                    "addresses": {
                        address: {
                            "aborts": entry["aborts"],
                            "kinds": entry["kinds"],
                            "victims": sorted(entry["victims"]),
                            "peers": sorted(entry["peers"]),
                        }
                        for address, entry in ranked[: args.top]
                    },
                    "delta_promotion_candidates": candidates,
                    "skew_estimate": skew,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    rows = []
    for address, entry in ranked[: args.top]:
        kinds = ", ".join(
            f"{kind}:{count}" for kind, count in sorted(entry["kinds"].items())
        )
        rows.append(
            [
                address,
                entry["aborts"],
                kinds,
                len(entry["victims"]),
                len(entry["peers"]),
                "yes" if address in candidates else "",
            ]
        )
    skew_label = f"{skew:.2f}" if skew is not None else "n/a"
    print(
        render_table(
            f"contention: {len(table)} contended addresses, "
            f"skew estimate {skew_label}",
            ["address", "abort mass", "edge kinds", "victims", "peers", "promote?"],
            rows,
        )
    )
    if candidates:
        print(
            "delta-promotion candidates (W!=W-dominated): "
            + ", ".join(candidates[: args.top])
        )
    return 0


def _analyze_ledger(args: argparse.Namespace) -> int:
    from repro.obs import validate_ledger

    problems = validate_ledger(args.file)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.file}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"{args.file}: ok")
    return 0


def _analyze_bytecode(args: argparse.Namespace) -> int:
    from repro.analysis.static import run_containment_sweep, shipped_contracts
    from repro.analysis.static.contracts import SweepResult, verify_shipped_contract
    from repro.analysis.static.report import bytecode_report_json, bytecode_report_text

    sweeps = []
    for contract in shipped_contracts():
        if args.contract != "all" and contract.name != args.contract:
            continue
        if args.check_containment:
            sweeps.append(
                run_containment_sweep(contract, sweeps=args.sweeps, seed=args.seed)
            )
        else:
            sweeps.append(
                SweepResult(
                    contract=contract.name,
                    reports=verify_shipped_contract(contract),
                )
            )
    if args.json:
        print(bytecode_report_json(sweeps, containment_checked=args.check_containment))
    else:
        print(bytecode_report_text(sweeps, containment_checked=args.check_containment))
    return 0 if all(sweep.ok for sweep in sweeps) else 1


def _analyze_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.analysis.static import default_lint_paths, lint_paths
    from repro.analysis.static.report import lint_report_json, lint_report_text

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = default_lint_paths(Path(repro.__file__).resolve().parent)
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    findings = lint_paths(paths, select=select)
    rendered_paths = [str(p) for p in paths]
    if args.json:
        print(lint_report_json(findings, paths=rendered_paths))
    else:
        print(lint_report_text(findings, paths=rendered_paths))
    # Warning-severity findings (e.g. ND203) are advisory: they print
    # but do not gate the exit code.
    errors = [finding for finding in findings if finding.severity == "error"]
    return 0 if not errors else 1


def _analyze_certify(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.certify import certify_epoch
    from repro.core.export import parse_epoch_artifact

    files: list[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.artifact.json")))
        else:
            files.append(path)
    if not files:
        print("no artifact files found", file=sys.stderr)
        return 2
    certificates = []
    for path in files:
        try:
            artifact = parse_epoch_artifact(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"invalid artifact {path}: {exc}", file=sys.stderr)
            return 2
        certificate = certify_epoch(
            artifact.rwsets,
            artifact,
            abort_reasons=artifact.abort_reasons,
            guard_aborted=artifact.guard_aborted,
            failed=artifact.failed,
            reason_counts=artifact.reason_counts,
            epoch_index=artifact.epoch_index,
            scheme=artifact.scheme,
        )
        certificates.append((path, certificate))
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for path, certificate in certificates:
            target = out_dir / f"epoch-{certificate.epoch_index:04d}.certificate.json"
            target.write_text(
                json.dumps(certificate.to_json(), indent=2, sort_keys=True) + "\n"
            )
    if args.json:
        print(
            json.dumps(
                {
                    "report": "schedule-certification",
                    "ok": all(cert.ok for _, cert in certificates),
                    "certificates": [cert.to_json() for _, cert in certificates],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for path, certificate in certificates:
            print(f"{path}: {certificate.summary()}")
            for finding in certificate.findings:
                print(f"  {finding.render()}", file=sys.stderr)
    rejected = [
        certificate
        for _, certificate in certificates
        if any(finding.severity == "error" for finding in certificate.findings)
    ]
    return 0 if not rejected else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.workload.trace import load_trace, save_trace, trace_info

    if args.trace_command == "record":
        transactions = generate_batch(args)
        count = save_trace(args.out, transactions)
        print(f"recorded {count} transactions to {args.out}")
        return 0
    if args.trace_command == "info":
        info = trace_info(args.file)
        rows = [["transactions", info["count"]], ["distinct addresses", info["distinct_addresses"]]]
        rows.extend([f"  {name}", count] for name, count in info["functions"].items())
        print(render_table(f"trace {args.file}", ["metric", "value"], rows))
        return 0
    # run
    transactions = load_trace(args.file)
    tracer, metrics, _ = _make_obs(args)
    scheme = make_scheme(args.scheme)
    if tracer is not None and hasattr(scheme, "tracer"):
        scheme.tracer = tracer
    run = run_scheme(scheme, transactions)
    rows = [
        ["transactions", len(transactions)],
        ["committed", run.schedule.committed_count],
        ["aborted", run.schedule.aborted_count],
        ["latency", f"{run.total_seconds * 1000:.2f} ms"],
    ]
    rows.extend(
        [f"  aborted: {reason}", count]
        for reason, count in sorted(run.abort_reasons.items())
    )
    print(
        render_table(
            f"{args.scheme} on trace {args.file}", ["metric", "value"], rows
        )
    )
    if metrics is not None:
        metrics.counter("txns_committed_total").inc(run.schedule.committed_count)
        metrics.counter("txns_aborted_total").inc(run.schedule.aborted_count)
        for reason, count in sorted(run.abort_reasons.items()):
            metrics.counter(
                "txns_abort_reason_total", labels={"reason": reason}
            ).inc(count)
        metrics.histogram("schedule_latency_seconds").observe(run.total_seconds)
    _write_obs_outputs(args, tracer, metrics)
    return 0


COMMANDS = {
    "quickstart": cmd_quickstart,
    "schedule": cmd_schedule,
    "compare": cmd_compare,
    "simulate": cmd_simulate,
    "multinode": cmd_multinode,
    "conflicts": cmd_conflicts,
    "hotspots": cmd_hotspots,
    "analyze": cmd_analyze,
    "trace": cmd_trace,
    "top": cmd_top,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
