"""The four-phase concurrent transaction processing pipeline.

Implements the paper's workflow (Section III-B) over one epoch's
concurrent blocks:

1. **Validation** — verify each block's carried state root against the
   previous epoch's root (structural/PoW checks belong to the chain
   layer; the full node calls both).
2. **Concurrent execution** — speculatively simulate all first-appearance
   transactions on the epoch snapshot, logging read/write sets.
3. **Concurrency control** — run the configured scheme (Nezha, CG, OCC)
   over the simulated summaries to obtain a commit schedule.
4. **Commitment** — apply write values group by group and flush the new
   state root.

The Serial scheme replaces phases 2-4 with the classic execute-and-commit
loop over the deterministic block order, exactly as current DAG-based
blockchains do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.analysis.certify import EpochCertificate, certify_epoch
from repro.core.export import epoch_artifact
from repro.core.schedule import Schedule
from repro.dag.block import Block
from repro.dag.epochs import Epoch
from repro.errors import BlockValidationError, CertificationError
from repro.node.committer import CommitReport, Committer, SerialExecutorCommitter
from repro.node.executor import ConcurrentExecutor
from repro.node.phases import EpochReport, PhaseLatencies
from repro.obs.ledger import Event, FlightLedger
from repro.obs.taxonomy import DELTA_OVERFLOW, SCHEME_CONFLICT, taxonomy_counts
from repro.obs.tracer import Tracer, maybe_span
from repro.state.statedb import StateDB
from repro.txn.transaction import Transaction
from repro.vm.native import ContractRegistry


class Scheduler(Protocol):
    """Any concurrency-control scheme: Nezha, CG, OCC, or Serial."""

    name: str

    def schedule(self, transactions: Sequence[Transaction]) -> object:
        """Produce an object exposing ``.schedule`` (a Schedule)."""


@dataclass
class PipelineConfig:
    """Pipeline tunables.

    ``backend`` selects the execution-phase implementation ("auto",
    "serial", "thread", or "process" — see
    :class:`~repro.node.executor.ConcurrentExecutor`); "auto" keeps the
    historical behaviour (threads when ``workers > 1``, else serial).
    ``workers`` feeds both the executor pool and the committer's
    within-group parallel apply.  ``delta_cc`` turns on operation-level
    concurrency control: the executor promotes statically classified
    commutative writes to delta units and the committer folds them at
    commit time — effective only for schedulers advertising
    ``supports_deltas`` (Nezha); baselines keep seeing plain
    read-modify-writes.  ``flat_state`` selects the journaled flat
    account state (:class:`~repro.state.flat.FlatStateDB`) when the
    surrounding deployment builds the node's state from this config;
    ``state_cache`` bounds the trie-node LRU in front of the backing
    store (0 = uncached).  Both only take effect where the state is
    constructed (``Cluster``, ``ReplicaNetwork``, CLI) — a pipeline
    handed an explicit ``state`` object uses it as-is.  ``streaming``
    turns on the cross-epoch overlap engine
    (:class:`~repro.node.engine.StreamingEpochEngine`): epoch ``e+1``
    speculates on the executor pool while epoch ``e``'s concurrency
    control and commit run on a background stage, with results
    bit-identical to this barrier pipeline (default off).
    ``txn_cost_seconds`` charges each speculative execution a fixed
    modelled latency inside whichever backend runs it (the calibration
    hook the scaling benchmarks use).  ``certify`` runs the independent
    proof-carrying schedule certifier (:mod:`repro.analysis.certify`)
    over every committed epoch — barrier and streaming alike — attaching
    an :class:`~repro.analysis.certify.EpochCertificate` to the epoch
    report and raising :class:`~repro.errors.CertificationError` on
    rejection; the matching epoch artifact (the certifier's exact
    inputs, JSON-safe) accumulates on ``TransactionPipeline.artifacts``
    for offline re-checking via ``repro analyze certify``.
    """

    workers: int = 0
    use_vm: bool = False
    validate_blocks: bool = True
    backend: str = "auto"
    delta_cc: bool = False
    flat_state: bool = True
    state_cache: int = 0
    streaming: bool = False
    txn_cost_seconds: float = 0.0
    certify: bool = False


class TransactionPipeline:
    """Drives one node's transaction processing across epochs.

    Owns worker pools (threads and, for the process backend, persistent
    worker processes), so call :meth:`close` — or use the pipeline as a
    context manager — when done; worker processes must never outlive the
    node.
    """

    def __init__(
        self,
        state: StateDB,
        scheduler: Scheduler,
        registry: ContractRegistry | None = None,
        config: PipelineConfig | None = None,
        tracer: Tracer | None = None,
        ledger: FlightLedger | None = None,
    ) -> None:
        self.state = state
        self.scheduler = scheduler
        self.registry = registry
        self.config = config or PipelineConfig()
        self.tracer = tracer
        # Optional flight ledger: the commit path batches every epoch's
        # execute/schedule/commit/abort lifecycle events into it (the
        # streaming engine's background stage records from its thread —
        # the ledger is lock-protected).
        self.ledger = ledger
        if tracer is not None and hasattr(scheduler, "tracer"):
            # Schedulers that record sub-phase spans (Nezha) nest them
            # under this pipeline's concurrency-control span.
            scheduler.tracer = tracer  # type: ignore[attr-defined]
        if tracer is not None and getattr(state, "tracer", "absent") is None:
            # State backends that record seal/read spans (FlatStateDB)
            # nest them under this pipeline's commit span.
            state.tracer = tracer  # type: ignore[attr-defined]
        # Delta promotion changes the conflict structure the scheduler
        # sees, so it is only safe for schedulers that understand delta
        # units; everything else keeps plain read-modify-writes.
        self._delta_cc = self.config.delta_cc and bool(
            getattr(scheduler, "supports_deltas", False)
        )
        self.executor = ConcurrentExecutor(
            registry=registry,
            workers=self.config.workers,
            use_vm=self.config.use_vm,
            backend=self.config.backend,
            # Process-backend replicas bootstrap from the committed flat
            # state; steady-state sync then ships only commit deltas.
            state_provider=lambda: dict(self.state.items()),
            txn_cost_seconds=self.config.txn_cost_seconds,
            tracer=tracer,
            delta_cc=self._delta_cc,
        )
        self.committer = Committer(workers=self.config.workers, tracer=tracer)
        self._serial = SerialExecutorCommitter(
            registry=registry, use_vm=self.config.use_vm
        )
        # One JSON-safe certifier-input record per certified epoch (only
        # populated when ``config.certify`` is on).  Appended by the
        # commit path — possibly the streaming engine's background
        # thread; ``list.append`` is atomic and callers read the list
        # only after joining the epoch.
        self.artifacts: list[dict] = []

    def close(self) -> None:
        """Release every worker pool the pipeline owns (idempotent)."""
        self.executor.close()
        self.committer.close()
        self._serial.close()

    def __enter__(self) -> "TransactionPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def process_epoch(
        self, epoch: Epoch, exclude_txids: frozenset[int] | set[int] = frozenset()
    ) -> EpochReport:
        """Run the four phases over one epoch and return its report.

        ``exclude_txids`` suppresses transactions committed in earlier
        epochs (cross-epoch duplicate protection).
        """
        with maybe_span(
            self.tracer, "pipeline.epoch", epoch=epoch.index, scheme=self.scheduler.name
        ) as epoch_span:
            report = self._process_epoch_traced(epoch, exclude_txids)
            epoch_span.set(
                txns=report.input_transactions,
                committed=report.committed,
                aborted=report.aborted,
            )
        return report

    def _process_epoch_traced(
        self, epoch: Epoch, exclude_txids: frozenset[int] | set[int]
    ) -> EpochReport:
        phases = PhaseLatencies()
        previous_root = self.state.root

        start = time.perf_counter()
        with maybe_span(self.tracer, "pipeline.validate_blocks") as span:
            if self.config.validate_blocks:
                self._validate_blocks(epoch.blocks, previous_root)
            transactions = epoch.transactions(exclude=exclude_txids)
            span.set(blocks=len(epoch.blocks), txns=len(transactions))
        phases.validation = time.perf_counter() - start

        if self.scheduler.name == "serial":
            return self._process_serial(epoch, transactions, phases)

        if getattr(self.scheduler, "uses_declared_rwsets", False):
            # Locking schemes (PCC) need no speculation: they lock the
            # declared read/write sets and execute wave by wave.
            start = time.perf_counter()
            with maybe_span(self.tracer, "pipeline.concurrency_control"):
                result = self.scheduler.schedule(transactions)
            phases.concurrency_control = time.perf_counter() - start
            return self._process_reexecuted(
                epoch, transactions, None, result, result.schedule, phases
            )

        start = time.perf_counter()
        with maybe_span(self.tracer, "pipeline.simulate") as span:
            snapshot = self.state.snapshot()
            batch = self.executor.execute_batch(
                transactions, snapshot.get, snapshot_root=previous_root
            )
            simulated = batch.transactions()
            span.set(txns=len(transactions), failed=batch.failed_count)
        phases.execution = time.perf_counter() - start

        start = time.perf_counter()
        with maybe_span(self.tracer, "pipeline.concurrency_control") as span:
            result = self.scheduler.schedule(simulated)
            schedule: Schedule = result.schedule
            span.set(aborted=schedule.aborted_count)
        phases.concurrency_control = time.perf_counter() - start

        if getattr(result, "requires_reexecution", False):
            return self._process_reexecuted(
                epoch, transactions, batch, result, schedule, phases
            )

        return self._commit_and_report(
            epoch, transactions, batch, result, schedule, phases
        )[0]

    def _commit_and_report(
        self,
        epoch: Epoch,
        transactions: list[Transaction],
        batch,
        result,
        schedule: Schedule,
        phases: PhaseLatencies,
        sync_replicas: bool = True,
    ) -> "tuple[EpochReport, CommitReport | None]":
        """Commit a scheduled batch and assemble its epoch report.

        Shared between the barrier pipeline and the streaming engine's
        background commit stage.  ``sync_replicas=False`` skips the
        process-backend replica delta sync — the engine runs this method
        off the main thread and must apply the delta itself at join
        time, because all executor pipe traffic stays on the main thread
        (the same thread that runs speculation).  The returned
        :class:`~repro.node.committer.CommitReport` carries the write
        delta for exactly that deferred sync (``None`` on scheduler
        failure).
        """
        start = time.perf_counter()
        failed = bool(getattr(result, "failed", False))
        guard_aborted: tuple[int, ...] = ()
        delta_commuted = 0
        commit_report: CommitReport | None = None
        with maybe_span(self.tracer, "pipeline.commit") as span:
            if failed:
                commit_root = self.state.root
                group_count = 0
                committed = 0
            else:
                commit_report = self.committer.commit(
                    schedule,
                    batch.write_values(),
                    self.state,
                    delta_values=batch.delta_values() if self._delta_cc else None,
                )
                commit_root = commit_report.state_root
                group_count = commit_report.group_count
                committed = commit_report.committed_count
                guard_aborted = commit_report.guard_aborted
                delta_commuted = commit_report.delta_commuted
                if sync_replicas and commit_report.write_delta:
                    # Keep the process backend's worker replicas in lockstep
                    # with the committed state before the next epoch executes.
                    self.executor.apply_delta(commit_report.write_delta)
            span.set(committed=committed, groups=group_count)
        phases.commitment = time.perf_counter() - start

        abort_reasons = self._taxonomy(schedule, result)
        if guard_aborted:
            # Guard aborts happen after scheduling, so they are absent
            # from the schedule's aborted set; fold them in to keep the
            # taxonomy conservation invariant (counts sum to ``aborted``).
            abort_reasons[DELTA_OVERFLOW] = (
                abort_reasons.get(DELTA_OVERFLOW, 0) + len(guard_aborted)
            )
        abort_edges = self._merge_abort_edges(result, schedule, commit_report)
        if self.ledger is not None:
            self._record_lifecycle(
                epoch, batch, result, schedule, failed, abort_edges, commit_report
            )
        certificate: EpochCertificate | None = None
        if self.config.certify and not failed and batch is not None:
            certificate = self._certify_epoch(
                epoch,
                batch,
                result,
                schedule,
                guard_aborted,
                abort_reasons,
                abort_edges,
            )
        timings = getattr(result, "timings", None)
        scheme_phases = timings.as_dict() if timings is not None else {}
        report = EpochReport(
            epoch_index=epoch.index,
            scheme=self.scheduler.name,
            block_concurrency=epoch.concurrency,
            input_transactions=len(transactions),
            committed=committed,
            aborted=schedule.aborted_count + len(guard_aborted),
            failed_simulation=batch.failed_count,
            state_root=commit_root,
            phases=phases,
            scheme_phases=scheme_phases,
            commit_group_count=group_count,
            scheduler_failed=failed,
            abort_reasons=abort_reasons,
            revived=int(getattr(result, "revived", 0)),
            delta_commuted=delta_commuted,
            certificate=certificate,
            abort_edges=abort_edges,
        )
        if certificate is not None and not certificate.ok:
            raise CertificationError(certificate.summary())
        return report, commit_report

    @staticmethod
    def _merge_abort_edges(
        result, schedule: Schedule, commit_report: CommitReport | None
    ) -> dict[int, list[tuple[int, str, str]]]:
        """Fold CC and commit-time attribution into one txid -> edges map.

        Concurrency-control edges come from the scheduler (sorter and
        validator convictions); the committer contributes the
        delta-overflow guard's edges.  A txid never appears in both —
        guard aborts are by definition transactions CC admitted.
        """
        cc_edges = getattr(result, "abort_edges", None) or {}
        merged = {
            txid: list(cc_edges[txid])
            for txid in schedule.aborted
            if txid in cc_edges
        }
        if commit_report is not None:
            for txid, edge in commit_report.guard_edges.items():
                merged.setdefault(txid, []).append(edge)
        return merged

    def _record_lifecycle(
        self,
        epoch: Epoch,
        batch,
        result,
        schedule: Schedule,
        failed: bool,
        abort_edges: dict[int, list[tuple[int, str, str]]],
        commit_report: CommitReport | None,
    ) -> None:
        """Batch one epoch's lifecycle events into the flight ledger.

        Event content is derived only from the batch, schedule, and
        attribution maps — all bit-identical between the barrier pipeline
        and the streaming engine — so the ledger's stable-kind digest
        matches across both modes.
        """
        events: list[Event] = []
        index = epoch.index
        if batch is not None:
            events.extend(
                {"epoch": index, "txid": r.txid, "kind": "execute", "ok": r.ok}
                for r in batch.results
            )
        if failed:
            # The scheme failed wholesale (OCC validation abort): there
            # is no schedule to narrate, only the executions.
            self.ledger.record_many(events)
            return
        reordered = set(schedule.reordered)
        revived = set(getattr(result, "revived_txids", ()))
        for group in schedule.iter_groups():
            for txid in group.txids:
                events.append(
                    {
                        "epoch": index,
                        "txid": txid,
                        "kind": "schedule",
                        "seq": group.sequence,
                        "reordered": txid in reordered,
                        "revived": txid in revived,
                    }
                )
        guard_aborted = (
            set(commit_report.guard_aborted) if commit_report is not None else set()
        )
        for group in schedule.iter_groups():
            for txid in group.txids:
                if txid not in guard_aborted:
                    events.append(
                        {
                            "epoch": index,
                            "txid": txid,
                            "kind": "commit",
                            "group": group.sequence,
                        }
                    )
        reasons = getattr(result, "abort_reasons", None) or {}
        for txid in schedule.aborted:
            events.append(
                {
                    "epoch": index,
                    "txid": txid,
                    "kind": "abort",
                    "reason": reasons.get(txid, SCHEME_CONFLICT),
                    "edges": abort_edges.get(txid, []),
                }
            )
        for txid in sorted(guard_aborted):
            events.append(
                {
                    "epoch": index,
                    "txid": txid,
                    "kind": "abort",
                    "reason": DELTA_OVERFLOW,
                    "edges": abort_edges.get(txid, []),
                }
            )
        self.ledger.record_many(events)

    def _certify_epoch(
        self,
        epoch: Epoch,
        batch,
        result,
        schedule: Schedule,
        guard_aborted: tuple[int, ...],
        abort_reasons: dict[str, int],
        abort_edges: dict[int, list[tuple[int, str, str]]] | None = None,
    ) -> EpochCertificate:
        """Run the independent certifier over one committed epoch.

        Retains the certifier's exact inputs on :attr:`artifacts` so the
        run can be re-audited offline (``repro analyze certify``).
        """
        rwsets = {r.txid: r.rwset for r in batch.results if r.ok}
        failed_ids = sorted(r.txid for r in batch.results if not r.ok)
        reasons = getattr(result, "abort_reasons", None)
        self.artifacts.append(
            epoch_artifact(
                epoch_index=epoch.index,
                scheme=self.scheduler.name,
                rwsets=rwsets,
                schedule=schedule,
                abort_reasons=reasons,
                guard_aborted=guard_aborted,
                failed=failed_ids,
                reason_counts=abort_reasons,
                abort_edges=abort_edges,
            )
        )
        with maybe_span(self.tracer, "pipeline.certify", epoch=epoch.index) as span:
            certificate = certify_epoch(
                rwsets,
                schedule,
                abort_reasons=reasons,
                guard_aborted=guard_aborted,
                failed=failed_ids,
                reason_counts=abort_reasons,
                epoch_index=epoch.index,
                scheme=self.scheduler.name,
            )
            span.set(ok=certificate.ok, edges=certificate.conflict_edges)
        return certificate

    @staticmethod
    def _taxonomy(schedule: Schedule, result: object) -> dict[str, int]:
        """Classify the final aborted set via the scheduler's reason map.

        Schemes that do not attribute aborts (CG, OCC) fall through to the
        catch-all ``scheme_conflict`` bucket, so the counts always sum to
        ``schedule.aborted_count`` regardless of scheme.
        """
        reasons = getattr(result, "abort_reasons", None)
        return taxonomy_counts(schedule.aborted, reasons)

    def _process_reexecuted(
        self,
        epoch: Epoch,
        transactions: list[Transaction],
        batch,
        result,
        schedule: Schedule,
        phases: PhaseLatencies,
    ) -> EpochReport:
        """Commit path for locking schemes (PCC): re-execute wave by wave.

        Each commit group executes against the state left by the previous
        groups (the dirty StateDB view), exactly as lock-holders would
        observe each other's writes; the snapshot-speculated values from
        the execution phase are discarded.
        """
        by_id = {t.txid: t for t in transactions}
        start = time.perf_counter()
        committed = 0
        committed_ids: list[tuple[int, int]] = []
        with maybe_span(self.tracer, "pipeline.commit") as span:
            for group in schedule.iter_groups():
                for txid in group.txids:
                    txn = by_id[txid]
                    if txn.contract is None or self.registry is None:
                        for address, value in txn.rwset.writes.items():
                            self.state.set(
                                address, int(value) if value is not None else 0
                            )
                        # Declared deltas fold against the live wave state;
                        # under lock-based waves that is exactly the
                        # read-modify-write the delta abbreviates.
                        for address, amount in txn.rwset.deltas.items():
                            self.state.set(
                                address, self.state.get(address) + amount
                            )
                        committed += 1
                        committed_ids.append((txid, group.sequence))
                        continue
                    sim = self.executor.execute_one(txn, self.state.get)
                    if sim.ok:
                        for address, value in sim.rwset.writes.items():
                            self.state.set(address, int(value))
                        committed += 1
                        committed_ids.append((txid, group.sequence))
            commit_root = self.state.commit()
            # No write-delta exists for wave-by-wave commits, so the process
            # backend must resync its replicas from state before executing.
            self.executor.mark_stale()
            span.set(committed=committed, groups=len(schedule.groups))
        phases.commitment = time.perf_counter() - start
        if self.ledger is not None:
            # Locking schemes attribute nothing — schedule/commit/abort
            # events only, with the catch-all abort reason.
            reasons = getattr(result, "abort_reasons", None) or {}
            events: list[Event] = [
                {
                    "epoch": epoch.index,
                    "txid": txid,
                    "kind": "schedule",
                    "seq": sequence,
                    "reordered": False,
                    "revived": False,
                }
                for txid, sequence in committed_ids
            ]
            events.extend(
                {
                    "epoch": epoch.index,
                    "txid": txid,
                    "kind": "commit",
                    "group": sequence,
                }
                for txid, sequence in committed_ids
            )
            events.extend(
                {
                    "epoch": epoch.index,
                    "txid": txid,
                    "kind": "abort",
                    "reason": reasons.get(txid, SCHEME_CONFLICT),
                    "edges": [],
                }
                for txid in schedule.aborted
            )
            self.ledger.record_many(events)
        timings = getattr(result, "timings", None)
        scheme_phases = timings.as_dict() if timings is not None else {}
        if not scheme_phases and hasattr(result, "as_dict"):
            scheme_phases = result.as_dict()
        return EpochReport(
            epoch_index=epoch.index,
            scheme=self.scheduler.name,
            block_concurrency=epoch.concurrency,
            input_transactions=len(transactions),
            committed=committed,
            aborted=schedule.aborted_count,
            failed_simulation=len(transactions) - committed - schedule.aborted_count,
            state_root=commit_root,
            phases=phases,
            scheme_phases=scheme_phases,
            commit_group_count=len(schedule.groups),
            abort_reasons=self._taxonomy(schedule, result),
            revived=int(getattr(result, "revived", 0)),
        )

    def _process_serial(
        self,
        epoch: Epoch,
        transactions: list[Transaction],
        phases: PhaseLatencies,
    ) -> EpochReport:
        start = time.perf_counter()
        report = self._serial.run(transactions, self.state)
        phases.commitment = time.perf_counter() - start
        return EpochReport(
            epoch_index=epoch.index,
            scheme="serial",
            block_concurrency=epoch.concurrency,
            input_transactions=len(transactions),
            committed=report.committed_count,
            aborted=0,
            failed_simulation=len(transactions) - report.committed_count,
            state_root=report.state_root,
            phases=phases,
            commit_group_count=report.group_count,
        )

    @staticmethod
    def _validate_blocks(blocks: Sequence[Block], expected_root: bytes) -> None:
        """The paper's validation phase: state roots must match epoch e-1."""
        for block in blocks:
            if block.header.state_root != expected_root:
                raise BlockValidationError(
                    f"block {block.hash.hex()[:12]} carries stale state root"
                )
