"""Full-node transaction processing: the paper's four-phase pipeline."""

from repro.node.committer import CommitReport, Committer, SerialExecutorCommitter
from repro.node.engine import EngineStats, StreamingEpochEngine
from repro.node.executor import BACKENDS, ConcurrentExecutor, caller_id
from repro.node.ingest import BlockIngest, IngestStats
from repro.node.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_epoch,
)
from repro.node.node import FullNode
from repro.node.phases import EpochReport, PhaseLatencies
from repro.node.pipeline import PipelineConfig, TransactionPipeline

__all__ = [
    "BACKENDS",
    "BlockIngest",
    "CommitReport",
    "Committer",
    "ConcurrentExecutor",
    "Counter",
    "EngineStats",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EpochReport",
    "FullNode",
    "IngestStats",
    "PhaseLatencies",
    "PipelineConfig",
    "SerialExecutorCommitter",
    "StreamingEpochEngine",
    "TransactionPipeline",
    "caller_id",
    "record_epoch",
]
