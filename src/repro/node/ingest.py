"""Out-of-order block ingestion.

Real networks deliver blocks one at a time, unordered, sometimes
duplicated.  :class:`BlockIngest` sits in front of a
:class:`~repro.node.node.FullNode` and restores the epoch-synchronous
world the pipeline expects:

* blocks are buffered by height;
* an epoch is handed to the node once every chain has contributed its
  height-``h`` block *and* all earlier epochs are processed (blocks carry
  the previous epoch's state root, so epochs cannot be validated out of
  order);
* duplicates and stale blocks are dropped;
* a partial epoch can be forced through (``flush``) when the network has
  decided some chain will not deliver — the paper's "discard invalid
  block" path generalised to missing blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dag.block import Block
from repro.errors import BlockValidationError
from repro.node.node import FullNode
from repro.node.phases import EpochReport


@dataclass
class IngestStats:
    """Counters for everything the ingest layer saw."""

    accepted: int = 0
    duplicates: int = 0
    stale: int = 0
    epochs_processed: int = 0
    partial_epochs: int = 0


@dataclass
class BlockIngest:
    """Buffers unordered block arrivals into processable epochs."""

    node: FullNode
    pending: dict[int, dict[int, Block]] = field(default_factory=dict)
    stats: IngestStats = field(default_factory=IngestStats)

    @property
    def next_height(self) -> int:
        """The epoch the node is waiting to process."""
        return self.node._next_epoch

    def receive_block(self, block: Block) -> list[EpochReport]:
        """Accept one block; returns reports for any epochs now complete.

        A block below the node's next epoch is stale (already processed);
        a block at or above it is buffered until its epoch completes.
        Completing an epoch can cascade: buffered later epochs drain too.
        """
        height = block.height
        if height < self.next_height:
            self.stats.stale += 1
            return []
        slot = self.pending.setdefault(height, {})
        if block.chain_id in slot:
            self.stats.duplicates += 1
            return []
        slot[block.chain_id] = block
        self.stats.accepted += 1
        return self._drain()

    def receive_blocks(self, blocks: list[Block]) -> list[EpochReport]:
        """Accept a batch in any order."""
        reports: list[EpochReport] = []
        for block in blocks:
            reports.extend(self.receive_block(block))
        return reports

    def flush(self) -> EpochReport | None:
        """Force the next epoch through with whatever blocks arrived.

        Used when the network gives up on a missing block.  Returns the
        report, or ``None`` when nothing at all is buffered for the next
        epoch.  Flushing can unblock buffered later epochs, which are
        drained by the next ``receive_block`` call (or another flush).
        """
        height = self.next_height
        slot = self.pending.pop(height, None)
        if not slot:
            return None
        blocks = [slot[chain_id] for chain_id in sorted(slot)]
        report = self.node.receive_epoch(blocks)
        self.stats.epochs_processed += 1
        if len(blocks) < self.node.chains.chain_count:
            self.stats.partial_epochs += 1
        return report

    def _drain(self) -> list[EpochReport]:
        """Process every consecutively-complete epoch from the front."""
        reports: list[EpochReport] = []
        chain_count = self.node.chains.chain_count
        while True:
            height = self.next_height
            slot = self.pending.get(height)
            if slot is None or len(slot) < chain_count:
                break
            del self.pending[height]
            blocks = [slot[chain_id] for chain_id in sorted(slot)]
            try:
                report = self.node.receive_epoch(blocks)
            except BlockValidationError:
                # The whole epoch was discarded; drop it and stop draining
                # (later epochs carry roots we will never reach).
                raise
            reports.append(report)
            self.stats.epochs_processed += 1
        return reports

    @property
    def buffered_blocks(self) -> int:
        """Blocks waiting for their epoch to complete."""
        return sum(len(slot) for slot in self.pending.values())
