"""Streaming epoch engine: overlap execution with CC + commit across epochs.

The barrier pipeline runs validate → simulate → CC → commit as a strict
sequence, so the flight recorder shows every phase idling while its
neighbour runs.  This engine splits one epoch across two stages
connected by a single-slot queue:

* **front stage (main thread)** — speculative execution of the *next*
  epoch's blocks on the executor pool, feeding an
  :class:`~repro.core.incremental.IncrementalACG` per block;
* **back stage (background thread)** — seal the incremental graph, run
  Nezha concurrency control, and commit the *current* epoch.

Steady state: while epoch ``e`` runs CC + commit in the background,
epoch ``e+1`` speculates on the executor — per-epoch wall time
approaches ``max(execution, cc+commit)`` instead of their sum.

**Reconciliation rule.**  Speculation of ``e+1`` reads state that epoch
``e`` is still committing (the flat state's race-tolerant
:meth:`~repro.state.flat.FlatStateDB.peek`, or the process backend's
replicas still at epoch ``e-1``'s values).  At join, every speculated
transaction whose recorded read set intersects ``e``'s committed write
delta is re-executed against the sealed post-``e`` snapshot — exactly
the read the barrier pipeline would have performed — and swapped into
the incremental graph.  Transactions whose reads are disjoint from the
delta observed values the commit could not have changed, so their
speculated results are bit-identical to a barrier execution.  Delta
units and blind writes carry no state-dependence, so they never force a
re-execution.  The merged batch therefore equals the barrier batch
transaction for transaction, which makes the whole epoch — roots, abort
sets, taxonomy — bit-identical (DESIGN.md invariant 11, swept by
``tests/node/test_streaming.py``).

**Backpressure.**  The stage queue holds exactly one in-flight epoch:
``submit`` joins the previous epoch before admitting the next, so a
flood of epochs degrades to barrier pacing — bounded memory, no dropped
epochs — instead of queueing unboundedly.

**Fallback.**  Anything that invalidates the optimistic guess — a block
discarded at admission, a duplicate txid, an executor failure — falls
back to the synchronous barrier pipeline for that epoch, which is
bit-identical by construction.

Threading contract: *all* executor traffic (speculation, replica delta
sync, reconciliation re-execution) stays on the main thread; the
background stage only runs pure CC and the committer (which mutates
state — the main thread reads it only through ``peek`` while a commit
is in flight).  Worker-replica sync for a background-committed epoch is
deferred to join time on the main thread.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.analysis import race
from repro.core.incremental import IncrementalACG
from repro.dag.block import Block
from repro.dag.epochs import Epoch, extract_epoch
from repro.errors import BlockValidationError
from repro.node.committer import CommitReport
from repro.node.phases import EpochReport, PhaseLatencies
from repro.obs.tracer import maybe_span
from repro.state.flat import FlatStateDB
from repro.txn.rwset import Address
from repro.txn.simulation import SimulationBatch, SimulationResult
from repro.txn.transaction import Transaction

if TYPE_CHECKING:
    from repro.node.node import FullNode


@dataclass
class EngineStats:
    """Speculation accounting across the engine's lifetime."""

    epochs_streamed: int = 0
    epochs_fallback: int = 0
    speculated: int = 0
    kept: int = 0
    reexecuted: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of speculated executions kept at reconciliation."""
        return self.kept / self.speculated if self.speculated else 0.0


@dataclass
class _Speculation:
    """One epoch's optimistic execution, pending admission."""

    guess: Epoch
    transactions: list[Transaction]
    results: list[SimulationResult]
    acg: IncrementalACG
    seconds: float

    def matches(self, epoch: Epoch) -> bool:
        """True when the admitted epoch is exactly the speculated one."""
        return [b.hash for b in self.guess.blocks] == [
            b.hash for b in epoch.blocks
        ]


@dataclass
class _Inflight:
    """The single back-stage slot: one epoch in CC + commit."""

    epoch: Epoch
    txids: frozenset[int]
    future: "Future[tuple[EpochReport, CommitReport | None]] | None"
    # Fallback epochs complete synchronously; their report parks here
    # until the next submit (or drain) hands it to the caller.
    report: EpochReport | None = None


class StreamingEpochEngine:
    """Drives a :class:`~repro.node.node.FullNode` in streaming mode.

    ``submit(blocks)`` returns the *previous* epoch's report (``None``
    when the queue was empty); ``drain()`` joins whatever is still in
    flight.  ``FullNode.receive_epoch`` composes the two so its
    per-epoch contract is unchanged; feeding ``submit`` back-to-back
    (block replay, node catch-up) is what realises the overlap.
    """

    def __init__(self, node: "FullNode") -> None:
        self.node = node
        self.pipeline = node.pipeline
        self.tracer = node.tracer
        self.stats = EngineStats()
        self._inflight: _Inflight | None = None
        # Post-join write delta of the most recently committed epoch;
        # the reconciliation set for the speculation that overlapped it.
        self._last_delta: Mapping[Address, int] | None = None
        # Trie-backed states cannot be read while a background commit
        # mutates them, so speculation reads this frozen copy instead
        # (captured at launch time, when the state is quiescent).
        self._spec_base: dict[Address, int] | None = None
        self._stage = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._closed = False

    # ------------------------------------------------------------ public api

    def submit(self, blocks: Sequence[Block]) -> EpochReport | None:
        """Feed one epoch's blocks; returns the previous epoch's report.

        Speculates the new epoch first (overlapping the in-flight
        epoch's CC + commit), then joins, admits, reconciles, and hands
        the new epoch to the background stage.  Raises
        :class:`~repro.errors.BlockValidationError` — after finalising
        the in-flight epoch — when every offered block is discarded,
        matching the barrier node's contract.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        spec = self._speculate(blocks)
        previous = self._join()
        admit_start = time.perf_counter()
        epoch = self._admit(blocks)
        admit_seconds = time.perf_counter() - admit_start
        if spec is not None and spec.matches(epoch):
            self.node._register_epoch(epoch)
            batch, acg, spec_seconds = self._reconcile(spec)
            phases = PhaseLatencies(
                validation=admit_seconds, execution=spec_seconds
            )
            self._launch(epoch, spec.transactions, batch, acg, phases)
            self.stats.epochs_streamed += 1
        else:
            # The admitted epoch is not the one speculated (a discarded
            # block, a failed speculation): barrier-process it now, on
            # this thread, and park the finished report in the slot.
            self.stats.epochs_fallback += 1
            self._last_delta = None
            report = self.node.process_epoch(epoch)
            if self.node.blockstore is not None:
                self.node.blockstore.set_state_root(report.state_root)
            self._inflight = _Inflight(
                epoch=epoch,
                txids=frozenset(self._epoch_txids(epoch)),
                future=None,
                report=report,
            )
        self._export_metrics()
        return previous

    def drain(self) -> list[EpochReport]:
        """Join the in-flight epoch, if any, and return its report."""
        report = self._join()
        # The queue is now empty: the next speculation reads fully
        # committed, quiescent state, so no reconciliation set applies.
        self._last_delta = None
        return [report] if report is not None else []

    def close(self) -> None:
        """Finish in-flight work and stop the background stage."""
        if self._closed:
            return
        try:
            self._join()
        finally:
            self._closed = True
            self._stage.shutdown(wait=True)

    # ------------------------------------------------------- front stage

    def _speculate(self, blocks: Sequence[Block]) -> _Speculation | None:
        """Optimistically execute the offered blocks; ``None`` on failure.

        Runs while the previous epoch's CC + commit occupy the
        background stage — this is the engine's entire overlap win.  The
        guess assumes every block is admitted; any divergence is caught
        by the hash comparison at admission and falls back to the
        barrier path.
        """
        index = self.node._next_epoch
        ordered = sorted(blocks, key=lambda b: b.chain_id)
        guess = Epoch(index=index, blocks=tuple(ordered))
        exclude = set(self.node._seen_txids)
        if self._inflight is not None:
            exclude |= self._inflight.txids
        read_fn = self._spec_read_fn()
        executor = self.pipeline.executor
        acg = IncrementalACG()
        transactions: list[Transaction] = []
        results: list[SimulationResult] = []
        start = time.perf_counter()
        try:
            with maybe_span(
                self.tracer, "engine.speculate", epoch=index
            ) as span:
                groups: list[list[Transaction]] = []
                for block in ordered:
                    group = []
                    for txn in block.transactions:
                        if txn.txid in exclude:
                            continue
                        exclude.add(txn.txid)
                        group.append(txn)
                    if group:
                        groups.append(group)
                        transactions.extend(group)
                if transactions:
                    # One pool dispatch for the whole epoch — per-block
                    # dispatches would multiply chunk boundaries (and,
                    # with a modelled execution charge, sleep wake-ups
                    # contending for the GIL against the background
                    # stage).  Execution is per-transaction pure, so
                    # results regroup into blocks losslessly.
                    batch = executor.execute_batch(
                        transactions,
                        read_fn,
                        snapshot_root=self.node.state.root,
                    )
                    results = list(batch.results)
                    by_txid = {r.txid: r for r in results}
                    for group in groups:
                        acg.add_block(
                            by_txid[txn.txid].as_transaction()
                            for txn in group
                            if by_txid[txn.txid].ok
                        )
                span.set(
                    blocks=len(ordered),
                    txns=len(transactions),
                    failed=sum(1 for r in results if not r.ok),
                )
        except Exception:
            return None
        self.stats.speculated += len(results)
        ledger = self.pipeline.ledger
        if ledger is not None and results:
            # Streaming-only events: excluded from the stable-kind digest,
            # so barrier and streaming timelines still hash identically.
            ledger.record_many(
                {
                    "epoch": index,
                    "txid": r.txid,
                    "kind": "speculate",
                    "ok": r.ok,
                }
                for r in results
            )
        return _Speculation(
            guess=guess,
            transactions=transactions,
            results=results,
            acg=acg,
            seconds=time.perf_counter() - start,
        )

    def _spec_read_fn(self) -> Callable[[Address], int]:
        """Snapshot-tolerant read path for speculative execution.

        Flat states expose a race-tolerant ``peek`` (the process backend
        ignores the read function entirely and serves reads from its
        replicas); trie-backed states get the frozen copy captured when
        the in-flight epoch launched.  With nothing in flight the live
        state is quiescent and committed, so reading it directly is
        exact.
        """
        state = self.node.state
        if isinstance(state, FlatStateDB):
            return state.peek
        if self._inflight is not None and self._inflight.future is not None:
            base = self._spec_base or {}
            return lambda address: base.get(address, 0)
        return state.get

    def _reconcile(
        self, spec: _Speculation
    ) -> tuple[SimulationBatch, IncrementalACG, float]:
        """Keep delta-disjoint speculations; re-execute the touched rest.

        Called after the previous epoch fully committed (so the state —
        and the process backend's replicas, delta-synced at join — serve
        exactly the snapshot the barrier pipeline would execute
        against).  Returns the merged batch, bit-identical to a barrier
        ``execute_batch`` over the same transactions.
        """
        delta = self._last_delta or {}
        executor = self.pipeline.executor
        state = self.node.state
        start = time.perf_counter()
        with maybe_span(
            self.tracer, "engine.reconcile", epoch=spec.guess.index
        ) as span:
            kept: list[SimulationResult] = []
            touched: list[Transaction] = []
            if delta:
                for result in spec.results:
                    if any(a in delta for a in result.rwset.reads):
                        touched.append(result.transaction)
                    else:
                        kept.append(result)
            else:
                kept = list(spec.results)
            merged = kept
            if touched:
                snapshot = state.snapshot()
                rebatch = executor.execute_batch(
                    touched, snapshot.get, snapshot_root=state.root
                )
                for result in rebatch.results:
                    spec.acg.replace(
                        result.txid,
                        result.as_transaction() if result.ok else None,
                    )
                merged = kept + list(rebatch.results)
            span.set(kept=len(kept), reexecuted=len(touched))
        self.stats.kept += len(kept)
        self.stats.reexecuted += len(touched)
        ledger = self.pipeline.ledger
        if ledger is not None and (kept or touched):
            index = spec.guess.index
            events = [
                {
                    "epoch": index,
                    "txid": result.txid,
                    "kind": "reconcile",
                    "outcome": "kept",
                }
                for result in kept
            ]
            events.extend(
                {
                    "epoch": index,
                    "txid": txn.txid,
                    "kind": "reconcile",
                    "outcome": "reexecuted",
                }
                for txn in touched
            )
            ledger.record_many(events)
        batch = SimulationBatch(
            results=tuple(sorted(merged, key=lambda r: r.txid)),
            snapshot_root=state.root,
        )
        return batch, spec.acg, spec.seconds + time.perf_counter() - start

    # -------------------------------------------------------- admission

    def _admit(self, blocks: Sequence[Block]) -> Epoch:
        """The barrier node's accept loop, verbatim semantics.

        Root-checks each block against the now-final previous root,
        appends survivors to the chains, and seals the epoch.  Raising
        here (every block discarded / empty epoch) matches
        ``FullNode.receive_epoch`` exactly.
        """
        node = self.node
        with maybe_span(
            self.tracer, "node.block_arrival", epoch=node._next_epoch
        ) as span:
            accepted = 0
            for block in blocks:
                if block.header.state_root != node.state.root:
                    continue  # Discard: stale or wrong state root.
                try:
                    node.chains.append(block)
                except BlockValidationError:
                    continue  # Discard: structural failure.
                if node.blockstore is not None:
                    node.blockstore.put_block(block)
                accepted += 1
            span.set(offered=len(blocks), accepted=accepted)
            if accepted == 0:
                raise BlockValidationError(
                    "every block of the epoch was discarded"
                )
        with maybe_span(self.tracer, "node.epoch_seal", epoch=node._next_epoch):
            epoch = extract_epoch(node.chains, node._next_epoch)
        if epoch is None:
            raise BlockValidationError(f"epoch {node._next_epoch} is empty")
        node._next_epoch += 1
        return epoch

    @staticmethod
    def _epoch_txids(epoch: Epoch) -> set[int]:
        return {
            txn.txid for block in epoch.blocks for txn in block.transactions
        }

    def _export_metrics(self) -> None:
        """Publish speculation accounting into the node's registry."""
        metrics = self.node.metrics
        if metrics is None:
            return
        metrics.gauge("engine_speculation_hit_rate").set(self.stats.hit_rate)
        metrics.gauge("engine_speculated_total").set(float(self.stats.speculated))
        metrics.gauge("engine_kept_total").set(float(self.stats.kept))
        metrics.gauge("engine_reexecuted_total").set(
            float(self.stats.reexecuted)
        )
        metrics.gauge("engine_epochs_streamed").set(
            float(self.stats.epochs_streamed)
        )
        metrics.gauge("engine_epochs_fallback").set(
            float(self.stats.epochs_fallback)
        )

    # --------------------------------------------------------- back stage

    def _launch(
        self,
        epoch: Epoch,
        transactions: list[Transaction],
        batch: SimulationBatch,
        acg: IncrementalACG,
        phases: PhaseLatencies,
    ) -> None:
        """Hand a reconciled epoch to the background CC + commit stage."""
        if not isinstance(self.node.state, FlatStateDB):
            # Freeze the pre-commit values for the *next* speculation:
            # the live trie cannot be read while the background commit
            # rewrites it.
            self._spec_base = dict(self.node.state.items())
        # Fork edge: everything the main thread wrote before the submit
        # happens-before the back stage's first access.
        race.hb_release(("engine-stage", id(self)))
        future = self._stage.submit(
            self._run_back_stage, epoch, transactions, batch, acg, phases
        )
        self._inflight = _Inflight(
            epoch=epoch,
            txids=frozenset(self._epoch_txids(epoch)),
            future=future,
        )

    def _run_back_stage(
        self,
        epoch: Epoch,
        transactions: list[Transaction],
        batch: SimulationBatch,
        acg: IncrementalACG,
        phases: PhaseLatencies,
    ) -> tuple[EpochReport, CommitReport | None]:
        """Background thread: seal the graph, schedule, commit, report.

        Touches no executor pipes (replica sync is deferred to the join
        on the main thread) — its only shared mutation is the state
        commit, which the front stage reads through ``peek`` only.
        """
        race.hb_acquire(("engine-stage", id(self)))
        start = time.perf_counter()
        with maybe_span(
            self.tracer, "pipeline.concurrency_control", epoch=epoch.index
        ) as span:
            dense = acg.seal()
            result = self.node.scheduler.schedule_dense(
                dense, acg.build_seconds
            )
            span.set(aborted=result.schedule.aborted_count)
        phases.concurrency_control = time.perf_counter() - start
        outcome = self.pipeline._commit_and_report(
            epoch,
            transactions,
            batch,
            result,
            result.schedule,
            phases,
            sync_replicas=False,
        )
        # Join edge: pairs with the ``hb_acquire`` after
        # ``future.result()`` in :meth:`_join`.
        race.hb_release(("engine-join", id(self)))
        return outcome

    def _join(self) -> EpochReport | None:
        """Wait out the in-flight epoch; sync replicas; finish its report."""
        inflight, self._inflight = self._inflight, None
        if inflight is None:
            return None
        if inflight.future is None:
            # Fallback epoch: already processed and registered.
            return inflight.report
        with maybe_span(
            self.tracer, "engine.queue_wait", epoch=inflight.epoch.index
        ):
            report, commit_report = inflight.future.result()
        race.hb_acquire(("engine-join", id(self)))
        self._last_delta = (
            commit_report.write_delta if commit_report is not None else None
        )
        if self._last_delta:
            # Deferred replica sync: all executor traffic stays on the
            # main thread.
            self.pipeline.executor.apply_delta(self._last_delta)
        self.node._finish_report(report)
        return report
