"""The commitment phase.

Applies the write values of committed transactions to the in-memory
state in schedule order — commit groups in ascending sequence, where
transactions inside one group are pairwise conflict-free and may be
applied in any interleaving (we apply them in txid order, which equals
any concurrent interleaving precisely because they never touch the same
written address).  The updated state is then folded into the MPT and
flushed to the backing store, yielding the epoch's new state root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.schedule import Schedule
from repro.errors import ExecutionError
from repro.node.executor import ConcurrentExecutor
from repro.obs.taxonomy import EDGE_DELTA_GUARD, UNKNOWN_PEER
from repro.obs.tracer import Tracer, maybe_span
from repro.state.statedb import StateDB
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction
from repro.vm.native import ContractRegistry
from repro.vm.opcodes import WORD_MASK


@dataclass(frozen=True)
class CommitReport:
    """What the commitment phase produced.

    ``write_delta`` is the epoch's net effect on flat state — every
    address written, with its final committed value (last writer in
    group order wins).  The pipeline ships exactly this delta to the
    process execution backend's worker replicas, so replica sync cost
    tracks the epoch's write set rather than the world state.  Paths
    that commit without a schedule (serial execute-and-commit) leave it
    ``None``.

    ``guard_aborted`` lists scheduled transactions the commit-time
    over/underflow guard rejected: folding their commutative deltas
    would have pushed some address outside ``[0, 2**64)``.  The check is
    a pure function of the schedule and the pre-epoch state, so every
    correct replica rejects the same set.  ``guard_edges`` attributes
    each of those aborts: txid -> ``(peer txid, address, "delta_guard")``
    where *address* is the first overflowing address in fold order and
    *peer* the last transaction whose write or delta moved its running
    value (``-1`` when the pre-epoch value alone overflowed).
    ``delta_commuted`` counts the delta units that actually committed on
    addresses carrying at least two of them — each was a write-write
    conflict saved by operation-level CC.
    """

    state_root: bytes
    committed_count: int
    group_count: int
    write_delta: "Mapping[Address, int] | None" = None
    guard_aborted: tuple[int, ...] = ()
    delta_commuted: int = 0
    guard_edges: "Mapping[int, tuple[int, Address, str]]" = field(
        default_factory=dict
    )


class _DeltaPlan:
    """Serial fold plan for one epoch's commutative deltas.

    Built once per commit: walks the schedule in group order keeping a
    running value for every delta-carrying address (plain writes replace
    it, deltas add to it) and guard-aborts any transaction whose fold
    would leave an address outside ``[0, 2**64)``.  The group-apply loop
    then skips planned addresses entirely — their final values install
    in one pass at the end, which is exactly what the serial walk
    computed, whatever interleaving the parallel group apply uses for
    the rest.  Without deltas the plan is a transparent passthrough.
    """

    def __init__(
        self, write_values: Mapping[int, Mapping[Address, Any]]
    ) -> None:
        self._write_values = write_values
        self._addresses: frozenset[Address] = frozenset()
        self._aborted: frozenset[int] = frozenset()
        self.finals: dict[Address, int] = {}
        self.guard_aborted: tuple[int, ...] = ()
        self.guard_edges: dict[int, tuple[int, Address, str]] = {}
        self.delta_commuted = 0

    @classmethod
    def build(
        cls,
        schedule: Schedule,
        write_values: Mapping[int, Mapping[Address, Any]],
        delta_values: Mapping[int, Mapping[Address, int]] | None,
        state: StateDB,
    ) -> "_DeltaPlan":
        plan = cls(write_values)
        if not delta_values:
            return plan
        addresses: set[Address] = set()
        for group in schedule.iter_groups():
            for txid in group.txids:
                addresses.update(delta_values.get(txid, ()))
        if not addresses:
            return plan
        running = {address: state.get(address) for address in addresses}
        last_toucher: dict[Address, int] = {}
        touched: set[Address] = set()
        units: dict[Address, int] = {}
        aborted: list[int] = []
        for group in schedule.iter_groups():
            for txid in group.txids:
                deltas = delta_values.get(txid)
                overflowed = None
                if deltas:
                    for address, delta in deltas.items():
                        if not 0 <= running[address] + delta <= WORD_MASK:
                            overflowed = address
                            break
                if overflowed is not None:
                    aborted.append(txid)
                    plan.guard_edges[txid] = (
                        last_toucher.get(overflowed, UNKNOWN_PEER),
                        overflowed,
                        EDGE_DELTA_GUARD,
                    )
                    continue
                for address, value in write_values.get(txid, {}).items():
                    if address in addresses:
                        running[address] = int(value)
                        touched.add(address)
                        last_toucher[address] = txid
                if deltas:
                    for address, delta in deltas.items():
                        running[address] += delta
                        touched.add(address)
                        last_toucher[address] = txid
                        units[address] = units.get(address, 0) + 1
        plan._addresses = frozenset(addresses)
        plan._aborted = frozenset(aborted)
        plan.finals = {
            address: running[address] for address in sorted(touched)
        }
        plan.guard_aborted = tuple(aborted)
        plan.delta_commuted = sum(
            count for count in units.values() if count >= 2
        )
        return plan

    def surviving(self, txids: tuple[int, ...]) -> tuple[int, ...]:
        """A group's txids minus the guard-aborted ones."""
        if not self._aborted:
            return txids
        return tuple(txid for txid in txids if txid not in self._aborted)

    def writes_of(self, txid: int) -> Mapping[Address, Any]:
        """A transaction's plain writes minus planned delta addresses."""
        writes = self._write_values[txid]
        if not self._addresses:
            return writes
        return {
            address: value
            for address, value in writes.items()
            if address not in self._addresses
        }


class Committer:
    """Applies commit schedules to a :class:`~repro.state.statedb.StateDB`.

    ``workers > 1`` applies the transactions *within* each group through a
    thread pool — safe because a group's members are pairwise
    conflict-free, so no two threads ever write the same address.  Groups
    themselves always commit in sequence order.  The default is in-process
    serial application, which is faster under CPython's GIL but models the
    same semantics (tests assert both produce identical roots).  The pool
    is created lazily and reused across epochs; :meth:`close` releases it.
    """

    def __init__(self, workers: int = 0, tracer: Tracer | None = None) -> None:
        self.workers = workers
        self.tracer = tracer
        self._pool = None

    def commit(
        self,
        schedule: Schedule,
        write_values: Mapping[int, Mapping[Address, Any]],
        state: StateDB,
        delta_values: Mapping[int, Mapping[Address, int]] | None = None,
    ) -> CommitReport:
        """Apply the writes of every committed transaction in group order.

        ``delta_values`` maps txid -> commutative deltas to fold at
        commit time.  Delta-carrying addresses are planned serially in
        schedule order first (running value per address, whole-transaction
        guard abort on word over/underflow), then plain writes apply
        group by group as before — minus the planned addresses, whose
        final folded values install at the end.
        """
        committed = 0
        delta: dict[Address, int] = {}
        plan = _DeltaPlan.build(schedule, write_values, delta_values, state)
        with maybe_span(self.tracer, "commit.apply_groups") as span:
            for group in schedule.iter_groups():
                for txid in group.txids:
                    if txid not in write_values:
                        raise ExecutionError(
                            f"committed T{txid} has no simulated write values"
                        )
                txids = plan.surviving(group.txids)
                if self.workers > 1 and len(txids) > 1:
                    self._apply_group_parallel(txids, plan.writes_of, state)
                else:
                    for txid in txids:
                        self._apply_one(plan.writes_of(txid), state)
                # Within a group writes are pairwise disjoint, so merging in
                # txid order equals any interleaving; across groups the later
                # group overwrites, matching the application order above.
                for txid in txids:
                    for address, value in plan.writes_of(txid).items():
                        delta[address] = int(value)
                committed += len(txids)
            for address, value in plan.finals.items():
                state.set(address, value)
                delta[address] = value
            span.set(committed=committed, groups=len(schedule.groups))
        with maybe_span(self.tracer, "commit.state_root") as span:
            root = state.commit()
            span.set(writes=len(delta))
        return CommitReport(
            state_root=root,
            committed_count=committed,
            group_count=len(schedule.groups),
            write_delta=delta,
            guard_aborted=plan.guard_aborted,
            delta_commuted=plan.delta_commuted,
            guard_edges=plan.guard_edges,
        )

    def _apply_group_parallel(
        self,
        txids: tuple[int, ...],
        writes_of: "Callable[[int], Mapping[Address, Any]]",
        state: StateDB,
    ) -> None:
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-commit"
            )
        list(
            self._pool.map(
                lambda txid: self._apply_one(writes_of(txid), state), txids
            )
        )

    def close(self) -> None:
        """Shut down the reused group-apply pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @staticmethod
    def _apply_one(writes: Mapping[Address, Any], state: StateDB) -> None:
        for address, value in writes.items():
            state.set(address, int(value))


class SerialExecutorCommitter:
    """The Serial baseline's combined execute-and-commit path.

    Executes each transaction against the *live* state (not a snapshot)
    and immediately applies its writes, exactly like today's DAG-based
    blockchains processing blocks one by one.  Reverted transactions
    leave no effects but still count as processed.
    """

    def __init__(self, registry: ContractRegistry | None = None, use_vm: bool = False) -> None:
        self.registry = registry
        self.executor = ConcurrentExecutor(registry=registry, use_vm=use_vm)

    def close(self) -> None:
        """Release the inner executor's resources (idempotent)."""
        self.executor.close()

    def run(self, transactions: Sequence[Transaction], state: StateDB) -> CommitReport:
        """Execute and commit serially; returns the new root."""
        committed = 0
        for txn in transactions:
            if txn.contract is None or self.registry is None:
                for address, value in txn.rwset.writes.items():
                    state.set(address, int(value) if value is not None else 0)
                # Declared deltas fold against the live state — under
                # serial execution a commutative increment is just the
                # read-modify-write it abbreviates.
                for address, delta in txn.rwset.deltas.items():
                    state.set(address, state.get(address) + delta)
                committed += 1
                continue
            result = self.executor.execute_one(txn, state.get)
            if result.ok:
                for address, value in result.rwset.writes.items():
                    state.set(address, int(value))
                committed += 1
        root = state.commit()
        return CommitReport(state_root=root, committed_count=committed, group_count=committed)
