"""The commitment phase.

Applies the write values of committed transactions to the in-memory
state in schedule order — commit groups in ascending sequence, where
transactions inside one group are pairwise conflict-free and may be
applied in any interleaving (we apply them in txid order, which equals
any concurrent interleaving precisely because they never touch the same
written address).  The updated state is then folded into the MPT and
flushed to the backing store, yielding the epoch's new state root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.schedule import Schedule
from repro.errors import ExecutionError
from repro.node.executor import ConcurrentExecutor
from repro.obs.tracer import Tracer, maybe_span
from repro.state.statedb import StateDB
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction
from repro.vm.native import ContractRegistry


@dataclass(frozen=True)
class CommitReport:
    """What the commitment phase produced.

    ``write_delta`` is the epoch's net effect on flat state — every
    address written, with its final committed value (last writer in
    group order wins).  The pipeline ships exactly this delta to the
    process execution backend's worker replicas, so replica sync cost
    tracks the epoch's write set rather than the world state.  Paths
    that commit without a schedule (serial execute-and-commit) leave it
    ``None``.
    """

    state_root: bytes
    committed_count: int
    group_count: int
    write_delta: "Mapping[Address, int] | None" = None


class Committer:
    """Applies commit schedules to a :class:`~repro.state.statedb.StateDB`.

    ``workers > 1`` applies the transactions *within* each group through a
    thread pool — safe because a group's members are pairwise
    conflict-free, so no two threads ever write the same address.  Groups
    themselves always commit in sequence order.  The default is in-process
    serial application, which is faster under CPython's GIL but models the
    same semantics (tests assert both produce identical roots).  The pool
    is created lazily and reused across epochs; :meth:`close` releases it.
    """

    def __init__(self, workers: int = 0, tracer: Tracer | None = None) -> None:
        self.workers = workers
        self.tracer = tracer
        self._pool = None

    def commit(
        self,
        schedule: Schedule,
        write_values: Mapping[int, Mapping[Address, Any]],
        state: StateDB,
    ) -> CommitReport:
        """Apply the writes of every committed transaction in group order."""
        committed = 0
        delta: dict[Address, int] = {}
        with maybe_span(self.tracer, "commit.apply_groups") as span:
            for group in schedule.iter_groups():
                for txid in group.txids:
                    if txid not in write_values:
                        raise ExecutionError(
                            f"committed T{txid} has no simulated write values"
                        )
                if self.workers > 1 and len(group.txids) > 1:
                    self._apply_group_parallel(group.txids, write_values, state)
                else:
                    for txid in group.txids:
                        self._apply_one(write_values[txid], state)
                # Within a group writes are pairwise disjoint, so merging in
                # txid order equals any interleaving; across groups the later
                # group overwrites, matching the application order above.
                for txid in group.txids:
                    for address, value in write_values[txid].items():
                        delta[address] = int(value)
                committed += len(group.txids)
            span.set(committed=committed, groups=len(schedule.groups))
        with maybe_span(self.tracer, "commit.state_root") as span:
            root = state.commit()
            span.set(writes=len(delta))
        return CommitReport(
            state_root=root,
            committed_count=committed,
            group_count=len(schedule.groups),
            write_delta=delta,
        )

    def _apply_group_parallel(
        self,
        txids: tuple[int, ...],
        write_values: Mapping[int, Mapping[Address, Any]],
        state: StateDB,
    ) -> None:
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-commit"
            )
        list(
            self._pool.map(
                lambda txid: self._apply_one(write_values[txid], state), txids
            )
        )

    def close(self) -> None:
        """Shut down the reused group-apply pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @staticmethod
    def _apply_one(writes: Mapping[Address, Any], state: StateDB) -> None:
        for address, value in writes.items():
            state.set(address, int(value))


class SerialExecutorCommitter:
    """The Serial baseline's combined execute-and-commit path.

    Executes each transaction against the *live* state (not a snapshot)
    and immediately applies its writes, exactly like today's DAG-based
    blockchains processing blocks one by one.  Reverted transactions
    leave no effects but still count as processed.
    """

    def __init__(self, registry: ContractRegistry | None = None, use_vm: bool = False) -> None:
        self.registry = registry
        self.executor = ConcurrentExecutor(registry=registry, use_vm=use_vm)

    def close(self) -> None:
        """Release the inner executor's resources (idempotent)."""
        self.executor.close()

    def run(self, transactions: Sequence[Transaction], state: StateDB) -> CommitReport:
        """Execute and commit serially; returns the new root."""
        committed = 0
        for txn in transactions:
            if txn.contract is None or self.registry is None:
                for address, value in txn.rwset.writes.items():
                    state.set(address, int(value) if value is not None else 0)
                committed += 1
                continue
            result = self.executor.execute_one(txn, state.get)
            if result.ok:
                for address, value in result.rwset.writes.items():
                    state.set(address, int(value))
                committed += 1
        root = state.commit()
        return CommitReport(state_root=root, committed_count=committed, group_count=committed)
