"""Node observability: counters, gauges, and histograms.

A dependency-free metrics registry in the style of Prometheus clients.
The full node updates it after every epoch (when given one); snapshots
serialise to plain dicts/JSON for dashboards or test assertions, and
:func:`repro.obs.prom.render_prometheus` renders the whole registry in
the Prometheus text exposition format.

Metrics may carry **labels** (``registry.counter("aborts", labels={
"reason": "doomed_reorder"})``): each (name, label-set) pair is its own
time series inside one typed family, exactly like Prometheus client
libraries.  Unlabelled usage is unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Type, TypeVar, Union

from repro.analysis.metrics import percentile
from repro.errors import ReproError
from repro.node.phases import EpochReport


class MetricsError(ReproError):
    """Metric misuse (wrong type for an existing name)."""


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise MetricsError("counters cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move in both directions."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def add(self, amount: float) -> None:
        """Adjust the current value."""
        self.value += amount


@dataclass
class Histogram:
    """Sample distribution with simple summary statistics.

    A running sum is maintained alongside the capped sample ring, so
    ``total``/``mean`` are O(1) instead of re-summing every retained
    sample per call; evicted samples are subtracted as they drop out.
    ``observed_count``/``observed_sum`` accumulate over *every*
    observation ever made (never reset by eviction) — the cumulative
    semantics Prometheus expects from ``_count``/``_sum``.
    """

    samples: list[float] = field(default_factory=list)
    max_samples: int = 10_000
    observed_count: int = 0
    observed_sum: float = 0.0
    _retained_sum: float = field(default=0.0, repr=False)

    def observe(self, value: float) -> None:
        """Record one sample (oldest samples are dropped past the cap)."""
        self.samples.append(value)
        self._retained_sum += value
        self.observed_count += 1
        self.observed_sum += value
        if len(self.samples) > self.max_samples:
            excess = len(self.samples) - self.max_samples
            for dropped in self.samples[:excess]:
                self._retained_sum -= dropped
            del self.samples[:excess]

    @property
    def count(self) -> int:
        """Number of retained samples."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of retained samples (O(1): tracked on observe/evict)."""
        return self._retained_sum

    @property
    def mean(self) -> float:
        """Mean of retained samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Linear-interpolated quantile of retained samples."""
        return percentile(sorted(self.samples), fraction)

    def summary(self) -> dict[str, float]:
        """count / mean / p50 / p95 / max (one sort for all quantiles)."""
        ordered = sorted(self.samples)
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "max": ordered[-1] if ordered else 0.0,
        }


Metric = Union[Counter, Gauge, Histogram]
MetricT = TypeVar("MetricT", Counter, Gauge, Histogram)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_series_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    rendered = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Named metric registry with typed accessors and optional labels."""

    def __init__(self) -> None:
        self._kinds: dict[str, type] = {}
        self._families: dict[str, dict[LabelKey, Metric]] = {}

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Counter:
        """Get or create a counter series."""
        return self._typed(name, Counter, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        """Get or create a gauge series."""
        return self._typed(name, Gauge, labels)

    def histogram(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Histogram:
        """Get or create a histogram series."""
        return self._typed(name, Histogram, labels)

    def _typed(
        self,
        name: str,
        kind: Type[MetricT],
        labels: Mapping[str, str] | None = None,
    ) -> MetricT:
        existing_kind = self._kinds.get(name)
        if existing_kind is not None and existing_kind is not kind:
            raise MetricsError(
                f"metric {name!r} is a {existing_kind.__name__}, not {kind.__name__}"
            )
        family = self._families.setdefault(name, {})
        self._kinds.setdefault(name, kind)
        key = _label_key(labels)
        metric = family.get(key)
        if metric is None:
            metric = kind()
            family[key] = metric
        assert isinstance(metric, kind)
        return metric

    def families(
        self,
    ) -> Iterator[tuple[str, type, list[tuple[dict[str, str], Metric]]]]:
        """Iterate metric families: (name, kind, [(labels, metric), ...]).

        Names ascend; within a family, label sets ascend — deterministic
        output for exporters and tests.
        """
        for name in sorted(self._families):
            series = [
                (dict(key), self._families[name][key])
                for key in sorted(self._families[name])
            ]
            yield name, self._kinds[name], series

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view of every series.

        Unlabelled series keep their bare name (backwards compatible);
        labelled series render as ``name{k="v",...}``.
        """
        out: dict[str, object] = {}
        for name in sorted(self._families):
            for key in sorted(self._families[name]):
                metric = self._families[name][key]
                series_name = _render_series_name(name, key)
                if isinstance(metric, Histogram):
                    out[series_name] = metric.summary()
                else:
                    out[series_name] = metric.value
        return out

    def to_json(self, indent: int | None = None) -> str:
        """JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __len__(self) -> int:
        return sum(len(family) for family in self._families.values())


def record_epoch(metrics: MetricsRegistry, report: EpochReport) -> None:
    """Fold one :class:`~repro.node.phases.EpochReport` into the registry."""
    metrics.counter("epochs_total").inc()
    metrics.counter("epochs_by_scheme_total", labels={"scheme": report.scheme}).inc()
    metrics.counter("txns_input_total").inc(report.input_transactions)
    metrics.counter("txns_committed_total").inc(report.committed)
    metrics.counter("txns_aborted_total").inc(report.aborted)
    metrics.counter("txns_failed_simulation_total").inc(report.failed_simulation)
    for reason, count in sorted(report.abort_reasons.items()):
        metrics.counter(
            "txns_abort_reason_total", labels={"reason": reason}
        ).inc(count)
    if report.revived:
        metrics.counter("txns_revived_total").inc(report.revived)
    if report.delta_commuted:
        metrics.counter("txns_delta_commuted_total").inc(report.delta_commuted)
    metrics.gauge("last_epoch_index").set(report.epoch_index)
    metrics.gauge("last_abort_rate").set(report.abort_rate)
    metrics.histogram("epoch_latency_seconds").observe(report.phases.total)
    metrics.histogram("cc_latency_seconds").observe(report.phases.concurrency_control)
    for phase, seconds in sorted(report.phases.as_dict().items()):
        metrics.histogram(
            "phase_latency_seconds", labels={"phase": phase}
        ).observe(seconds)
    metrics.histogram("commit_group_count").observe(report.commit_group_count)
    if report.scheduler_failed:
        metrics.counter("scheduler_failures_total").inc()


def record_state(metrics: MetricsRegistry, state: object) -> None:
    """Fold the state backend's health into the registry.

    Duck-typed so any ``StateDB``-compatible object works: the trie-node
    cache (``state.cache.stats``), the flat fast path's journal depth and
    trie fallbacks (``FlatStateDB``) — whichever the backend exposes.
    """
    cache = getattr(state, "cache", None)
    stats = getattr(cache, "stats", None)
    if stats is not None:
        metrics.gauge("state_cache_hits").set(float(stats.hits))
        metrics.gauge("state_cache_misses").set(float(stats.misses))
        metrics.gauge("state_cache_evictions").set(float(stats.evictions))
        metrics.gauge("state_cache_hit_rate").set(float(stats.hit_rate))
    journal_depth = getattr(state, "journal_depth", None)
    if journal_depth is not None:
        metrics.gauge("state_journal_depth").set(float(journal_depth))
        metrics.gauge("state_fallback_reads").set(
            float(getattr(state, "fallback_reads", 0))
        )
