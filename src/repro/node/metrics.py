"""Node observability: counters, gauges, and histograms.

A dependency-free metrics registry in the style of Prometheus clients.
The full node updates it after every epoch (when given one), and the
snapshot serialises to plain dicts/JSON for dashboards or test
assertions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.metrics import percentile
from repro.errors import ReproError


class MetricsError(ReproError):
    """Metric misuse (wrong type for an existing name)."""


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise MetricsError("counters cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move in both directions."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def add(self, amount: float) -> None:
        """Adjust the current value."""
        self.value += amount


@dataclass
class Histogram:
    """Sample distribution with simple summary statistics."""

    samples: list[float] = field(default_factory=list)
    max_samples: int = 10_000

    def observe(self, value: float) -> None:
        """Record one sample (oldest samples are dropped past the cap)."""
        self.samples.append(value)
        if len(self.samples) > self.max_samples:
            del self.samples[: len(self.samples) - self.max_samples]

    @property
    def count(self) -> int:
        """Number of retained samples."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of retained samples."""
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Mean of retained samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Linear-interpolated quantile of retained samples."""
        return percentile(sorted(self.samples), fraction)

    def summary(self) -> dict[str, float]:
        """count / mean / p50 / p95 / max."""
        ordered = sorted(self.samples)
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "max": ordered[-1] if ordered else 0.0,
        }


class MetricsRegistry:
    """Named metric registry with typed accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._typed(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._typed(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create a histogram."""
        return self._typed(name, Histogram)

    def _typed(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise MetricsError(
                f"metric {name!r} is a {type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every metric."""
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def to_json(self, indent: int | None = None) -> str:
        """JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __len__(self) -> int:
        return len(self._metrics)


def record_epoch(metrics: MetricsRegistry, report) -> None:
    """Fold one :class:`~repro.node.phases.EpochReport` into the registry."""
    metrics.counter("epochs_total").inc()
    metrics.counter("txns_input_total").inc(report.input_transactions)
    metrics.counter("txns_committed_total").inc(report.committed)
    metrics.counter("txns_aborted_total").inc(report.aborted)
    metrics.counter("txns_failed_simulation_total").inc(report.failed_simulation)
    metrics.gauge("last_epoch_index").set(report.epoch_index)
    metrics.gauge("last_abort_rate").set(report.abort_rate)
    metrics.histogram("epoch_latency_seconds").observe(report.phases.total)
    metrics.histogram("cc_latency_seconds").observe(report.phases.concurrency_control)
    metrics.histogram("commit_group_count").observe(report.commit_group_count)
    if report.scheduler_failed:
        metrics.counter("scheduler_failures_total").inc()
