"""Per-epoch reports: phase latencies and transaction accounting.

The paper reports the latency of simulating executions ("e") separately
from concurrency control and commitment ("c") — see Table IV — plus the
per-sub-phase breakdown of Figure 10.  Every pipeline run produces an
:class:`EpochReport` carrying exactly those measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:
    from repro.analysis.certify import EpochCertificate


@dataclass
class PhaseLatencies:
    """Wall-clock seconds of each pipeline phase."""

    validation: float = 0.0
    execution: float = 0.0
    concurrency_control: float = 0.0
    commitment: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end transaction processing latency."""
        return self.validation + self.execution + self.concurrency_control + self.commitment

    @property
    def control_and_commit(self) -> float:
        """The paper's "(c)" number: concurrency control plus commitment."""
        return self.concurrency_control + self.commitment

    def as_dict(self) -> dict[str, float]:
        """Phase name -> seconds."""
        return {
            "validation": self.validation,
            "execution": self.execution,
            "concurrency_control": self.concurrency_control,
            "commitment": self.commitment,
        }


@dataclass
class EpochReport:
    """Everything measured while processing one epoch.

    ``abort_reasons`` maps each taxonomy reason (see
    :mod:`repro.obs.taxonomy`) to the number of transactions aborted for
    it; the counts always sum to ``aborted``.  ``abort_edges`` maps each
    aborted txid to its attributed conflict edges ``(peer txid, address,
    kind)`` — the CC-layer attribution for sorter/validator aborts plus a
    ``delta_guard`` edge for each commit-time guard abort.  ``revived`` counts
    §IV-D-doomed transactions the validation pass rescued back into the
    schedule (they are *not* part of ``aborted``).  ``delta_commuted``
    counts committed commutative delta units that shared an address with
    at least one other committed delta — each would have been a
    write-write conflict without operation-level CC.  ``certificate`` is
    the independent schedule certificate when the pipeline ran with
    ``certify`` on (``None`` otherwise — and for scheduler-failure
    epochs, which commit nothing).
    """

    epoch_index: int
    scheme: str
    block_concurrency: int
    input_transactions: int
    committed: int
    aborted: int
    failed_simulation: int
    state_root: bytes
    phases: PhaseLatencies = field(default_factory=PhaseLatencies)
    scheme_phases: Mapping[str, float] = field(default_factory=dict)
    commit_group_count: int = 0
    scheduler_failed: bool = False
    abort_reasons: Mapping[str, int] = field(default_factory=dict)
    abort_edges: Mapping[int, list[tuple[int, str, str]]] = field(
        default_factory=dict
    )
    revived: int = 0
    delta_commuted: int = 0
    certificate: "EpochCertificate | None" = None

    @property
    def abort_rate(self) -> float:
        """Aborted fraction of scheduled (non-failed) transactions."""
        scheduled = self.committed + self.aborted
        return self.aborted / scheduled if scheduled else 0.0

    @property
    def effective_transactions(self) -> int:
        """Valid transactions that persisted state (the paper's metric)."""
        return self.committed

    @property
    def commit_concurrency(self) -> float:
        """Mean commit-group size (1.0 for fully serial schedules)."""
        if self.commit_group_count == 0:
            return 0.0
        return self.committed / self.commit_group_count
