"""A full node: chain state, world state, and the processing pipeline.

The paper measures everything on the full node that synchronises the
entire system state.  :class:`FullNode` validates incoming blocks
structurally (PoW, chain assignment, parentage) and contextually (the
carried state root must match the previous epoch), appends them to its
parallel chains, and runs the transaction pipeline over each completed
epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dag.block import Block
from repro.dag.blockstore import BlockStore
from repro.dag.chain import ParallelChains
from repro.dag.epochs import Epoch, extract_epoch
from repro.errors import BlockValidationError
from repro.node.metrics import MetricsRegistry, record_epoch, record_state
from repro.node.phases import EpochReport
from repro.node.pipeline import PipelineConfig, Scheduler, TransactionPipeline
from repro.obs.ledger import FlightLedger
from repro.obs.tracer import Tracer, maybe_span
from repro.state.statedb import StateDB
from repro.vm.native import ContractRegistry

if TYPE_CHECKING:
    from repro.node.engine import StreamingEpochEngine


@dataclass
class FullNode:
    """One fully-validating node of the DAG-based blockchain."""

    chains: ParallelChains
    state: StateDB
    scheduler: Scheduler
    registry: ContractRegistry | None = None
    config: PipelineConfig = field(default_factory=PipelineConfig)
    reports: list[EpochReport] = field(default_factory=list)
    blockstore: BlockStore | None = None
    metrics: "MetricsRegistry | None" = None
    tracer: "Tracer | None" = None
    ledger: "FlightLedger | None" = None

    def __post_init__(self) -> None:
        self.pipeline = TransactionPipeline(
            state=self.state,
            scheduler=self.scheduler,
            registry=self.registry,
            config=self.config,
            tracer=self.tracer,
            ledger=self.ledger,
        )
        self._next_epoch = min(
            (self.chains.height(c) for c in range(self.chains.chain_count)),
            default=0,
        )
        # Seed duplicate protection from any pre-loaded chain history
        # (restored nodes must not re-execute archived transactions).
        self._seen_txids: set[int] = {
            txn.txid
            for block in self.chains.blocks.values()
            for txn in block.transactions
        }
        # The streaming engine overlaps speculation with CC + commit; it
        # needs a scheduler that accepts pre-built dense graphs (Nezha).
        # Serial/locking schemes silently keep the barrier path.
        self.engine: "StreamingEpochEngine | None" = None
        if self.config.streaming and hasattr(self.scheduler, "schedule_dense"):
            from repro.node.engine import StreamingEpochEngine

            self.engine = StreamingEpochEngine(self)

    @classmethod
    def restore(
        cls,
        blockstore: BlockStore,
        state: StateDB,
        scheduler: Scheduler,
        chain_count: int,
        registry: ContractRegistry | None = None,
        config: PipelineConfig | None = None,
        pow_params=None,
    ) -> "FullNode":
        """Rebuild a node from a persisted block archive.

        The caller provides a ``StateDB`` opened at the archive's recorded
        state root (``blockstore.state_root()``); chains are replayed from
        the archive through full validation.
        """
        chains = blockstore.load_chains(chain_count, pow_params)
        return cls(
            chains=chains,
            state=state,
            scheduler=scheduler,
            registry=registry,
            config=config or PipelineConfig(),
            blockstore=blockstore,
        )

    def receive_epoch(self, blocks: list[Block]) -> EpochReport:
        """Validate, append, and process one epoch's concurrent blocks.

        Invalid blocks are discarded (the paper: "each node will consider
        this block invalid and discard it"); the epoch proceeds with the
        surviving blocks.

        With ``config.streaming`` the epoch routes through the
        :class:`~repro.node.engine.StreamingEpochEngine` (same report,
        bit-identical results).  A live miner needs this epoch's root to
        stamp the next epoch's blocks, so this path submits and drains in
        one call; feed :meth:`submit_epoch` directly (block replay, node
        catch-up) to realise the cross-epoch overlap.
        """
        if self.engine is not None:
            previous = self.engine.submit(blocks)
            tail = self.engine.drain()
            return tail[-1] if tail else previous  # type: ignore[return-value]
        with maybe_span(
            self.tracer, "node.block_arrival", epoch=self._next_epoch
        ) as span:
            accepted = 0
            for block in blocks:
                if block.header.state_root != self.state.root:
                    continue  # Discard: stale or wrong state root.
                try:
                    self.chains.append(block)
                except BlockValidationError:
                    continue  # Discard: structural failure.
                if self.blockstore is not None:
                    self.blockstore.put_block(block)
                accepted += 1
            span.set(offered=len(blocks), accepted=accepted)
            if accepted == 0:
                raise BlockValidationError("every block of the epoch was discarded")
        with maybe_span(self.tracer, "node.epoch_seal", epoch=self._next_epoch):
            epoch = extract_epoch(self.chains, self._next_epoch)
        if epoch is None:
            raise BlockValidationError(f"epoch {self._next_epoch} is empty")
        report = self.process_epoch(epoch)
        self._next_epoch += 1
        if self.blockstore is not None:
            self.blockstore.set_state_root(report.state_root)
        return report

    def submit_epoch(self, blocks: list[Block]) -> EpochReport | None:
        """Streaming ingress: feed one epoch, get the *previous* report.

        Back-to-back submissions overlap epoch ``e``'s concurrency
        control and commit with epoch ``e+1``'s speculative execution —
        the engine's pipelining win.  Requires ``config.streaming``;
        finish with :meth:`drain` to join the last in-flight epoch.
        """
        if self.engine is None:
            raise RuntimeError("submit_epoch requires streaming mode")
        return self.engine.submit(blocks)

    def drain(self) -> list[EpochReport]:
        """Join any in-flight streamed epoch and return its report."""
        if self.engine is None:
            return []
        return self.engine.drain()

    def process_epoch(self, epoch: Epoch) -> EpochReport:
        """Run the pipeline on an already-validated epoch.

        Transactions already processed in earlier epochs (a lagging miner
        re-packing them) are excluded from the batch.
        """
        report = self.pipeline.process_epoch(epoch, exclude_txids=self._seen_txids)
        self._register_epoch(epoch)
        self.reports.append(report)
        if self.metrics is not None:
            record_epoch(self.metrics, report)
            record_state(self.metrics, self.state)
        return report

    def _register_epoch(self, epoch: Epoch) -> None:
        """Fold an admitted epoch's txids into duplicate protection.

        Both the barrier path and the streaming engine route admitted
        epochs through here, so it is also where the flight ledger gets
        its ``ingest`` events — one per delivered transaction, stamped
        with the carrying block.
        """
        self._seen_txids.update(
            txn.txid for block in epoch.blocks for txn in block.transactions
        )
        if self.ledger is not None:
            events = []
            for block in epoch.blocks:
                # Hoisted per block: hashing/hexing per transaction is
                # measurable on 1000+-txn epochs.
                block_id = block.hash.hex()[:12]
                chain = block.chain_id
                events.extend(
                    {
                        "epoch": epoch.index,
                        "txid": txn.txid,
                        "kind": "ingest",
                        "block": block_id,
                        "chain": chain,
                    }
                    for txn in block.transactions
                )
            self.ledger.record_many(events)

    def _finish_report(self, report: EpochReport) -> None:
        """Record a completed epoch (streaming join path).

        Mirrors the bookkeeping the barrier path performs inline in
        :meth:`process_epoch` + :meth:`receive_epoch`: report history,
        metrics, and the archive's state-root watermark.
        """
        self.reports.append(report)
        if self.metrics is not None:
            record_epoch(self.metrics, report)
            record_state(self.metrics, self.state)
        if self.blockstore is not None:
            self.blockstore.set_state_root(report.state_root)

    def close(self) -> None:
        """Release the engine's stage and the pipeline's worker pools
        (idempotent).

        Nodes configured with the process execution backend own worker
        processes; closing guarantees none outlive the node.  The
        streaming engine drains first so no epoch is lost in flight.
        """
        if self.engine is not None:
            self.engine.close()
        self.pipeline.close()

    def __enter__(self) -> "FullNode":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def committed_total(self) -> int:
        """Transactions committed across all processed epochs."""
        return sum(report.committed for report in self.reports)

    @property
    def state_root(self) -> bytes:
        """The node's current world-state root."""
        return self.state.root
