"""Concurrent speculative execution (the paper's execution phase).

Each node "picks transactions that first appear in all verified blocks
and simulates their executions concurrently and speculatively based on
the latest state snapshot" (Section III-B).  The executor runs every
transaction against the same immutable snapshot — execution order is
irrelevant, which is what makes the phase embarrassingly parallel — and
records each transaction's read/write sets through the logger.

``workers > 1`` uses a thread pool to mirror the paper's multi-worker
setup; the default is in-process serial execution, which is faster under
CPython's GIL for pure-Python contracts and produces identical results.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.errors import ExecutionError
from repro.txn.rwset import Address, RWSet
from repro.txn.simulation import SimulationBatch, SimulationResult, SimulationStatus
from repro.txn.transaction import Transaction
from repro.vm.logger import LoggedStorage
from repro.vm.machine import DEFAULT_GAS_LIMIT, ExecutionContext, SVM
from repro.vm.native import ContractRegistry

ReadFn = Callable[[Address], int]


def caller_id(sender: str) -> int:
    """Numeric caller id from a ``user:NNN`` style sender string."""
    _, _, suffix = sender.rpartition(":")
    try:
        return int(suffix)
    except ValueError:
        return 0


class ConcurrentExecutor:
    """Simulates a batch of transactions against one state snapshot.

    The worker thread pool is created lazily on the first parallel batch
    and reused for every later epoch — constructing and tearing down a
    pool per ``execute_batch`` call costs thread spawns every epoch and
    dominated small-batch execution.  Call :meth:`close` (or use the
    executor as a context manager) to release the threads explicitly;
    otherwise they are reclaimed at interpreter shutdown.
    """

    def __init__(
        self,
        registry: ContractRegistry | None = None,
        workers: int = 0,
        use_vm: bool = False,
        gas_limit: int = DEFAULT_GAS_LIMIT,
    ) -> None:
        self.registry = registry
        self.workers = workers
        self.use_vm = use_vm
        self.gas_limit = gas_limit
        self._svm = SVM()
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def close(self) -> None:
        """Shut down the reused worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ConcurrentExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def execute_batch(
        self,
        transactions: Sequence[Transaction],
        read_fn: ReadFn,
        snapshot_root: bytes = b"",
    ) -> SimulationBatch:
        """Speculatively execute every transaction; never mutates state."""
        ordered = sorted(transactions, key=lambda t: t.txid)
        if self.workers > 1 and ordered:
            pool = self._ensure_pool()
            # Hand each worker a run of transactions instead of one task
            # per transaction; caps queue traffic at ~4 chunks per worker.
            chunksize = max(1, len(ordered) // (self.workers * 4))
            results = list(
                pool.map(
                    lambda txn: self._execute_one(txn, read_fn),
                    ordered,
                    chunksize=chunksize,
                )
            )
        else:
            results = [self._execute_one(txn, read_fn) for txn in ordered]
        return SimulationBatch(results=tuple(results), snapshot_root=snapshot_root)

    def execute_one(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        """Speculatively execute a single transaction."""
        return self._execute_one(txn, read_fn)

    def _execute_one(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        if txn.contract is None or self.registry is None:
            return self._passthrough(txn, read_fn)
        if self.use_vm:
            return self._execute_vm(txn, read_fn)
        return self._execute_native(txn, read_fn)

    def _passthrough(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        """Synthetic transaction: rwset provided up front, reads resolved."""
        reads = {address: read_fn(address) for address in txn.read_set}
        rwset = RWSet(reads=reads, writes=dict(txn.rwset.writes))
        return SimulationResult(transaction=txn, rwset=rwset)

    def _execute_native(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        contract = self.registry.native(txn.contract)
        if contract is None:
            raise ExecutionError(f"contract {txn.contract!r} is not deployed")
        storage = LoggedStorage(read_fn)
        receipt = contract.call(
            txn.function, storage, tuple(txn.args), caller=caller_id(txn.sender)
        )
        return self._result_from_receipt(txn, receipt)

    def _execute_vm(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        code = self.registry.bytecode(txn.contract, txn.function)
        renderer = self.registry.key_renderer(txn.contract)
        if code is None or renderer is None:
            raise ExecutionError(
                f"no bytecode for {txn.contract!r}.{txn.function!r}"
            )
        storage = LoggedStorage(read_fn)
        context = ExecutionContext(
            storage=storage,
            args=tuple(int(a) for a in txn.args),
            caller=caller_id(txn.sender),
            gas_limit=self.gas_limit,
            key_renderer=renderer,
        )
        receipt = self._svm.execute(code, context)
        return self._result_from_receipt(txn, receipt)

    @staticmethod
    def _result_from_receipt(txn: Transaction, receipt) -> SimulationResult:
        status = (
            SimulationStatus.SUCCESS if receipt.success else SimulationStatus.REVERTED
        )
        return SimulationResult(
            transaction=txn,
            rwset=receipt.rwset,
            status=status,
            gas_used=receipt.gas_used,
            return_value=receipt.return_value,
            error=receipt.error,
        )
