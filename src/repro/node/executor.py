"""Concurrent speculative execution (the paper's execution phase).

Each node "picks transactions that first appear in all verified blocks
and simulates their executions concurrently and speculatively based on
the latest state snapshot" (Section III-B).  The executor runs every
transaction against the same immutable snapshot — execution order is
irrelevant, which is what makes the phase embarrassingly parallel — and
records each transaction's read/write sets through the logger.

Three backends implement the phase, selected by ``backend``/``workers``:

* **serial** — in-process loop.  Fastest under CPython's GIL for cheap
  pure-Python contracts, and the equivalence oracle for the other two.
* **thread** — a persistent :class:`ThreadPoolExecutor` fed manually
  built chunks (one task per chunk, not per transaction).  Wins when
  per-transaction cost releases the GIL (VM gas charges, modelled EVM
  latency, any I/O).
* **process** — a pool of persistent worker processes, each bootstrapped
  once with the pickled contract registry and a **flat replica of the
  world state**.  The parent keeps replicas in sync by shipping only the
  per-epoch commit write-delta (see ``apply_delta``), never the full
  state and never the MPT; workers read the replica with plain dict
  lookups, faithful to the paper's single-snapshot semantics because
  replicas only change *between* epochs.  Transactions and results cross
  the pipe as compact wire tuples (:mod:`repro.txn.codec`).  This is the
  only backend that escapes the GIL for pure-Python contracts.

The process backend degrades gracefully: an unpicklable registry, a
missing state provider, ``workers <= 1``, or a worker crash all fall
back to the thread/serial paths, which produce identical results.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping, Sequence

from repro.analysis.static.deltas import (
    EMPTY_CLASSIFICATION,
    DeltaClassification,
    classify_bytecode,
    resolve_sites,
)
from repro.errors import ExecutionError
from repro.obs.tracer import Tracer, maybe_span
from repro.txn.codec import (
    simulation_result_from_wire,
    simulation_result_to_wire,
    span_from_wire,
    span_to_wire,
    transaction_from_wire,
    transaction_to_wire,
)
from repro.txn.rwset import Address, RWSet
from repro.txn.simulation import SimulationBatch, SimulationResult, SimulationStatus
from repro.txn.transaction import Transaction
from repro.vm.logger import LoggedStorage
from repro.vm.machine import DEFAULT_GAS_LIMIT, ExecutionContext, SVM
from repro.vm.native import ContractRegistry, registry_is_picklable

ReadFn = Callable[[Address], int]
StateProvider = Callable[[], Mapping[Address, int]]

BACKENDS = ("auto", "serial", "thread", "process")


def caller_id(sender: str) -> int:
    """Numeric caller id from a ``user:NNN`` style sender string."""
    _, _, suffix = sender.rpartition(":")
    try:
        return int(suffix)
    except ValueError:
        return 0


def _worker_main(
    conn, registry, use_vm, gas_limit, txn_cost_seconds, index, delta_cc=False
) -> None:
    """Loop of one persistent worker process.

    The worker is bootstrapped once (registry, VM flags, worker index) and
    then serves commands off its pipe until told to close:

    * ``("sync", state)`` — replace the flat state replica wholesale
      (initial bootstrap, or resync after the parent marked it stale);
    * ``("delta", writes)`` — fold one epoch's commit write-delta into
      the replica (the steady-state path);
    * ``("exec", wires, want_spans)`` — speculatively execute a chunk of
      wire-tuple transactions against the replica and reply with
      ``("ok", result-wires, span-wires)``.  When the parent traces, the
      worker records one ``execute.worker_chunk`` span per command on its
      own ``worker-N`` track and ships it back; ``perf_counter`` reads
      the system-wide ``CLOCK_MONOTONIC``, so worker timestamps merge
      directly into the parent's timeline.

    Execution never mutates the replica (speculation buffers writes in
    ``LoggedStorage``), so a failed ``exec`` leaves the worker reusable.
    """
    executor = ConcurrentExecutor(
        registry=registry,
        use_vm=use_vm,
        gas_limit=gas_limit,
        txn_cost_seconds=txn_cost_seconds,
        delta_cc=delta_cc,
    )
    tracer = Tracer(track=f"worker-{index}")
    replica: dict[Address, int] = {}
    read = lambda address: replica.get(address, 0)  # noqa: E731
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        command = message[0]
        if command == "exec":
            wires = message[1]
            want_spans = bool(message[2]) if len(message) > 2 else False
            try:
                with maybe_span(
                    tracer if want_spans else None,
                    "execute.worker_chunk",
                    txns=len(wires),
                    worker=index,
                ):
                    results = [
                        simulation_result_to_wire(result)
                        for result in executor.execute_run(
                            [transaction_from_wire(wire) for wire in wires],
                            read,
                        )
                    ]
                spans = [span_to_wire(span) for span in tracer.drain()]
                conn.send(("ok", results, spans))
            except Exception as exc:  # surfaced in the parent
                tracer.clear()
                conn.send(("err", f"{type(exc).__name__}: {exc}", ()))
        elif command == "delta":
            replica.update(message[1])
        elif command == "sync":
            replica = dict(message[1])
        elif command == "close":
            break


class _ProcessPool:
    """Persistent worker processes with delta-synced state replicas."""

    def __init__(
        self,
        registry: ContractRegistry | None,
        workers: int,
        use_vm: bool,
        gas_limit: int,
        txn_cost_seconds: float,
        delta_cc: bool = False,
    ) -> None:
        import multiprocessing as mp

        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        context = mp.get_context(method)
        self._connections = []
        self._processes = []
        for index in range(workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    registry,
                    use_vm,
                    gas_limit,
                    txn_cost_seconds,
                    index,
                    delta_cc,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)

    @property
    def worker_count(self) -> int:
        return len(self._processes)

    def sync(self, state: Mapping[Address, int]) -> None:
        """Replace every worker's replica (bootstrap / stale resync)."""
        for conn in self._connections:
            conn.send(("sync", dict(state)))

    def apply_delta(self, delta: Mapping[Address, int]) -> None:
        """Ship one epoch's commit write-delta to every replica."""
        payload = dict(delta)
        for conn in self._connections:
            conn.send(("delta", payload))

    def execute(
        self, chunks: Sequence[Sequence[Transaction]], want_spans: bool = False
    ) -> tuple[list[list[tuple]], list[tuple]]:
        """Run one chunk per worker; returns (wire results, span wires).

        Raises ``ExecutionError`` for a deterministic in-worker failure
        (the pool stays healthy) and ``OSError``/``EOFError`` for a dead
        worker (the caller retires the pool).  All replies are drained
        before either is raised so the pipes never desynchronise.
        """
        for conn, chunk in zip(self._connections, chunks):
            conn.send(
                ("exec", [transaction_to_wire(txn) for txn in chunk], want_spans)
            )
        replies = []
        transport_error = None
        for conn, chunk in zip(self._connections, chunks):
            try:
                replies.append(conn.recv())
            except (EOFError, OSError) as exc:
                transport_error = exc
                replies.append(None)
        if transport_error is not None:
            raise transport_error
        failures = [detail for status, detail, _ in replies if status == "err"]
        if failures:
            raise ExecutionError(failures[0])
        results = [payload for _, payload, _ in replies]
        spans = [wire for _, _, span_wires in replies for wire in span_wires]
        return results, spans

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for conn in self._connections:
            try:
                conn.send(("close",))
            except (OSError, ValueError):
                pass
            conn.close()
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        self._connections = []
        self._processes = []


class ConcurrentExecutor:
    """Simulates a batch of transactions against one state snapshot.

    Pools (threads or processes) are created lazily on the first
    parallel batch and reused for every later epoch — constructing and
    tearing down a pool per ``execute_batch`` call costs spawns every
    epoch and dominated small-batch execution.  Call :meth:`close` (or
    use the executor as a context manager) to release them explicitly.

    ``state_provider`` supplies the flat committed state used to
    bootstrap (and, after :meth:`mark_stale`, resync) the process
    backend's worker replicas; without one the process backend is not
    viable and the executor falls back to threads.  ``txn_cost_seconds``
    charges each speculative execution a fixed modelled latency (the
    :mod:`repro.vm.costmodel` calibration hook used by the scaling
    benchmarks); the charge is paid inside whichever backend executes,
    so parallel backends overlap it.
    """

    def __init__(
        self,
        registry: ContractRegistry | None = None,
        workers: int = 0,
        use_vm: bool = False,
        gas_limit: int = DEFAULT_GAS_LIMIT,
        backend: str = "auto",
        state_provider: StateProvider | None = None,
        txn_cost_seconds: float = 0.0,
        tracer: Tracer | None = None,
        delta_cc: bool = False,
    ) -> None:
        if backend not in BACKENDS:
            raise ExecutionError(
                f"unknown execution backend {backend!r}; expected one of {BACKENDS}"
            )
        self.registry = registry
        self.workers = workers
        self.use_vm = use_vm
        self.gas_limit = gas_limit
        self.backend = backend
        self.state_provider = state_provider
        self.txn_cost_seconds = txn_cost_seconds
        self.tracer = tracer
        self.delta_cc = delta_cc
        self._delta_classes: dict[tuple[str, str], DeltaClassification] = {}
        self._svm = SVM()
        self._pool: ThreadPoolExecutor | None = None
        self._process_pool: _ProcessPool | None = None
        self._process_broken = False
        self._replicas_stale = True  # bootstrap counts as a stale resync

    # ------------------------------------------------------------ backends

    @property
    def resolved_backend(self) -> str:
        """The backend the next ``execute_batch`` will actually use."""
        if self.backend == "serial" or self.workers <= 1:
            return "serial"
        if self.backend == "process":
            if self._process_broken:
                return "serial"  # a crashed pool degrades to the oracle
            if self._process_viable():
                return "process"
        return "thread"

    @property
    def process_active(self) -> bool:
        """True while a live worker-process pool is attached."""
        return self._process_pool is not None and not self._process_broken

    def _process_viable(self) -> bool:
        if self._process_broken or self.state_provider is None:
            return False
        return registry_is_picklable(self.registry)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def _ensure_process_pool(self) -> "_ProcessPool | None":
        if self._process_pool is None:
            try:
                self._process_pool = _ProcessPool(
                    self.registry,
                    self.workers,
                    self.use_vm,
                    self.gas_limit,
                    self.txn_cost_seconds,
                    self.delta_cc,
                )
            except Exception:
                self._retire_process_pool()
                return None
            self._replicas_stale = True
        return self._process_pool

    def _retire_process_pool(self) -> None:
        """Degrade permanently to the thread/serial fallbacks."""
        self._process_broken = True
        if self._process_pool is not None:
            pool, self._process_pool = self._process_pool, None
            pool.close()

    def close(self) -> None:
        """Shut down the reused worker pools (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._process_pool is not None:
            pool, self._process_pool = self._process_pool, None
            pool.close()

    def __enter__(self) -> "ConcurrentExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------- replica sync

    def apply_delta(self, delta: Mapping[Address, int]) -> None:
        """Fold one epoch's commit write-delta into the worker replicas.

        Called by the pipeline after each successful ``Committer.commit``;
        a no-op unless a process pool is live.  Shipping only the delta
        (addresses + values actually written) keeps the steady-state sync
        cost proportional to the epoch's write set, not the world state.
        """
        if not self.process_active or self._replicas_stale or not delta:
            return
        try:
            self._process_pool.apply_delta(delta)
        except (OSError, ValueError):
            self._retire_process_pool()

    def mark_stale(self) -> None:
        """Force a full replica resync before the next process batch.

        Used when state changed outside ``Committer.commit`` (e.g. the
        wave-by-wave re-execution path), where no write-delta exists.
        """
        self._replicas_stale = True

    # ----------------------------------------------------------- execution

    def execute_batch(
        self,
        transactions: Sequence[Transaction],
        read_fn: ReadFn,
        snapshot_root: bytes = b"",
    ) -> SimulationBatch:
        """Speculatively execute every transaction; never mutates state."""
        ordered = sorted(transactions, key=lambda t: t.txid)
        results: list[SimulationResult] | None = None
        if ordered and self.resolved_backend == "process":
            results = self._execute_process(ordered)
        if results is None and ordered and self.resolved_backend == "thread":
            results = self._execute_threaded(ordered, read_fn)
        if results is None:
            results = self.execute_run(ordered, read_fn)
        return SimulationBatch(results=tuple(results), snapshot_root=snapshot_root)

    def _execute_threaded(
        self, ordered: list[Transaction], read_fn: ReadFn
    ) -> list[SimulationResult]:
        pool = self._ensure_pool()
        # Hand each worker a run of transactions instead of one task per
        # transaction.  Chunking must be manual: ThreadPoolExecutor.map
        # accepts ``chunksize`` but silently ignores it (only process
        # pools honour it), so mapping transactions directly would pay
        # one queue round-trip per transaction.  With a modelled charge
        # the usual 4-chunks-per-worker load balancing is a loss: every
        # chunk pays its charge as one sleep, and each extra wake-up is
        # a GIL reacquisition that can stall behind CPU-bound threads
        # (the streaming engine's background CC + commit stage), so cut
        # straight to one equal run per worker.
        if self.txn_cost_seconds > 0.0:
            chunksize = max(1, -(-len(ordered) // self.workers))
        else:
            chunksize = max(1, len(ordered) // (self.workers * 4))
        futures = [
            pool.submit(self._execute_chunk, ordered[i : i + chunksize], read_fn)
            for i in range(0, len(ordered), chunksize)
        ]
        return [result for future in futures for result in future.result()]

    def _execute_chunk(
        self, chunk: Sequence[Transaction], read_fn: ReadFn
    ) -> list[SimulationResult]:
        """One thread task: a contiguous run of the ordered batch.

        The span lands on the executing pool thread's own track (the
        tracer keys tracks by thread name), so a merged trace shows
        per-thread occupancy and stragglers directly.
        """
        with maybe_span(self.tracer, "execute.chunk", txns=len(chunk)):
            return self.execute_run(chunk, read_fn)

    def _execute_process(
        self, ordered: list[Transaction]
    ) -> list[SimulationResult] | None:
        """Fan the batch out to the worker processes; ``None`` on degrade."""
        pool = self._ensure_process_pool()
        if pool is None:
            return None
        try:
            if self._replicas_stale:
                pool.sync(self.state_provider())
                self._replicas_stale = False
            chunk_count = min(pool.worker_count, len(ordered))
            bounds = [
                (len(ordered) * i // chunk_count, len(ordered) * (i + 1) // chunk_count)
                for i in range(chunk_count)
            ]
            chunks = [ordered[lo:hi] for lo, hi in bounds]
            wire_chunks, span_wires = pool.execute(
                chunks, want_spans=self.tracer is not None
            )
        except ExecutionError:
            raise  # deterministic contract failure: same as serial would raise
        except Exception:
            self._retire_process_pool()
            return None
        if self.tracer is not None and span_wires:
            self.tracer.extend(span_from_wire(wire) for wire in span_wires)
        return [
            simulation_result_from_wire(wire, txn)
            for chunk, wires in zip(chunks, wire_chunks)
            for txn, wire in zip(chunk, wires)
        ]

    def execute_run(
        self, chunk: Sequence[Transaction], read_fn: ReadFn
    ) -> list[SimulationResult]:
        """Execute a run of transactions, paying the charge as one sleep.

        Wall-clock equivalent to per-transaction charges (the modelled
        latency is a fixed per-transaction amount either way), but one
        aggregated ``sleep`` per run instead of ``len(chunk)`` short
        ones.  That matters whenever a CPU-bound thread shares the
        interpreter — e.g. the streaming engine's background CC/commit
        stage: every short-sleep wakeup would otherwise wait out a GIL
        switch interval behind it, inflating the charged phase by orders
        of magnitude on single-core hosts.
        """
        if self.txn_cost_seconds > 0.0 and chunk:
            time.sleep(self.txn_cost_seconds * len(chunk))
        return [self._execute_uncharged(txn, read_fn) for txn in chunk]

    def execute_one(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        """Speculatively execute a single transaction (always in-process)."""
        return self._execute_one(txn, read_fn)

    def _execute_one(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        if self.txn_cost_seconds > 0.0:
            time.sleep(self.txn_cost_seconds)
        return self._execute_uncharged(txn, read_fn)

    def _execute_uncharged(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        if txn.contract is None or self.registry is None:
            return self._passthrough(txn, read_fn)
        if self.use_vm:
            return self._execute_vm(txn, read_fn)
        return self._execute_native(txn, read_fn)

    def _passthrough(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        """Synthetic transaction: rwset provided up front, reads resolved.

        Declared delta units pass through only under delta-CC; otherwise
        they *downgrade* to the equivalent read-modify-write (the read
        resolves against the snapshot and the write carries the summed
        value), so baseline schedulers see the plain conflict structure.
        """
        reads = {address: read_fn(address) for address in txn.read_set}
        writes: dict[Address, object] = dict(txn.rwset.writes)
        deltas: dict[Address, int] = {}
        if self.delta_cc:
            deltas = dict(txn.rwset.deltas)
        else:
            for address, delta in txn.rwset.deltas.items():
                value = read_fn(address)
                reads[address] = value
                writes[address] = value + delta
        rwset = RWSet(reads=reads, writes=writes, deltas=deltas)
        return SimulationResult(transaction=txn, rwset=rwset)

    def _delta_classification(self, contract: str, function: str) -> DeltaClassification:
        """Cached static delta classification of one deployed function."""
        key = (contract, function)
        cached = self._delta_classes.get(key)
        if cached is not None:
            return cached
        code = self.registry.bytecode(contract, function) if self.registry else None
        classification = (
            classify_bytecode(code) if code is not None else EMPTY_CLASSIFICATION
        )
        self._delta_classes[key] = classification
        return classification

    def _delta_sites(self, txn: Transaction) -> tuple[tuple[Address, int], ...]:
        """Resolve a call's statically classified delta sites, if any."""
        if not self.delta_cc or txn.contract is None or self.registry is None:
            return ()
        classification = self._delta_classification(txn.contract, txn.function)
        if not classification.sites:
            return ()
        renderer = self.registry.key_renderer(txn.contract)
        if renderer is None:
            return ()
        return resolve_sites(
            classification,
            (int(a) for a in txn.args),
            caller_id(txn.sender),
            renderer,
        )

    def _execute_native(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        contract = self.registry.native(txn.contract)
        if contract is None:
            raise ExecutionError(f"contract {txn.contract!r} is not deployed")
        storage = LoggedStorage(read_fn)
        receipt = contract.call(
            txn.function, storage, tuple(txn.args), caller=caller_id(txn.sender)
        )
        if receipt.success:
            sites = self._delta_sites(txn)
            if sites:
                storage.promote_deltas(sites)
                receipt.rwset = storage.rwset()
        return self._result_from_receipt(txn, receipt)

    def _execute_vm(self, txn: Transaction, read_fn: ReadFn) -> SimulationResult:
        code = self.registry.bytecode(txn.contract, txn.function)
        renderer = self.registry.key_renderer(txn.contract)
        if code is None or renderer is None:
            raise ExecutionError(
                f"no bytecode for {txn.contract!r}.{txn.function!r}"
            )
        storage = LoggedStorage(read_fn)
        context = ExecutionContext(
            storage=storage,
            args=tuple(int(a) for a in txn.args),
            caller=caller_id(txn.sender),
            gas_limit=self.gas_limit,
            key_renderer=renderer,
            delta_sites=self._delta_sites(txn),
        )
        receipt = self._svm.execute(code, context)
        return self._result_from_receipt(txn, receipt)

    @staticmethod
    def _result_from_receipt(txn: Transaction, receipt) -> SimulationResult:
        status = (
            SimulationStatus.SUCCESS if receipt.success else SimulationStatus.REVERTED
        )
        return SimulationResult(
            transaction=txn,
            rwset=receipt.rwset,
            status=status,
            gas_used=receipt.gas_used,
            return_value=receipt.return_value,
            error=receipt.error,
        )
