"""Key-value storage interface (the LevelDB role in the paper's stack).

The paper persists block data and state data in LevelDB.  We define a
minimal store interface with two implementations: an in-memory store for
tests and simulations, and a log-structured merge store
(:mod:`repro.storage.lsm`) that mirrors LevelDB's architecture (WAL,
memtable, sorted immutable tables, compaction).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import StorageError


@dataclass
class WriteBatch:
    """An atomic group of put/delete operations."""

    operations: list[tuple[bytes, bytes | None]] = field(default_factory=list)

    def put(self, key: bytes, value: bytes) -> "WriteBatch":
        """Queue an insert/overwrite."""
        _check_key(key)
        if value is None:
            raise StorageError("value must not be None; use delete()")
        self.operations.append((key, value))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        """Queue a deletion (a tombstone in LSM terms)."""
        _check_key(key)
        self.operations.append((key, None))
        return self

    def __len__(self) -> int:
        return len(self.operations)


class KVStore(abc.ABC):
    """Ordered byte-key/byte-value store."""

    @abc.abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Return the value for ``key``, or ``None`` if absent."""

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite one entry."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove an entry (no-op when absent)."""

    @abc.abstractmethod
    def write(self, batch: WriteBatch) -> None:
        """Apply a batch atomically."""

    @abc.abstractmethod
    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` pairs with the prefix, in key order."""

    def scan_range(
        self, start: bytes = b"", end: bytes | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield entries with ``start <= key < end`` in key order.

        ``end=None`` means unbounded.  The default implementation filters
        a full scan; ordered engines may override with an early-stopping
        variant.
        """
        for key, value in self.scan():
            if key < start:
                continue
            if end is not None and key >= end:
                break
            yield key, value

    @abc.abstractmethod
    def close(self) -> None:
        """Flush and release resources; further access is an error."""

    def has(self, key: bytes) -> bool:
        """True when ``key`` is present."""
        return self.get(key) is not None

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _check_key(key: bytes) -> None:
    if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
        raise StorageError(f"keys must be non-empty bytes, got {key!r}")
