"""In-memory key-value store (reference implementation and test double)."""

from __future__ import annotations

from typing import Iterator

from repro.errors import StorageError
from repro.storage.api import KVStore, WriteBatch, _check_key


class MemStore(KVStore):
    """Dict-backed store with ordered scans.

    Behaviourally identical to :class:`repro.storage.lsm.LSMStore` (the
    property tests assert this) but without persistence; used by unit
    tests and by simulations that do not need durability.
    """

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}
        self._closed = False

    def get(self, key: bytes) -> bytes | None:
        self._ensure_open()
        _check_key(key)
        return self._data.get(bytes(key))

    def put(self, key: bytes, value: bytes) -> None:
        self._ensure_open()
        _check_key(key)
        if value is None:
            raise StorageError("value must not be None; use delete()")
        self._data[bytes(key)] = bytes(value)

    def delete(self, key: bytes) -> None:
        self._ensure_open()
        _check_key(key)
        self._data.pop(bytes(key), None)

    def write(self, batch: WriteBatch) -> None:
        self._ensure_open()
        for key, value in batch.operations:
            if value is None:
                self._data.pop(bytes(key), None)
            else:
                self._data[bytes(key)] = bytes(value)

    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        self._ensure_open()
        for key in sorted(self._data):
            if key.startswith(prefix):
                yield key, self._data[key]

    def close(self) -> None:
        self._closed = True

    def __len__(self) -> int:
        return len(self._data)

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")
