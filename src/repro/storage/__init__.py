"""Storage engines: in-memory store and the LSM store (LevelDB role)."""

from repro.storage.api import KVStore, WriteBatch
from repro.storage.lsm import LSMStore
from repro.storage.memstore import MemStore
from repro.storage.memtable import MemTable
from repro.storage.sstable import BloomFilter, SSTable, write_sstable
from repro.storage.wal import WriteAheadLog, replay

__all__ = [
    "BloomFilter",
    "KVStore",
    "LSMStore",
    "MemStore",
    "MemTable",
    "SSTable",
    "WriteAheadLog",
    "WriteBatch",
    "replay",
    "write_sstable",
]
