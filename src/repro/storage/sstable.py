"""Immutable sorted string tables (SSTables).

Frozen snapshots of a memtable, written once and then only read.  Layout::

    [entry]*                 -- sorted by key
    [index]                  -- every key with its file offset
    [bloom]                  -- bloom filter bits
    footer: index_off:u64 | bloom_off:u64 | entry_count:u32 | crc:u32 | magic

    entry := flags:u8 | key_len:u32 | key | value_len:u32 | value
             (tombstones set flags bit 0 and omit the value section)

The index is loaded eagerly (it is small) and point lookups binary-search
it after a bloom-filter pre-check, mirroring LevelDB's read path.
"""

from __future__ import annotations

import bisect
import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

from repro.errors import CorruptionError

_FOOTER = struct.Struct("<QQII8s")
_U32 = struct.Struct("<I")
_MAGIC = b"REPROSST"

_FLAG_TOMBSTONE = 0x01


class BloomFilter:
    """Simple double-hash bloom filter over byte keys."""

    def __init__(self, bit_count: int, hash_count: int, bits: bytearray | None = None) -> None:
        self.bit_count = max(8, bit_count)
        self.hash_count = max(1, hash_count)
        self.bits = bits if bits is not None else bytearray((self.bit_count + 7) // 8)

    @classmethod
    def for_capacity(cls, capacity: int, bits_per_key: int = 10) -> "BloomFilter":
        """Size the filter for an expected number of keys (~1% FPR at 10)."""
        bit_count = max(64, capacity * bits_per_key)
        return cls(bit_count=bit_count, hash_count=7)

    def add(self, key: bytes) -> None:
        """Insert a key."""
        for position in self._positions(key):
            self.bits[position // 8] |= 1 << (position % 8)

    def may_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means possibly present."""
        return all(
            self.bits[position // 8] & (1 << (position % 8))
            for position in self._positions(key)
        )

    def _positions(self, key: bytes) -> Iterator[int]:
        h1 = zlib.crc32(key)
        h2 = zlib.adler32(key) or 1
        for i in range(self.hash_count):
            yield (h1 + i * h2) % self.bit_count

    def to_bytes(self) -> bytes:
        """Serialise for the SSTable bloom section."""
        return _U32.pack(self.bit_count) + _U32.pack(self.hash_count) + bytes(self.bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        """Parse the bloom section."""
        (bit_count,) = _U32.unpack_from(data, 0)
        (hash_count,) = _U32.unpack_from(data, 4)
        return cls(bit_count, hash_count, bytearray(data[8:]))


def write_sstable(path: str | Path, entries: list[tuple[bytes, bytes | None]]) -> None:
    """Write sorted ``(key, value_or_tombstone)`` entries to a new table.

    ``entries`` must be sorted by key with no duplicates; this is the
    memtable's contract.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    bloom = BloomFilter.for_capacity(len(entries))
    index_parts: list[bytes] = []
    body = bytearray()
    for key, value in entries:
        offset = len(body)
        index_parts.append(_U32.pack(len(key)) + key + struct.pack("<Q", offset))
        flags = _FLAG_TOMBSTONE if value is None else 0
        body.append(flags)
        body.extend(_U32.pack(len(key)))
        body.extend(key)
        if value is not None:
            body.extend(_U32.pack(len(value)))
            body.extend(value)
        bloom.add(key)
    index_blob = b"".join(index_parts)
    bloom_blob = bloom.to_bytes()
    index_off = len(body)
    bloom_off = index_off + len(index_blob)
    crc = zlib.crc32(bytes(body) + index_blob + bloom_blob)
    footer = _FOOTER.pack(index_off, bloom_off, len(entries), crc, _MAGIC)
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    with open(tmp_path, "wb") as out:
        out.write(body)
        out.write(index_blob)
        out.write(bloom_blob)
        out.write(footer)
        out.flush()
        # The manifest may reference this table the moment we return, so
        # the data must be durable before the rename publishes it.
        os.fsync(out.fileno())
    tmp_path.replace(path)


class SSTable:
    """Reader for one table file; index and bloom stay in memory."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        data = self.path.read_bytes()
        if len(data) < _FOOTER.size:
            raise CorruptionError(f"{self.path}: file too small")
        index_off, bloom_off, entry_count, crc, magic = _FOOTER.unpack(
            data[-_FOOTER.size :]
        )
        if magic != _MAGIC:
            raise CorruptionError(f"{self.path}: bad magic {magic!r}")
        payload = data[: -_FOOTER.size]
        if zlib.crc32(payload) != crc:
            raise CorruptionError(f"{self.path}: checksum mismatch")
        self._body = payload[:index_off]
        self._keys: list[bytes] = []
        self._offsets: list[int] = []
        self._parse_index(payload[index_off:bloom_off], entry_count)
        self.bloom = BloomFilter.from_bytes(payload[bloom_off:])
        self.entry_count = entry_count

    def _parse_index(self, blob: bytes, entry_count: int) -> None:
        offset = 0
        for _ in range(entry_count):
            (key_len,) = _U32.unpack_from(blob, offset)
            offset += _U32.size
            key = blob[offset : offset + key_len]
            offset += key_len
            (entry_off,) = struct.unpack_from("<Q", blob, offset)
            offset += 8
            self._keys.append(key)
            self._offsets.append(entry_off)

    @property
    def smallest_key(self) -> bytes | None:
        """First key in the table, or ``None`` when empty."""
        return self._keys[0] if self._keys else None

    @property
    def largest_key(self) -> bytes | None:
        """Last key in the table, or ``None`` when empty."""
        return self._keys[-1] if self._keys else None

    def get(self, key: bytes) -> tuple[bool, bytes | None]:
        """``(present, value)``; a present tombstone yields ``(True, None)``."""
        if not self.bloom.may_contain(key):
            return False, None
        position = bisect.bisect_left(self._keys, key)
        if position >= len(self._keys) or self._keys[position] != key:
            return False, None
        return True, self._read_entry(self._offsets[position])[1]

    def items(self) -> Iterator[tuple[bytes, bytes | None]]:
        """All entries in key order, tombstones included."""
        for offset in self._offsets:
            yield self._read_entry(offset)

    def _read_entry(self, offset: int) -> tuple[bytes, bytes | None]:
        flags = self._body[offset]
        (key_len,) = _U32.unpack_from(self._body, offset + 1)
        key_start = offset + 1 + _U32.size
        key = self._body[key_start : key_start + key_len]
        if flags & _FLAG_TOMBSTONE:
            return key, None
        value_start = key_start + key_len
        (value_len,) = _U32.unpack_from(self._body, value_start)
        value = self._body[value_start + _U32.size : value_start + _U32.size + value_len]
        return key, value
