"""Write-ahead log with per-record checksums.

Every mutation of the LSM store is appended here before it touches the
memtable, so acknowledged writes survive a crash.  Record format::

    [u32 crc32][u32 payload_len][payload]
    payload := op:u8 | key_len:u32 | key | value_len:u32 | value

``op`` is 0 for delete (no value section) and 1 for put.  Replay stops at
the first corrupt or truncated record — the tail beyond a torn write is
discarded, matching LevelDB semantics.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

from repro.errors import CorruptionError, StorageError

_HEADER = struct.Struct("<II")
_U32 = struct.Struct("<I")

OP_DELETE = 0
OP_PUT = 1


class WriteAheadLog:
    """Append-only durable log of put/delete records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")

    def append_put(self, key: bytes, value: bytes) -> None:
        """Log an insert/overwrite."""
        self._append(_encode_payload(OP_PUT, key, value))

    def append_delete(self, key: bytes) -> None:
        """Log a deletion."""
        self._append(_encode_payload(OP_DELETE, key, b""))

    def append_many(self, operations: list[tuple[bytes, bytes | None]]) -> None:
        """Log a batch of operations with a single flush."""
        chunks = []
        for key, value in operations:
            if value is None:
                payload = _encode_payload(OP_DELETE, key, b"")
            else:
                payload = _encode_payload(OP_PUT, key, value)
            chunks.append(_frame(payload))
        self._write(b"".join(chunks))

    def sync(self) -> None:
        """Force the OS to persist buffered records."""
        self._ensure_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    def truncate(self) -> None:
        """Discard all records (called after a successful memtable flush)."""
        self._ensure_open()
        self._file.close()
        self._file = open(self.path, "wb")
        self._file.flush()
        self._file = open(self.path, "ab")

    def close(self) -> None:
        """Flush and close the log file."""
        if self._file.closed:
            return
        self._file.flush()
        self._file.close()

    def _append(self, payload: bytes) -> None:
        self._write(_frame(payload))

    def _write(self, data: bytes) -> None:
        self._ensure_open()
        self._file.write(data)
        self._file.flush()

    def _ensure_open(self) -> None:
        if self._file.closed:
            raise StorageError("write-ahead log is closed")


def replay(path: str | Path, strict: bool = False) -> Iterator[tuple[bytes, bytes | None]]:
    """Yield ``(key, value_or_None)`` for every intact record in the log.

    With ``strict=False`` (recovery mode) replay stops silently at the
    first torn or corrupt record; with ``strict=True`` it raises
    :class:`~repro.errors.CorruptionError` instead (used by tests and by
    integrity audits).
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, "rb") as log_file:
        data = log_file.read()
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            if strict:
                raise CorruptionError("truncated record header")
            return
        crc, length = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        if offset + length > total:
            if strict:
                raise CorruptionError("truncated record payload")
            return
        payload = data[offset : offset + length]
        offset += length
        if zlib.crc32(payload) != crc:
            if strict:
                raise CorruptionError("record checksum mismatch")
            return
        yield _decode_payload(payload)


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(zlib.crc32(payload), len(payload)) + payload


def _encode_payload(op: int, key: bytes, value: bytes) -> bytes:
    parts = [bytes([op]), _U32.pack(len(key)), key]
    if op == OP_PUT:
        parts.append(_U32.pack(len(value)))
        parts.append(value)
    return b"".join(parts)


def _decode_payload(payload: bytes) -> tuple[bytes, bytes | None]:
    op = payload[0]
    (key_len,) = _U32.unpack_from(payload, 1)
    key_start = 1 + _U32.size
    key = payload[key_start : key_start + key_len]
    if op == OP_DELETE:
        return key, None
    if op != OP_PUT:
        raise CorruptionError(f"unknown WAL opcode {op}")
    value_start = key_start + key_len
    (value_len,) = _U32.unpack_from(payload, value_start)
    value = payload[value_start + _U32.size : value_start + _U32.size + value_len]
    return key, value
