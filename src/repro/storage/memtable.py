"""The mutable in-memory layer of the LSM store.

Holds recent writes (including tombstones) until the table grows past the
flush threshold and is frozen into an SSTable.  Deletions are recorded as
tombstones so they can shadow older SSTable entries during reads and be
dropped only at full compaction.
"""

from __future__ import annotations

from typing import Iterator

TOMBSTONE = None
"""Sentinel stored for deleted keys."""


class MemTable:
    """Unordered write buffer with ordered iteration on demand."""

    def __init__(self) -> None:
        self._entries: dict[bytes, bytes | None] = {}
        self._byte_size = 0

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite; size accounting tracks the live payload."""
        self._account(key, value)
        self._entries[key] = value

    def delete(self, key: bytes) -> None:
        """Record a tombstone for ``key``."""
        self._account(key, b"")
        self._entries[key] = TOMBSTONE

    def get(self, key: bytes) -> tuple[bool, bytes | None]:
        """Return ``(present, value)``.

        ``present`` is True when the memtable has *an opinion* about the
        key — including a tombstone, in which case ``value`` is ``None``.
        """
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    def items(self) -> Iterator[tuple[bytes, bytes | None]]:
        """All entries (tombstones included) in ascending key order."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    @property
    def entry_count(self) -> int:
        """Number of keys with an entry (tombstones included)."""
        return len(self._entries)

    @property
    def byte_size(self) -> int:
        """Approximate retained bytes, used for the flush trigger."""
        return self._byte_size

    def clear(self) -> None:
        """Drop everything (after a successful flush)."""
        self._entries.clear()
        self._byte_size = 0

    def _account(self, key: bytes, value: bytes) -> None:
        previous = self._entries.get(key)
        if previous is not None:
            self._byte_size -= len(previous)
        elif key not in self._entries:
            self._byte_size += len(key)
        self._byte_size += len(value)

    def __len__(self) -> int:
        return len(self._entries)
