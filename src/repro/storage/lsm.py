"""Log-structured merge store (the LevelDB substitute).

Write path: WAL append -> memtable; the memtable freezes into a new
SSTable when it exceeds ``flush_bytes``.  Read path: memtable, then an
optional bounded block cache, then SSTables newest-first (bloom filters
skip most).  When the number of tables exceeds ``compaction_threshold``
they are merge-compacted into a single table and tombstones are dropped;
with ``background_compaction`` the merge runs on a worker thread while
reads keep serving the old tables, and the swap happens only after the
merged table is fsynced and the manifest updated.

Live tables are tracked in a ``MANIFEST`` file (one table file name per
line, oldest first), rewritten atomically (tmp + fsync + rename).  The
manifest is what makes compaction crash-safe: the merged table drops
tombstones, so it must only become visible *atomically together with*
the removal of the inputs — a crash between merged-table write and
manifest swap leaves the old manifest in charge, the orphaned merged
table is deleted on recovery, and no deleted key can resurrect.
Directories created by older versions (no manifest) are adopted by
loading tables in file-name order and writing a manifest immediately.

The store recovers after a crash by loading every SSTable the manifest
names and replaying the WAL into a fresh memtable.
"""

from __future__ import annotations

import heapq
import os
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Iterator

from repro.analysis import race
from repro.errors import CorruptionError, StorageError
from repro.obs.tracer import Tracer, maybe_span
from repro.state.cache import CacheStats
from repro.storage.api import KVStore, WriteBatch, _check_key
from repro.storage.memtable import MemTable
from repro.storage.sstable import SSTable, write_sstable
from repro.storage.wal import WriteAheadLog, replay

DEFAULT_FLUSH_BYTES = 4 * 1024 * 1024
DEFAULT_COMPACTION_THRESHOLD = 8
MANIFEST_NAME = "MANIFEST"


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync (durability of renames on POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class LSMStore(KVStore):
    """Durable ordered store backed by a WAL, a memtable, and SSTables.

    ``block_cache_size`` bounds an LRU cache of point-lookup results in
    front of the SSTables (the LevelDB block-cache role); hit/miss
    accounting lives in :attr:`cache_stats`.  ``background_compaction``
    moves merges onto a single worker thread; user-facing operations
    stay single-threaded (the store is not a concurrent map), only the
    compaction job runs concurrently and installs its result under a
    lock.  ``tracer`` (optional) records ``lsm.compact_bg`` spans and
    ``lsm.block_cache`` summaries.
    """

    def __init__(
        self,
        directory: str | Path,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
        compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
        block_cache_size: int = 0,
        background_compaction: bool = False,
        tracer: Tracer | None = None,
    ) -> None:
        if flush_bytes <= 0:
            raise StorageError("flush_bytes must be positive")
        if compaction_threshold < 2:
            raise StorageError("compaction_threshold must be at least 2")
        if block_cache_size < 0:
            raise StorageError("block_cache_size must be non-negative")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.flush_bytes = flush_bytes
        self.compaction_threshold = compaction_threshold
        self.background_compaction = background_compaction
        self.tracer = tracer
        self._memtable = MemTable()
        self._tables: list[SSTable] = []  # oldest first
        self._next_table_id = 0
        self._closed = False
        self._lock = threading.RLock()
        self._compaction_pool: ThreadPoolExecutor | None = None
        self._compaction_future: "Future[None] | None" = None
        self._block_cache: "OrderedDict[bytes, bytes | None] | None" = (
            OrderedDict() if block_cache_size > 0 else None
        )
        self._block_cache_size = block_cache_size
        self.cache_stats = CacheStats() if block_cache_size > 0 else None
        self._load_tables()
        self._wal = WriteAheadLog(self.directory / "wal.log")
        self._recover()

    # ------------------------------------------------------------------ API

    def get(self, key: bytes) -> bytes | None:
        self._ensure_open()
        _check_key(key)
        key = bytes(key)
        present, value = self._memtable.get(key)
        if present:
            return value
        cache = self._block_cache
        if cache is not None and self.cache_stats is not None:
            if key in cache:
                cache.move_to_end(key)
                self.cache_stats.record_hit()
                return cache[key]
            self.cache_stats.record_miss()
        value = self._table_lookup(key)
        if cache is not None and self.cache_stats is not None:
            cache[key] = value
            while len(cache) > self._block_cache_size:
                cache.popitem(last=False)
                self.cache_stats.record_eviction()
        return value

    def _table_lookup(self, key: bytes) -> bytes | None:
        # Single attribute load: compaction publishes a *new* list under
        # the GIL and never mutates an installed one, so a lock-free read
        # observes either the old or the new stack (relaxed by design —
        # waived for the sanitizer, see _compact_install).
        race.trace_read(("lsm", id(self), "tables"), relaxed=True)
        tables = self._tables  # local ref: compaction swaps, never mutates
        for table in reversed(tables):
            present, value = table.get(key)
            if present:
                return value
        return None

    def put(self, key: bytes, value: bytes) -> None:
        self._ensure_open()
        _check_key(key)
        if value is None:
            raise StorageError("value must not be None; use delete()")
        key, value = bytes(key), bytes(value)
        self._wal.append_put(key, value)
        self._memtable.put(key, value)
        self._invalidate_cache(key)
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        self._ensure_open()
        _check_key(key)
        key = bytes(key)
        self._wal.append_delete(key)
        self._memtable.delete(key)
        self._invalidate_cache(key)
        self._maybe_flush()

    def write(self, batch: WriteBatch) -> None:
        self._ensure_open()
        operations = [
            (bytes(key), None if value is None else bytes(value))
            for key, value in batch.operations
        ]
        self._wal.append_many(operations)
        for key, value in operations:
            if value is None:
                self._memtable.delete(key)
            else:
                self._memtable.put(key, value)
            self._invalidate_cache(key)
        self._maybe_flush()

    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        self._ensure_open()
        for key, value in self._merged_items():
            if value is None:
                continue
            if key.startswith(prefix):
                yield key, value

    def scan_range(
        self, start: bytes = b"", end: bytes | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Ordered range scan with early termination.

        The merged iterator is already key-ordered, so iteration stops as
        soon as ``end`` is reached instead of draining every table.
        """
        self._ensure_open()
        for key, value in self._merged_items():
            if value is None or key < start:
                continue
            if end is not None and key >= end:
                break
            yield key, value

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self.wait_compaction()
        if self._compaction_pool is not None:
            self._compaction_pool.shutdown(wait=True)
            self._compaction_pool = None
        self._wal.close()
        self._closed = True

    # ----------------------------------------------------------- lifecycle

    def flush(self) -> None:
        """Freeze the memtable into a new SSTable and truncate the WAL."""
        self._ensure_open()
        if len(self._memtable) == 0:
            return
        with self._lock:
            table_id = self._next_table_id
            self._next_table_id += 1
        path = self._table_path(table_id)
        write_sstable(path, list(self._memtable.items()))
        with self._lock:
            race.lock_acquired(("lsm-tables", id(self)))
            race.trace_write(("lsm", id(self), "tables"), relaxed=True)
            self._tables.append(SSTable(path))
            self._write_manifest()
            race.lock_released(("lsm-tables", id(self)))
        self._memtable.clear()
        self._wal.truncate()
        if self.cache_stats is not None and self._block_cache is not None:
            with maybe_span(self.tracer, "lsm.block_cache") as span:
                span.set(
                    hits=self.cache_stats.hits,
                    misses=self.cache_stats.misses,
                    evictions=self.cache_stats.evictions,
                    cached=len(self._block_cache),
                )
        self._maybe_compact()

    def compact(self) -> None:
        """Merge every SSTable into one, dropping shadowed data and tombstones.

        Synchronous variant: builds and installs in the calling thread.
        """
        self._ensure_open()
        with self._lock:
            inputs = list(self._tables)
        if len(inputs) <= 1:
            return
        merged = self._compact_build(inputs)
        self._compact_install(inputs, merged)

    def wait_compaction(self) -> None:
        """Block until the in-flight background merge (if any) finishes.

        Re-raises any exception the compaction job died with.
        """
        future = self._compaction_future
        if future is not None:
            future.result()
            race.hb_acquire(("lsm-compact-done", id(self)))

    @property
    def table_count(self) -> int:
        """Number of live SSTables (compaction observability)."""
        return len(self._tables)

    # ------------------------------------------------------------ internals

    def _invalidate_cache(self, key: bytes) -> None:
        if self._block_cache is not None:
            self._block_cache.pop(key, None)

    def _maybe_flush(self) -> None:
        if self._memtable.byte_size >= self.flush_bytes:
            self.flush()

    def _maybe_compact(self) -> None:
        if len(self._tables) <= self.compaction_threshold:
            return
        if not self.background_compaction:
            self.compact()
            return
        future = self._compaction_future
        if future is not None and not future.done():
            return  # one merge in flight at a time
        if future is not None:
            future.result()  # surface failures from the previous job
            race.hb_acquire(("lsm-compact-done", id(self)))
        with self._lock:
            inputs = list(self._tables)
        if len(inputs) <= 1:
            return
        if self._compaction_pool is None:
            self._compaction_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-lsm-compact"
            )
        race.hb_release(("lsm-compact-start", id(self)))
        self._compaction_future = self._compaction_pool.submit(
            self._compact_job, inputs
        )

    def _compact_job(self, inputs: list[SSTable]) -> None:
        race.hb_acquire(("lsm-compact-start", id(self)))
        with maybe_span(self.tracer, "lsm.compact_bg") as span:
            merged = self._compact_build(inputs)
            self._compact_install(inputs, merged)
            span.set(inputs=len(inputs), entries=merged.entry_count)
        race.hb_release(("lsm-compact-done", id(self)))

    def _compact_build(self, inputs: list[SSTable]) -> SSTable:
        """Write (and fsync) the merged table; reads are untouched.

        The merged table covers the *oldest prefix* of the table stack,
        so dropping tombstones is safe: nothing older remains to shadow.
        It is not yet live — :meth:`_compact_install` publishes it.
        """
        with self._lock:
            table_id = self._next_table_id
            self._next_table_id += 1
        survivors = [
            (key, value)
            for key, value in _merge_newest_wins([t.items() for t in inputs])
            if value is not None
        ]
        path = self._table_path(table_id)
        write_sstable(path, survivors)
        return SSTable(path)

    def _compact_install(self, inputs: list[SSTable], merged: SSTable) -> None:
        """Swap the manifest: merged table replaces the input prefix.

        Tables flushed while the merge ran sit after the inputs in the
        stack and stay live unchanged.  Readers that grabbed the old
        table list keep working — table bodies are memory-resident, so
        unlinking the input files cannot tear an in-flight read.
        """
        with self._lock:
            race.lock_acquired(("lsm-tables", id(self)))
            # Relaxed publication: one attribute store of a fresh list;
            # lock-free readers (_table_lookup) see old or new, never a
            # torn stack.  The lock orders it against flush()'s append.
            race.trace_write(("lsm", id(self), "tables"), relaxed=True)
            self._tables = [merged] + self._tables[len(inputs):]
            self._write_manifest()
            race.lock_released(("lsm-tables", id(self)))
        for table in inputs:
            table.path.unlink(missing_ok=True)

    def _table_path(self, table_id: int) -> Path:
        return self.directory / f"table-{table_id:08d}.sst"

    def _manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _write_manifest(self) -> None:
        """Atomically persist the live table list (tmp + fsync + rename)."""
        payload = "".join(f"{table.path.name}\n" for table in self._tables)
        tmp = self._manifest_path().with_suffix(".tmp")
        with open(tmp, "wb") as out:
            out.write(payload.encode("ascii"))
            out.flush()
            os.fsync(out.fileno())
        tmp.replace(self._manifest_path())
        _fsync_dir(self.directory)

    def _load_tables(self) -> None:
        manifest = self._manifest_path()
        if manifest.exists():
            names = [line for line in manifest.read_text().splitlines() if line]
            for name in names:
                path = self.directory / name
                try:
                    self._tables.append(SSTable(path))
                except OSError as exc:
                    raise CorruptionError(
                        f"manifest names missing table {path.name}"
                    ) from exc
                self._note_table_id(path)
            # Orphans: tables written but never installed in the manifest
            # (a crash mid-flush or mid-compaction).  Their ids stay
            # retired so a fresh table can never collide with stale data.
            listed = set(names)
            for path in sorted(self.directory.glob("table-*.sst")):
                if path.name not in listed:
                    self._note_table_id(path)
                    path.unlink(missing_ok=True)
            return
        # Legacy directory (pre-manifest): adopt by file-name order.
        for path in sorted(self.directory.glob("table-*.sst")):
            self._tables.append(SSTable(path))
            self._note_table_id(path)
        if self._tables:
            self._write_manifest()

    def _note_table_id(self, path: Path) -> None:
        table_id = int(path.stem.split("-")[1])
        self._next_table_id = max(self._next_table_id, table_id + 1)

    def _recover(self) -> None:
        for key, value in replay(self.directory / "wal.log"):
            if value is None:
                self._memtable.delete(key)
            else:
                self._memtable.put(key, value)

    def _merged_items(self) -> Iterator[tuple[bytes, bytes | None]]:
        """Merge memtable and tables; newest opinion per key wins."""
        sources: list[Iterator[tuple[bytes, bytes | None]]] = [
            table.items() for table in self._tables
        ]
        sources.append(self._memtable.items())
        yield from _merge_newest_wins(sources)

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")


def _decorate(
    source: Iterator[tuple[bytes, bytes | None]], priority: int
) -> Iterator[tuple[bytes, int, bytes | None]]:
    """Tag entries with a merge priority (early binding of ``priority``)."""
    for key, value in source:
        yield key, priority, value


def _merge_newest_wins(
    sources: list[Iterator[tuple[bytes, bytes | None]]],
) -> Iterator[tuple[bytes, bytes | None]]:
    """Heap-merge ordered sources; on duplicate keys the last source wins.

    Sources are ordered oldest-first, so the decorated priority (negated
    index) makes the newest source's entry sort first for equal keys.
    """
    decorated = [_decorate(source, -index) for index, source in enumerate(sources)]
    last_key: bytes | None = None
    for key, _, value in heapq.merge(*decorated):
        if key == last_key:
            continue
        last_key = key
        yield key, value
