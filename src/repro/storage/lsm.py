"""Log-structured merge store (the LevelDB substitute).

Write path: WAL append -> memtable; the memtable freezes into a new
SSTable when it exceeds ``flush_bytes``.  Read path: memtable, then
SSTables newest-first (bloom filters skip most).  When the number of
tables exceeds ``compaction_threshold`` they are merge-compacted into a
single table and tombstones are dropped.

The store recovers after a crash by reloading every SSTable named in the
manifest order (file names carry a monotonically increasing sequence
number) and replaying the WAL into a fresh memtable.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterator

from repro.errors import StorageError
from repro.storage.api import KVStore, WriteBatch, _check_key
from repro.storage.memtable import MemTable
from repro.storage.sstable import SSTable, write_sstable
from repro.storage.wal import WriteAheadLog, replay

DEFAULT_FLUSH_BYTES = 4 * 1024 * 1024
DEFAULT_COMPACTION_THRESHOLD = 8


class LSMStore(KVStore):
    """Durable ordered store backed by a WAL, a memtable, and SSTables."""

    def __init__(
        self,
        directory: str | Path,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
        compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
    ) -> None:
        if flush_bytes <= 0:
            raise StorageError("flush_bytes must be positive")
        if compaction_threshold < 2:
            raise StorageError("compaction_threshold must be at least 2")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.flush_bytes = flush_bytes
        self.compaction_threshold = compaction_threshold
        self._memtable = MemTable()
        self._tables: list[SSTable] = []  # oldest first
        self._next_table_id = 0
        self._closed = False
        self._load_tables()
        self._wal = WriteAheadLog(self.directory / "wal.log")
        self._recover()

    # ------------------------------------------------------------------ API

    def get(self, key: bytes) -> bytes | None:
        self._ensure_open()
        _check_key(key)
        key = bytes(key)
        present, value = self._memtable.get(key)
        if present:
            return value
        for table in reversed(self._tables):
            present, value = table.get(key)
            if present:
                return value
        return None

    def put(self, key: bytes, value: bytes) -> None:
        self._ensure_open()
        _check_key(key)
        if value is None:
            raise StorageError("value must not be None; use delete()")
        key, value = bytes(key), bytes(value)
        self._wal.append_put(key, value)
        self._memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        self._ensure_open()
        _check_key(key)
        key = bytes(key)
        self._wal.append_delete(key)
        self._memtable.delete(key)
        self._maybe_flush()

    def write(self, batch: WriteBatch) -> None:
        self._ensure_open()
        operations = [
            (bytes(key), None if value is None else bytes(value))
            for key, value in batch.operations
        ]
        self._wal.append_many(operations)
        for key, value in operations:
            if value is None:
                self._memtable.delete(key)
            else:
                self._memtable.put(key, value)
        self._maybe_flush()

    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        self._ensure_open()
        for key, value in self._merged_items():
            if value is None:
                continue
            if key.startswith(prefix):
                yield key, value

    def scan_range(
        self, start: bytes = b"", end: bytes | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Ordered range scan with early termination.

        The merged iterator is already key-ordered, so iteration stops as
        soon as ``end`` is reached instead of draining every table.
        """
        self._ensure_open()
        for key, value in self._merged_items():
            if value is None or key < start:
                continue
            if end is not None and key >= end:
                break
            yield key, value

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._wal.close()
        self._closed = True

    # ----------------------------------------------------------- lifecycle

    def flush(self) -> None:
        """Freeze the memtable into a new SSTable and truncate the WAL."""
        self._ensure_open()
        if len(self._memtable) == 0:
            return
        path = self._table_path(self._next_table_id)
        write_sstable(path, list(self._memtable.items()))
        self._tables.append(SSTable(path))
        self._next_table_id += 1
        self._memtable.clear()
        self._wal.truncate()
        if len(self._tables) > self.compaction_threshold:
            self.compact()

    def compact(self) -> None:
        """Merge every SSTable into one, dropping shadowed data and tombstones."""
        self._ensure_open()
        if len(self._tables) <= 1:
            return
        survivors = [
            (key, value) for key, value in self._merged_table_items() if value is not None
        ]
        path = self._table_path(self._next_table_id)
        write_sstable(path, survivors)
        old_paths = [table.path for table in self._tables]
        self._tables = [SSTable(path)]
        self._next_table_id += 1
        for old in old_paths:
            old.unlink(missing_ok=True)

    @property
    def table_count(self) -> int:
        """Number of live SSTables (compaction observability)."""
        return len(self._tables)

    # ------------------------------------------------------------ internals

    def _maybe_flush(self) -> None:
        if self._memtable.byte_size >= self.flush_bytes:
            self.flush()

    def _table_path(self, table_id: int) -> Path:
        return self.directory / f"table-{table_id:08d}.sst"

    def _load_tables(self) -> None:
        paths = sorted(self.directory.glob("table-*.sst"))
        for path in paths:
            self._tables.append(SSTable(path))
            table_id = int(path.stem.split("-")[1])
            self._next_table_id = max(self._next_table_id, table_id + 1)

    def _recover(self) -> None:
        for key, value in replay(self.directory / "wal.log"):
            if value is None:
                self._memtable.delete(key)
            else:
                self._memtable.put(key, value)

    def _merged_items(self) -> Iterator[tuple[bytes, bytes | None]]:
        """Merge memtable and tables; newest opinion per key wins."""
        sources: list[Iterator[tuple[bytes, bytes | None]]] = [
            table.items() for table in self._tables
        ]
        sources.append(self._memtable.items())
        yield from _merge_newest_wins(sources)

    def _merged_table_items(self) -> Iterator[tuple[bytes, bytes | None]]:
        """Like :meth:`_merged_items` but over SSTables only (compaction)."""
        yield from _merge_newest_wins([table.items() for table in self._tables])

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")


def _decorate(
    source: Iterator[tuple[bytes, bytes | None]], priority: int
) -> Iterator[tuple[bytes, int, bytes | None]]:
    """Tag entries with a merge priority (early binding of ``priority``)."""
    for key, value in source:
        yield key, priority, value


def _merge_newest_wins(
    sources: list[Iterator[tuple[bytes, bytes | None]]],
) -> Iterator[tuple[bytes, bytes | None]]:
    """Heap-merge ordered sources; on duplicate keys the last source wins.

    Sources are ordered oldest-first, so the decorated priority (negated
    index) makes the newest source's entry sort first for equal keys.
    """
    decorated = [_decorate(source, -index) for index, source in enumerate(sources)]
    last_key: bytes | None = None
    for key, _, value in heapq.merge(*decorated):
        if key == last_key:
            continue
        last_key = key
        yield key, value
