"""Nezha reproduction: concurrency control for DAG-based blockchains.

Reproduces *Nezha: Exploiting Concurrency for Transaction Processing in
DAG-based Blockchains* (ICDCS 2022): the address-based conflict graph and
hierarchical sorting scheme, its CG/OCC/Serial baselines, and the full
substrate stack (OHIE-style DAG chain, SVM execution engine, MPT state,
LSM storage, simulated cluster).

Quickstart
----------
>>> from repro import NezhaScheduler, make_transaction
>>> txns = [
...     make_transaction(1, reads=["A2"], writes=["A1"]),
...     make_transaction(2, reads=["A3"], writes=["A2"]),
... ]
>>> result = NezhaScheduler().schedule(txns)
>>> result.schedule.committed
(1, 2)
"""

from repro.core import (
    NezhaConfig,
    NezhaResult,
    NezhaScheduler,
    Schedule,
    check_invariants,
)
from repro.txn import RWSet, Transaction, make_transaction

__version__ = "1.0.0"

__all__ = [
    "NezhaConfig",
    "NezhaResult",
    "NezhaScheduler",
    "RWSet",
    "Schedule",
    "Transaction",
    "__version__",
    "check_invariants",
    "make_transaction",
]
