"""Exception hierarchy shared across the repro packages.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while tests can
assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TransactionError(ReproError):
    """A transaction is malformed or used inconsistently."""


class SchedulingError(ReproError):
    """Concurrency control could not produce a valid schedule."""


class CycleBudgetExceeded(SchedulingError):
    """Johnson's cycle enumeration exceeded its configured budget.

    This models the out-of-memory failures the paper reports for the CG
    scheme under high skew: instead of exhausting host memory, the bounded
    enumerator raises this error, which harnesses report as a failed run.
    """

    def __init__(self, budget: int, message: str | None = None) -> None:
        self.budget = budget
        super().__init__(message or f"cycle enumeration exceeded budget of {budget}")


class CertificationError(SchedulingError):
    """The independent schedule certifier rejected an emitted schedule.

    Raised only when ``PipelineConfig.certify`` is on: the proof-carrying
    checker (:mod:`repro.analysis.certify`) rebuilt the conflict graph
    from the admitted read/write sets and found the commit schedule —
    or its abort accounting — inconsistent.
    """


class ExecutionError(ReproError):
    """The virtual machine failed to execute a transaction."""


class VMRevert(ExecutionError):
    """Contract code executed a REVERT; state effects must be discarded."""


class OutOfGas(ExecutionError):
    """Gas limit exhausted during contract execution."""


class InvalidOpcode(ExecutionError):
    """The virtual machine encountered an unknown or malformed instruction."""


class InvalidJump(ExecutionError):
    """A jump targeted a pc outside the code or inside an immediate.

    Landing inside a ``PUSH``/``ARG``/``DUP``/``SWAP`` immediate would
    execute operand bytes as opcodes; both the interpreter and the static
    verifier reject such targets against the same instruction-boundary set.
    """


class TruncatedBytecode(ExecutionError):
    """An instruction's immediate operand runs past the end of the code."""


class AssemblyError(ReproError):
    """SVM assembly source could not be assembled into bytecode."""


class StateError(ReproError):
    """Account state was accessed or mutated inconsistently."""


class TrieError(StateError):
    """Merkle Patricia Trie invariant violation or malformed node."""


class ProofError(TrieError):
    """A Merkle proof failed verification."""


class StorageError(ReproError):
    """The key-value storage engine failed."""


class CorruptionError(StorageError):
    """Persistent data (WAL or SSTable) failed checksum or format checks."""


class ChainError(ReproError):
    """DAG blockchain structural invariant violation."""


class BlockValidationError(ChainError):
    """A block failed validation (bad parent, state root, or PoW)."""


class ConsensusError(ChainError):
    """OHIE consensus bookkeeping failure."""


class NetworkError(ReproError):
    """Discrete-event network simulation failure."""


class WorkloadError(ReproError):
    """Workload generation was misconfigured."""
