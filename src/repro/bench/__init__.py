"""Benchmark harness: runners, sweeps, and table rendering."""

from repro.bench.harness import (
    SCHEMES,
    SchemeRun,
    bench_scale,
    make_scheme,
    repeat_runs,
    run_scheme,
    scaled,
    smallbank_epoch,
)
from repro.bench.tables import print_table, render_series, render_table

__all__ = [
    "SCHEMES",
    "SchemeRun",
    "bench_scale",
    "make_scheme",
    "print_table",
    "render_series",
    "render_table",
    "repeat_runs",
    "run_scheme",
    "scaled",
    "smallbank_epoch",
]
