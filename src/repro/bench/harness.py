"""Benchmark harness: scheme runners and parameter sweeps.

Benchmarks compare concurrency-control schemes over identical workloads.
``run_scheme`` executes one scheme over one batch and returns a uniform
:class:`SchemeRun` regardless of the scheme's own result type, so sweep
code never special-cases Nezha vs CG vs OCC.

Scale note: the paper's full scale (block size 200, up to 12 blocks,
Smallbank over 10k accounts) is the default, but ``bench_scale()`` lets
``REPRO_BENCH_SCALE`` shrink workloads proportionally for quick runs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.baselines.conflict_graph import CGConfig, CGScheduler
from repro.baselines.occ import OCCScheduler
from repro.baselines.pcc import PCCScheduler
from repro.baselines.serial import SerialScheduler
from repro.core.schedule import Schedule
from repro.core.scheduler import NezhaConfig, NezhaScheduler
from repro.obs.taxonomy import taxonomy_counts
from repro.txn.transaction import Transaction
from repro.workload.smallbank import SmallBankConfig, SmallBankWorkload
from repro.workload.generator import flatten_blocks


def bench_scale() -> float:
    """Workload scale factor from ``REPRO_BENCH_SCALE`` (default 1.0)."""
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def scaled(value: int) -> int:
    """Scale an integer workload parameter, keeping it at least 1."""
    return max(1, round(value * bench_scale()))


@dataclass
class SchemeRun:
    """Uniform result of running one scheme over one batch."""

    scheme: str
    schedule: Schedule
    total_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    failed: bool = False
    abort_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        """Committed transaction count."""
        return self.schedule.committed_count

    @property
    def abort_rate(self) -> float:
        """Aborted fraction of the batch."""
        return self.schedule.abort_rate


SchemeFactory = Callable[[], object]

SCHEMES: dict[str, SchemeFactory] = {
    "serial": SerialScheduler,
    "occ": OCCScheduler,
    "pcc": PCCScheduler,
    "cg": CGScheduler,
    "nezha": NezhaScheduler,
    "nezha-noreorder": lambda: NezhaScheduler(NezhaConfig(enable_reorder=False)),
}


def make_scheme(name: str, cycle_budget: int | None = None) -> object:
    """Instantiate a scheme by name (CG accepts a cycle budget)."""
    if name == "cg" and cycle_budget is not None:
        return CGScheduler(CGConfig(cycle_budget=cycle_budget))
    return SCHEMES[name]()


def run_scheme(scheme: object, transactions: Sequence[Transaction]) -> SchemeRun:
    """Execute one scheme over one batch with wall-clock timing."""
    start = time.perf_counter()
    result = scheme.schedule(transactions)
    elapsed = time.perf_counter() - start
    timings = getattr(result, "timings", None)
    phase_seconds = timings.as_dict() if timings is not None else {}
    if not phase_seconds and hasattr(result, "as_dict"):
        phase_seconds = result.as_dict()
    return SchemeRun(
        scheme=getattr(scheme, "name", type(scheme).__name__),
        schedule=result.schedule,
        total_seconds=elapsed,
        phase_seconds=phase_seconds,
        failed=bool(getattr(result, "failed", False)),
        abort_reasons=taxonomy_counts(
            result.schedule.aborted, getattr(result, "abort_reasons", None)
        ),
    )


def smallbank_epoch(
    block_concurrency: int,
    block_size: int,
    skew: float,
    seed: int = 0,
    account_count: int = 10_000,
) -> list[Transaction]:
    """One epoch's deduplicated transactions for the given parameters."""
    workload = SmallBankWorkload(
        SmallBankConfig(account_count=account_count, skew=skew, seed=seed)
    )
    return flatten_blocks(workload.generate_blocks(block_concurrency, block_size))


def repeat_runs(
    scheme_name: str,
    transactions: Sequence[Transaction],
    rounds: int = 3,
    cycle_budget: int | None = None,
) -> list[SchemeRun]:
    """Run a scheme several times over the same batch (fresh instances)."""
    return [
        run_scheme(make_scheme(scheme_name, cycle_budget), transactions)
        for _ in range(rounds)
    ]
