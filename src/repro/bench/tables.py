"""Plain-text table rendering for benchmark output.

Every benchmark prints the rows/series the paper's tables and figures
report; this module renders them with aligned columns so `pytest -s`
output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str | None = None,
) -> None:
    """Render and print, flanked by blank lines for readability."""
    print()
    print(render_table(title, headers, rows, note))
    print()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_series(
    title: str,
    x_values: Sequence[object],
    series: "dict[str, Sequence[float | None]]",
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render aligned numeric series as an ASCII chart (figures in text).

    Each series gets a marker letter; ``None`` values (failed runs) are
    skipped.  The y axis is linear from 0 to the maximum observed value.
    """
    markers = "abcdefghij"
    named = list(series.items())
    peak = max(
        (v for _, values in named for v in values if v is not None),
        default=0.0,
    )
    if peak <= 0:
        peak = 1.0
    width = len(x_values)
    grid = [[" "] * width for _ in range(height)]
    for index, (_, values) in enumerate(named):
        marker = markers[index % len(markers)]
        for column, value in enumerate(values):
            if value is None:
                continue
            row = height - 1 - int(round((value / peak) * (height - 1)))
            row = min(max(row, 0), height - 1)
            cell = grid[row][column]
            grid[row][column] = "*" if cell not in (" ", marker) else marker
    lines = [f"== {title} =="]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{peak:>10.1f} |"
        elif row_index == height - 1:
            label = f"{0.0:>10.1f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "  ".join(row))
    axis = " " * 10 + " +" + "-" * (3 * width - 2)
    lines.append(axis)
    lines.append(" " * 12 + "  ".join(str(x)[0] for x in x_values))
    lines.append("x: " + ", ".join(str(x) for x in x_values) + (f"   y: {y_label}" if y_label else ""))
    for index, (name, _) in enumerate(named):
        lines.append(f"  {markers[index % len(markers)]} = {name}   (* = overlap)")
    return "\n".join(lines)
