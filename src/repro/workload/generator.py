"""Generic synthetic workload generation.

Besides SmallBank, the analysis in Table I and several ablations use a
plain synthetic workload: each transaction reads and writes a
configurable number of Zipfian-selected addresses.  This module also
provides the epoch/block batching helpers shared by every benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import WorkloadError
from repro.txn.rwset import RWSet
from repro.txn.transaction import Transaction
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class SyntheticConfig:
    """Shape of a synthetic rw-set workload.

    Attributes
    ----------
    address_count:
        Size of the address population.
    reads_per_txn / writes_per_txn:
        Units per transaction (addresses may coincide under skew).
    skew:
        Zipfian exponent of address selection.
    seed:
        PRNG seed for reproducibility.
    """

    address_count: int = 10_000
    reads_per_txn: int = 2
    writes_per_txn: int = 2
    skew: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.reads_per_txn < 0 or self.writes_per_txn < 0:
            raise WorkloadError("reads/writes per transaction must be non-negative")
        if self.reads_per_txn + self.writes_per_txn == 0:
            raise WorkloadError("transactions must touch at least one address")


class SyntheticWorkload:
    """Generates value-less transactions with Zipfian rw-sets."""

    def __init__(self, config: SyntheticConfig | None = None) -> None:
        self.config = config or SyntheticConfig()
        self._sampler = ZipfSampler(
            population=self.config.address_count,
            skew=self.config.skew,
            seed=self.config.seed,
        )
        self._rng = random.Random(self.config.seed ^ 0x57A71C)
        self._next_txid = 0

    def generate(self, count: int) -> list[Transaction]:
        """Produce ``count`` transactions with fresh consecutive ids."""
        return [self._generate_one() for _ in range(count)]

    def generate_blocks(self, block_count: int, block_size: int) -> list[list[Transaction]]:
        """Produce one epoch's worth of concurrent blocks."""
        return [self.generate(block_size) for _ in range(block_count)]

    def _generate_one(self) -> Transaction:
        txid = self._next_txid
        self._next_txid += 1
        reads = {
            _address(self._sampler.sample()): None
            for _ in range(self.config.reads_per_txn)
        }
        writes = {
            _address(self._sampler.sample()): self._rng.randint(0, 1_000_000)
            for _ in range(self.config.writes_per_txn)
        }
        return Transaction(txid=txid, rwset=RWSet(reads=reads, writes=writes))


def _address(index: int) -> str:
    """Render a synthetic address; zero padding keeps lexicographic = numeric."""
    return f"addr:{index:06d}"


def flatten_blocks(blocks: Sequence[Sequence[Transaction]]) -> list[Transaction]:
    """All transactions of an epoch in ascending id order, duplicates dropped.

    Matches the paper's workflow: each node "picks transactions that first
    appear in all verified blocks".
    """
    seen: set[int] = set()
    out: list[Transaction] = []
    for block in blocks:
        for txn in block:
            if txn.txid in seen:
                continue
            seen.add(txn.txid)
            out.append(txn)
    out.sort(key=lambda t: t.txid)
    return out
