"""SmallBank benchmark workload (the paper's evaluation workload).

Six transaction types over per-customer checking and savings accounts;
each call picks its type uniformly and its customers from a Zipfian
distribution over ``account_count`` customers (the paper uses 10k).

Two representations are produced:

* *intents* — contract calls (``contract="smallbank"``) to be executed by
  the VM or the native contract during the speculative-execution phase;
* *summaries* — the same transactions with their read/write address sets
  precomputed analytically, for concurrency-control-only benchmarks that
  skip execution (the address sets of SmallBank operations are static
  functions of their arguments).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import WorkloadError
from repro.txn.rwset import Address, RWSet
from repro.txn.transaction import Transaction
from repro.workload.zipf import ZipfSampler

DEFAULT_ACCOUNT_COUNT = 10_000
"""The paper's account population."""

DEFAULT_INITIAL_BALANCE = 10_000
"""Opening balance of every checking and savings account."""


class SmallBankOp(enum.Enum):
    """The six SmallBank transaction types (five writers, one reader)."""

    UPDATE_SAVINGS = "updateSavings"
    UPDATE_BALANCE = "updateBalance"
    SEND_PAYMENT = "sendPayment"
    WRITE_CHECK = "writeCheck"
    AMALGAMATE = "almagate"  # the paper's (sic) spelling of amalgamate
    GET_BALANCE = "getBalance"


WRITE_OPS = (
    SmallBankOp.UPDATE_SAVINGS,
    SmallBankOp.UPDATE_BALANCE,
    SmallBankOp.SEND_PAYMENT,
    SmallBankOp.WRITE_CHECK,
    SmallBankOp.AMALGAMATE,
)


def savings_address(customer: int) -> Address:
    """State address of a customer's savings account."""
    return f"sav:{customer:06d}"


def checking_address(customer: int) -> Address:
    """State address of a customer's checking account."""
    return f"chk:{customer:06d}"


@dataclass(frozen=True)
class SmallBankConfig:
    """Workload shape parameters.

    Attributes
    ----------
    account_count:
        Number of customers (each owns one savings and one checking slot).
    skew:
        Zipfian exponent of account selection; 0 is uniform.
    seed:
        PRNG seed; identical configs generate identical workloads.
    read_only_fraction:
        Probability of ``getBalance``; the paper selects all six types
        uniformly, i.e. 1/6.
    delta_writes:
        Emit the commutative-delta form of the analytic summaries: the
        ``old + amount`` read-modify-writes of ``updateSavings``,
        ``updateBalance``, and ``sendPayment``'s destination become
        delta units — exactly the sites the static classifier proves on
        the contract bytecode, so CC-only benchmarks reproduce the
        delta-CC conflict structure without executing.
    """

    account_count: int = DEFAULT_ACCOUNT_COUNT
    skew: float = 0.0
    seed: int = 0
    read_only_fraction: float = 1.0 / 6.0
    delta_writes: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_only_fraction <= 1.0:
            raise WorkloadError("read_only_fraction must be within [0, 1]")


class SmallBankWorkload:
    """Generates SmallBank transactions with precomputed rw summaries."""

    def __init__(self, config: SmallBankConfig | None = None) -> None:
        self.config = config or SmallBankConfig()
        self._sampler = ZipfSampler(
            population=self.config.account_count,
            skew=self.config.skew,
            seed=self.config.seed,
        )
        self._rng = random.Random(self.config.seed ^ 0x5333DB)
        self._next_txid = 0

    def generate(self, count: int) -> list[Transaction]:
        """Produce ``count`` transactions with fresh consecutive ids."""
        return [self._generate_one() for _ in range(count)]

    def generate_blocks(self, block_count: int, block_size: int) -> list[list[Transaction]]:
        """Produce ``block_count`` concurrent blocks of ``block_size`` each.

        Models one epoch of a DAG-based blockchain with block concurrency
        ``block_count`` (the paper's ``omega``).
        """
        return [self.generate(block_size) for _ in range(block_count)]

    def stream(self) -> Iterator[Transaction]:
        """Endless transaction stream (for the network simulator's client)."""
        while True:
            yield self._generate_one()

    def _generate_one(self) -> Transaction:
        txid = self._next_txid
        self._next_txid += 1
        op = self._pick_op()
        amount = self._rng.randint(1, 100)
        if op in (SmallBankOp.SEND_PAYMENT, SmallBankOp.AMALGAMATE):
            src, dst = self._sampler.sample_distinct(2)
            args: tuple = (src, dst, amount) if op is SmallBankOp.SEND_PAYMENT else (src, dst)
            customers: tuple = (src, dst)
        else:
            customer = self._sampler.sample()
            args = (customer,) if op is SmallBankOp.GET_BALANCE else (customer, amount)
            customers = (customer,)
        rwset = rwset_for(
            op,
            customers,
            amount=amount,
            delta_writes=self.config.delta_writes,
        )
        return Transaction(
            txid=txid,
            rwset=rwset,
            sender=f"user:{customers[0]:06d}",
            contract="smallbank",
            function=op.value,
            args=args,
        )

    def _pick_op(self) -> SmallBankOp:
        """Pick an operation type.

        With the default ``read_only_fraction`` of 1/6 this matches the
        paper's uniform choice among the six types.
        """
        if self._rng.random() < self.config.read_only_fraction:
            return SmallBankOp.GET_BALANCE
        return self._rng.choice(WRITE_OPS)


def rwset_for(
    op: SmallBankOp,
    customers: Sequence[int],
    amount: int | None = None,
    delta_writes: bool = False,
) -> RWSet:
    """Analytic read/write address sets of one SmallBank operation.

    These match what the VM's read/write logger observes when executing
    the contract (asserted by integration tests), so CC-only benchmarks
    can skip execution without changing the conflict structure.  With
    ``delta_writes`` (and a concrete ``amount``) the provably commutative
    read-modify-writes become delta units, mirroring what the executor's
    static classification plus dynamic promotion produce; ``sendPayment``
    keeps the plain form when source and destination alias, exactly as
    the runtime alias check downgrades that case.
    """
    emit_deltas = delta_writes and amount is not None
    if op is SmallBankOp.UPDATE_SAVINGS:
        address = savings_address(customers[0])
        if emit_deltas:
            return RWSet.from_addresses([], [], deltas={address: amount})
        return RWSet.from_addresses([address], [address])
    if op is SmallBankOp.UPDATE_BALANCE:
        address = checking_address(customers[0])
        if emit_deltas:
            return RWSet.from_addresses([], [], deltas={address: amount})
        return RWSet.from_addresses([address], [address])
    if op is SmallBankOp.SEND_PAYMENT:
        src_chk = checking_address(customers[0])
        dst_chk = checking_address(customers[1])
        if emit_deltas and src_chk != dst_chk:
            return RWSet.from_addresses(
                [src_chk], [src_chk], deltas={dst_chk: amount}
            )
        return RWSet.from_addresses([src_chk, dst_chk], [src_chk, dst_chk])
    if op is SmallBankOp.WRITE_CHECK:
        savings = savings_address(customers[0])
        checking = checking_address(customers[0])
        return RWSet.from_addresses([savings, checking], [checking])
    if op is SmallBankOp.AMALGAMATE:
        src_sav = savings_address(customers[0])
        src_chk = checking_address(customers[0])
        dst_chk = checking_address(customers[1])
        return RWSet.from_addresses(
            [src_sav, src_chk, dst_chk], [src_sav, src_chk, dst_chk]
        )
    if op is SmallBankOp.GET_BALANCE:
        savings = savings_address(customers[0])
        checking = checking_address(customers[0])
        return RWSet.from_addresses([savings, checking], [])
    raise WorkloadError(f"unknown SmallBank operation: {op}")


def initial_state(config: SmallBankConfig | None = None) -> dict[Address, int]:
    """Opening balances for every account address in the population."""
    config = config or SmallBankConfig()
    state: dict[Address, int] = {}
    for customer in range(config.account_count):
        state[savings_address(customer)] = DEFAULT_INITIAL_BALANCE
        state[checking_address(customer)] = DEFAULT_INITIAL_BALANCE
    return state
