"""Mixed workloads: several generators sharing one transaction-id space.

Real chains carry heterogeneous traffic.  ``MixedWorkload`` interleaves
any generators exposing ``generate(count)`` (SmallBank, token, synthetic,
or custom) according to weights, re-issuing ids from a single global
counter so batches stay well-formed for the schedulers.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import WorkloadError
from repro.txn.transaction import Transaction


class MixedWorkload:
    """Weighted interleaving of several transaction generators."""

    def __init__(
        self,
        sources: Sequence[tuple[object, float]],
        seed: int = 0,
    ) -> None:
        if not sources:
            raise WorkloadError("mixed workload needs at least one source")
        total = sum(weight for _, weight in sources)
        if total <= 0:
            raise WorkloadError("source weights must sum to a positive value")
        self._sources = [(source, weight / total) for source, weight in sources]
        self._rng = random.Random(seed ^ 0x313BD)
        self._next_txid = 0

    def generate(self, count: int) -> list[Transaction]:
        """Produce ``count`` transactions drawn from the weighted sources."""
        out = []
        for _ in range(count):
            source = self._pick_source()
            txn = source.generate(1)[0]
            out.append(self._reissue(txn))
        return out

    def generate_blocks(self, block_count: int, block_size: int) -> list[list[Transaction]]:
        """Produce one epoch's worth of concurrent blocks."""
        return [self.generate(block_size) for _ in range(block_count)]

    def _pick_source(self):
        roll = self._rng.random()
        cumulative = 0.0
        for source, weight in self._sources:
            cumulative += weight
            if roll < cumulative:
                return source
        return self._sources[-1][0]

    def _reissue(self, txn: Transaction) -> Transaction:
        txid = self._next_txid
        self._next_txid += 1
        return Transaction(
            txid=txid,
            rwset=txn.rwset,
            sender=txn.sender,
            contract=txn.contract,
            function=txn.function,
            args=txn.args,
        )
