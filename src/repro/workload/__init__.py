"""Workload generation: SmallBank, synthetic rw-sets, Zipfian sampling."""

from repro.workload.generator import (
    SyntheticConfig,
    SyntheticWorkload,
    flatten_blocks,
)
from repro.workload.mixed import MixedWorkload
from repro.workload.smallbank import (
    DEFAULT_ACCOUNT_COUNT,
    DEFAULT_INITIAL_BALANCE,
    SmallBankConfig,
    SmallBankOp,
    SmallBankWorkload,
    checking_address,
    initial_state,
    rwset_for,
    savings_address,
)
from repro.workload.token import (
    TokenConfig,
    TokenWorkload,
    initial_token_state,
)
from repro.workload.trace import iter_trace, load_trace, save_trace, trace_info
from repro.workload.zipf import ZipfSampler, conflict_probability

__all__ = [
    "DEFAULT_ACCOUNT_COUNT",
    "DEFAULT_INITIAL_BALANCE",
    "MixedWorkload",
    "SmallBankConfig",
    "SmallBankOp",
    "SmallBankWorkload",
    "SyntheticConfig",
    "SyntheticWorkload",
    "TokenConfig",
    "TokenWorkload",
    "ZipfSampler",
    "checking_address",
    "conflict_probability",
    "flatten_blocks",
    "initial_state",
    "initial_token_state",
    "iter_trace",
    "load_trace",
    "save_trace",
    "trace_info",
    "rwset_for",
    "savings_address",
]
