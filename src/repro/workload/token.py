"""Token-transfer workload (a second contract workload besides SmallBank).

Models a fungible-token economy: mostly peer-to-peer transfers with some
approvals, delegated transfers, occasional mints, and balance queries.
Account selection is Zipfian, so skew concentrates transfers on hot
wallets (exchanges), producing the same contention spectrum the paper
studies with SmallBank hot accounts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.txn.rwset import Address, RWSet
from repro.txn.transaction import Transaction
from repro.vm.contracts.token import (
    SUPPLY_ADDRESS,
    allowance_address,
    balance_address,
)
from repro.workload.zipf import ZipfSampler

DEFAULT_HOLDER_COUNT = 10_000
DEFAULT_TOKEN_BALANCE = 1_000_000

_OP_WEIGHTS = (
    ("transfer", 0.60),
    ("approve", 0.10),
    ("transferFrom", 0.10),
    ("mint", 0.05),
    ("balanceOf", 0.15),
)


@dataclass(frozen=True)
class TokenConfig:
    """Token workload shape."""

    holder_count: int = DEFAULT_HOLDER_COUNT
    skew: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.holder_count < 2:
            raise WorkloadError("token workload needs at least two holders")


class TokenWorkload:
    """Generates token transactions with analytic rw summaries."""

    def __init__(self, config: TokenConfig | None = None) -> None:
        self.config = config or TokenConfig()
        self._sampler = ZipfSampler(
            population=self.config.holder_count,
            skew=self.config.skew,
            seed=self.config.seed,
        )
        self._rng = random.Random(self.config.seed ^ 0x70CE17)
        self._next_txid = 0

    def generate(self, count: int) -> list[Transaction]:
        """Produce ``count`` transactions with fresh consecutive ids."""
        return [self._generate_one() for _ in range(count)]

    def generate_blocks(self, block_count: int, block_size: int) -> list[list[Transaction]]:
        """Produce one epoch's worth of concurrent blocks."""
        return [self.generate(block_size) for _ in range(block_count)]

    def _generate_one(self) -> Transaction:
        txid = self._next_txid
        self._next_txid += 1
        op = self._pick_op()
        amount = self._rng.randint(1, 500)
        if op == "transfer":
            src, dst = self._sampler.sample_distinct(2)
            caller, args = src, (dst, amount)
            rwset = transfer_rwset(src, dst)
        elif op == "approve":
            owner, spender = self._sampler.sample_distinct(2)
            caller, args = owner, (spender, amount)
            rwset = approve_rwset(owner, spender)
        elif op == "transferFrom":
            owner, spender, dst = self._sampler.sample_distinct(3)
            caller, args = spender, (owner, dst, amount)
            rwset = transfer_from_rwset(owner, spender, dst)
        elif op == "mint":
            to = self._sampler.sample()
            caller, args = 0, (to, amount)
            rwset = mint_rwset(to)
        else:  # balanceOf
            holder = self._sampler.sample()
            caller, args = holder, (holder,)
            rwset = balance_of_rwset(holder)
        return Transaction(
            txid=txid,
            rwset=rwset,
            sender=f"user:{caller:06d}",
            contract="token",
            function=op,
            args=args,
        )

    def _pick_op(self) -> str:
        roll = self._rng.random()
        cumulative = 0.0
        for name, weight in _OP_WEIGHTS:
            cumulative += weight
            if roll < cumulative:
                return name
        return _OP_WEIGHTS[-1][0]


def transfer_rwset(src: int, dst: int) -> RWSet:
    """Analytic rw-set of ``transfer`` (matches execution)."""
    addresses = [balance_address(src), balance_address(dst)]
    return RWSet.from_addresses(addresses, addresses)


def approve_rwset(owner: int, spender: int) -> RWSet:
    """Analytic rw-set of ``approve`` (blind write)."""
    return RWSet.from_addresses([], [allowance_address(owner, spender)])


def transfer_from_rwset(owner: int, spender: int, dst: int) -> RWSet:
    """Analytic rw-set of ``transferFrom``."""
    reads = [
        allowance_address(owner, spender),
        balance_address(owner),
        balance_address(dst),
    ]
    writes = reads
    return RWSet.from_addresses(reads, writes)


def mint_rwset(to: int) -> RWSet:
    """Analytic rw-set of ``mint`` (touches the hot supply counter)."""
    addresses = [balance_address(to), SUPPLY_ADDRESS]
    return RWSet.from_addresses(addresses, addresses)


def balance_of_rwset(holder: int) -> RWSet:
    """Analytic rw-set of ``balanceOf`` (read-only)."""
    return RWSet.from_addresses([balance_address(holder)], [])


def initial_token_state(config: TokenConfig | None = None) -> dict[Address, int]:
    """Opening balances plus the supply counter."""
    config = config or TokenConfig()
    state: dict[Address, int] = {
        balance_address(holder): DEFAULT_TOKEN_BALANCE
        for holder in range(config.holder_count)
    }
    state[SUPPLY_ADDRESS] = DEFAULT_TOKEN_BALANCE * config.holder_count
    return state
