"""Zipfian account sampling.

The paper drives contention with a Zipfian access distribution over 10k
accounts: ``P(rank k) proportional to 1 / k^skew``.  ``skew = 0`` degrades
to the uniform distribution, matching the paper's convention.

The sampler precomputes the cumulative distribution once (``O(n)``) and
draws samples by binary search (``O(log n)``), which keeps even the
largest benchmark sweeps cheap.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterator, Sequence

from repro.errors import WorkloadError


class ZipfSampler:
    """Draws account indices in ``[0, population)`` with Zipfian skew.

    Parameters
    ----------
    population:
        Number of distinct items (the paper uses 10,000 accounts).
    skew:
        The Zipfian exponent; 0 means uniform.  The paper sweeps 0-1.0.
    seed:
        Seed for the internal PRNG; runs are reproducible given a seed.
    """

    def __init__(self, population: int, skew: float = 0.0, seed: int | None = None) -> None:
        if population <= 0:
            raise WorkloadError(f"population must be positive, got {population}")
        if skew < 0:
            raise WorkloadError(f"skew must be non-negative, got {skew}")
        self.population = population
        self.skew = skew
        self._rng = random.Random(seed)
        self._cdf = self._build_cdf(population, skew)

    @staticmethod
    def _build_cdf(population: int, skew: float) -> list[float] | None:
        """Cumulative weights; ``None`` marks the uniform fast path."""
        if skew == 0:
            return None
        weights = [1.0 / (rank**skew) for rank in range(1, population + 1)]
        return list(itertools.accumulate(weights))

    def sample(self) -> int:
        """Draw one index; rank 0 is the hottest item."""
        if self._cdf is None:
            return self._rng.randrange(self.population)
        point = self._rng.random() * self._cdf[-1]
        return bisect.bisect_left(self._cdf, point)

    def sample_distinct(self, count: int) -> list[int]:
        """Draw ``count`` pairwise-distinct indices.

        Used for operations touching several different accounts (e.g.
        ``sendPayment``).  Rejection sampling keeps the Zipfian shape.
        """
        if count > self.population:
            raise WorkloadError(
                f"cannot draw {count} distinct items from population {self.population}"
            )
        chosen: list[int] = []
        seen: set[int] = set()
        while len(chosen) < count:
            candidate = self.sample()
            if candidate not in seen:
                seen.add(candidate)
                chosen.append(candidate)
        return chosen

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` independent (possibly repeating) indices."""
        return [self.sample() for _ in range(count)]

    def probabilities(self) -> list[float]:
        """Exact access probability of each rank (analysis helper)."""
        if self._cdf is None:
            return [1.0 / self.population] * self.population
        total = self._cdf[-1]
        previous = 0.0
        probabilities = []
        for value in self._cdf:
            probabilities.append((value - previous) / total)
            previous = value
        return probabilities

    def stream(self) -> Iterator[int]:
        """Endless iterator of samples."""
        while True:
            yield self.sample()


def conflict_probability(probabilities: Sequence[float]) -> float:
    """Probability that two independent draws collide on the same item.

    This is the paper's per-pair conflict probability ``p`` for
    single-address transactions; used by the Table I analytical model.
    """
    return sum(p * p for p in probabilities)
