"""Workload trace recording and replay.

Benchmark comparability needs byte-identical inputs across runs, schemes,
and machines.  A *trace* is a JSON-lines file of transactions; replaying
one yields exactly the recorded batch, independent of generator version
or PRNG behaviour.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Iterator, Sequence

from repro.errors import WorkloadError
from repro.txn.codec import decode_transaction, encode_transaction
from repro.txn.transaction import Transaction

TRACE_VERSION = 1


def save_trace(path: str | Path, transactions: Sequence[Transaction]) -> int:
    """Write transactions to a trace file; returns the count written.

    Line 1 is a header record; each following line is one transaction's
    canonical binary encoding, base64-wrapped in JSON for greppability.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as out:
        header = {"version": TRACE_VERSION, "count": len(transactions)}
        out.write(json.dumps(header) + "\n")
        for txn in transactions:
            record = {
                "txid": txn.txid,
                "fn": f"{txn.contract or ''}.{txn.function}",
                "data": base64.b64encode(encode_transaction(txn)).decode(),
            }
            out.write(json.dumps(record) + "\n")
    return len(transactions)


def load_trace(path: str | Path) -> list[Transaction]:
    """Read every transaction from a trace file."""
    return list(iter_trace(path))


def iter_trace(path: str | Path) -> Iterator[Transaction]:
    """Stream transactions from a trace file."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"trace file {path} does not exist")
    with open(path) as source:
        header_line = source.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"malformed trace header: {exc}") from exc
        if header.get("version") != TRACE_VERSION:
            raise WorkloadError(
                f"unsupported trace version {header.get('version')!r}"
            )
        for line_no, line in enumerate(source, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                data = base64.b64decode(record["data"])
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise WorkloadError(f"bad trace record at line {line_no}: {exc}") from exc
            yield decode_transaction(data)


def trace_info(path: str | Path) -> dict:
    """The trace header plus basic shape statistics."""
    path = Path(path)
    transactions = load_trace(path)
    functions: dict[str, int] = {}
    addresses: set[str] = set()
    for txn in transactions:
        name = f"{txn.contract or 'raw'}.{txn.function or 'rwset'}"
        functions[name] = functions.get(name, 0) + 1
        addresses.update(txn.rwset.addresses)
    return {
        "count": len(transactions),
        "functions": dict(sorted(functions.items())),
        "distinct_addresses": len(addresses),
    }
