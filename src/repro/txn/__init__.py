"""Transaction model: read/write sets and speculative execution results."""

from repro.txn.codec import (
    decode_transaction,
    encode_transaction,
    simulation_result_from_wire,
    simulation_result_to_wire,
    transaction_from_wire,
    transaction_to_wire,
)
from repro.txn.rwset import Address, RWSet
from repro.txn.simulation import (
    SimulationBatch,
    SimulationResult,
    SimulationStatus,
    batch_from_transactions,
)
from repro.txn.transaction import Transaction, make_transaction

__all__ = [
    "Address",
    "RWSet",
    "SimulationBatch",
    "SimulationResult",
    "SimulationStatus",
    "Transaction",
    "batch_from_transactions",
    "decode_transaction",
    "encode_transaction",
    "make_transaction",
    "simulation_result_from_wire",
    "simulation_result_to_wire",
    "transaction_from_wire",
    "transaction_to_wire",
]
