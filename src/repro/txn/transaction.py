"""Transaction model shared by all concurrency-control schemes.

The paper orders transactions by their subscripts (ids); ids therefore act
as the deterministic tie-breaker everywhere.  A :class:`Transaction` is an
immutable description of *what* to run; the observed read/write sets are
attached after speculative execution (see :mod:`repro.txn.simulation`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import TransactionError
from repro.txn.rwset import Address, RWSet


@dataclass(frozen=True, order=True)
class Transaction:
    """One blockchain transaction.

    Parameters
    ----------
    txid:
        Globally unique integer id.  The paper's ``T_u`` subscript; used for
        deterministic write-write ordering.
    rwset:
        Read/write summary.  For synthetic workloads this is provided up
        front; for contract transactions it is produced by the speculative
        execution phase.
    sender:
        Originating account (used by the VM as ``CALLER``).
    contract:
        Name of the target contract, or ``None`` for a plain transfer.
    function:
        Contract entry point name.
    args:
        Call arguments, a flat tuple of ints/strings.
    """

    txid: int
    rwset: RWSet = field(default_factory=RWSet, compare=False)
    sender: Address = field(default="", compare=False)
    contract: str | None = field(default=None, compare=False)
    function: str = field(default="", compare=False)
    args: tuple[Any, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if self.txid < 0:
            raise TransactionError(f"txid must be non-negative, got {self.txid}")

    @property
    def read_set(self) -> frozenset[Address]:
        """``RS(T)`` — the set of addresses the transaction reads."""
        return self.rwset.read_addresses

    @property
    def write_set(self) -> frozenset[Address]:
        """``WS(T)`` — the set of addresses the transaction plainly writes.

        Commutative delta addresses are *not* included; they live in
        :attr:`delta_set` and are scheduled under relaxed rules.
        """
        return self.rwset.write_addresses

    @property
    def delta_set(self) -> frozenset[Address]:
        """``DS(T)`` — addresses updated by a commutative delta."""
        return self.rwset.delta_addresses

    @property
    def is_read_only(self) -> bool:
        """True if the transaction performs no writes (plain or delta)."""
        return not self.rwset.writes and not self.rwset.deltas

    def with_rwset(self, rwset: RWSet) -> "Transaction":
        """Return a copy carrying the given read/write summary."""
        return Transaction(
            txid=self.txid,
            rwset=rwset,
            sender=self.sender,
            contract=self.contract,
            function=self.function,
            args=self.args,
        )

    def digest(self) -> bytes:
        """Stable content hash used for block bodies and dedup."""
        h = hashlib.sha256()
        h.update(str(self.txid).encode())
        h.update(b"|")
        h.update(self.sender.encode())
        h.update(b"|")
        h.update((self.contract or "").encode())
        h.update(b"|")
        h.update(self.function.encode())
        for arg in self.args:
            h.update(b"|")
            h.update(str(arg).encode())
        # Synthetic transactions are distinguished only by their rw-sets.
        for address in sorted(self.read_set):
            h.update(b"|r:")
            h.update(address.encode())
        for address in sorted(self.write_set):
            h.update(b"|w:")
            h.update(address.encode())
        for address in sorted(self.delta_set):
            h.update(b"|d:")
            h.update(address.encode())
            h.update(str(self.rwset.deltas[address]).encode())
        return h.digest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(txid={self.txid}, reads={sorted(self.read_set)}, "
            f"writes={sorted(self.write_set)})"
        )


def make_transaction(
    txid: int,
    reads: Mapping[Address, Any] | list[Address] | tuple[Address, ...] | frozenset[Address] = (),
    writes: Mapping[Address, Any] | list[Address] | tuple[Address, ...] | frozenset[Address] = (),
    deltas: Mapping[Address, int] | None = None,
    **kwargs: Any,
) -> Transaction:
    """Convenience constructor accepting address lists or value mappings.

    Examples
    --------
    >>> t = make_transaction(1, reads=["A2"], writes=["A1"])
    >>> sorted(t.read_set), sorted(t.write_set)
    (['A2'], ['A1'])
    """
    if not isinstance(reads, Mapping):
        reads = {address: None for address in reads}
    if not isinstance(writes, Mapping):
        writes = {address: None for address in writes}
    return Transaction(
        txid=txid,
        rwset=RWSet(reads=reads, writes=writes, deltas=dict(deltas) if deltas else {}),
        **kwargs,
    )
