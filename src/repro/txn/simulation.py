"""Speculative execution results.

In the paper's workflow (Section III-B) every node simulates the execution
of all transactions from an epoch's concurrent blocks against the previous
epoch's state snapshot.  The simulation yields, per transaction, the
addresses and values read and written; concurrency control consumes only
these summaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping

from repro.txn.rwset import Address, RWSet
from repro.txn.transaction import Transaction


class SimulationStatus(enum.Enum):
    """Outcome of one speculative execution."""

    SUCCESS = "success"
    REVERTED = "reverted"
    FAILED = "failed"


@dataclass(frozen=True)
class SimulationResult:
    """Read/write summary produced by speculatively executing a transaction.

    Attributes
    ----------
    transaction:
        The executed transaction (without an attached rwset).
    rwset:
        Observed reads and produced writes.
    status:
        Whether the speculative run succeeded; reverted/failed transactions
        are excluded from concurrency control and counted separately.
    gas_used:
        Gas consumed by the VM (0 for synthetic workloads).
    return_value:
        Contract return value, if any.
    """

    transaction: Transaction
    rwset: RWSet
    status: SimulationStatus = SimulationStatus.SUCCESS
    gas_used: int = 0
    return_value: Any = None
    error: str | None = None

    @property
    def txid(self) -> int:
        """Id of the simulated transaction."""
        return self.transaction.txid

    @property
    def ok(self) -> bool:
        """True when the speculative run completed without error."""
        return self.status is SimulationStatus.SUCCESS

    def as_transaction(self) -> Transaction:
        """Return the transaction with the observed rwset attached."""
        return self.transaction.with_rwset(self.rwset)


@dataclass(frozen=True)
class SimulationBatch:
    """All simulation results for one epoch, in transaction-id order."""

    results: tuple[SimulationResult, ...] = ()
    snapshot_root: bytes = b""

    def successful(self) -> list[SimulationResult]:
        """Results whose speculative execution succeeded."""
        return [r for r in self.results if r.ok]

    def transactions(self) -> list[Transaction]:
        """Successful transactions with rwsets attached, in id order."""
        txns = [r.as_transaction() for r in self.successful()]
        return sorted(txns, key=lambda t: t.txid)

    def write_values(self) -> dict[int, Mapping[Address, Any]]:
        """Map txid -> write values, for the commitment phase."""
        return {r.txid: r.rwset.writes for r in self.successful()}

    def delta_values(self) -> dict[int, Mapping[Address, int]]:
        """Map txid -> commutative delta amounts, for the commitment fold."""
        return {r.txid: r.rwset.deltas for r in self.successful()}

    @property
    def failed_count(self) -> int:
        """Number of reverted or failed speculative executions."""
        return sum(1 for r in self.results if not r.ok)


def batch_from_transactions(
    transactions: list[Transaction], snapshot_root: bytes = b""
) -> SimulationBatch:
    """Wrap pre-summarised transactions (synthetic workloads) as a batch."""
    results = tuple(
        SimulationResult(transaction=t, rwset=t.rwset)
        for t in sorted(transactions, key=lambda t: t.txid)
    )
    return SimulationBatch(results=results, snapshot_root=snapshot_root)
