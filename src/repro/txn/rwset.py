"""Read/write set abstractions.

A transaction's interaction with state is summarised by the set of
addresses it reads and the set of addresses it writes, together with the
observed read values and the produced write values.  Concurrency control
only inspects the address sets; commitment applies the write values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import TransactionError

Address = str
"""Addresses are opaque strings (e.g. ``"acct:000042"`` or a contract slot)."""


@dataclass(frozen=True)
class RWSet:
    """Immutable read/write summary of one transaction.

    Parameters
    ----------
    reads:
        Mapping from each read address to the value observed during the
        speculative execution.  The value may be ``None`` when only the
        address set matters (synthetic workloads).
    writes:
        Mapping from each written address to the value the transaction
        intends to install at commit time.
    """

    reads: Mapping[Address, Any] = field(default_factory=dict)
    writes: Mapping[Address, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.reads, Mapping) or not isinstance(self.writes, Mapping):
            raise TransactionError("reads and writes must be mappings")

    @property
    def read_addresses(self) -> frozenset[Address]:
        """Addresses read by the transaction (``RS(T)`` in the paper)."""
        return frozenset(self.reads)

    @property
    def write_addresses(self) -> frozenset[Address]:
        """Addresses written by the transaction (``WS(T)`` in the paper)."""
        return frozenset(self.writes)

    @property
    def addresses(self) -> frozenset[Address]:
        """All addresses the transaction touches."""
        return self.read_addresses | self.write_addresses

    def conflicts_with(self, other: "RWSet") -> bool:
        """Return ``True`` if the two sets exhibit a rw, wr, or ww conflict."""
        mine_w = self.write_addresses
        theirs_w = other.write_addresses
        if mine_w & theirs_w:
            return True
        if self.read_addresses & theirs_w:
            return True
        if other.read_addresses & mine_w:
            return True
        return False

    def merged_with(self, other: "RWSet") -> "RWSet":
        """Combine two summaries; later writes win, reads are unioned."""
        reads = dict(self.reads)
        reads.update(other.reads)
        writes = dict(self.writes)
        writes.update(other.writes)
        return RWSet(reads=reads, writes=writes)

    def iter_units(self) -> Iterator[tuple[Address, str]]:
        """Yield ``(address, kind)`` pairs, reads first, kind in {"R", "W"}."""
        for address in self.reads:
            yield address, "R"
        for address in self.writes:
            yield address, "W"

    @staticmethod
    def from_addresses(
        read_addresses: Iterator[Address] | frozenset[Address] | list[Address] | tuple[Address, ...],
        write_addresses: Iterator[Address] | frozenset[Address] | list[Address] | tuple[Address, ...],
    ) -> "RWSet":
        """Build a value-less summary from plain address collections."""
        return RWSet(
            reads={address: None for address in read_addresses},
            writes={address: None for address in write_addresses},
        )
