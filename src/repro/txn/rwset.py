"""Read/write set abstractions.

A transaction's interaction with state is summarised by the set of
addresses it reads and the set of addresses it writes, together with the
observed read values and the produced write values.  Concurrency control
only inspects the address sets; commitment applies the write values.

A third access kind — *bounded commutative deltas* — records writes that
are provably ``old_value + k`` for a constant ``k`` independent of the
stored value.  Deltas on one address commute with each other (they fold
to the same sum in any order), so concurrency control can let them share
sequence numbers the way shared reads do, instead of treating them as
write-write conflicts.  Deltas still conflict with plain reads and plain
writes on the same address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import TransactionError

Address = str
"""Addresses are opaque strings (e.g. ``"acct:000042"`` or a contract slot)."""


@dataclass(frozen=True)
class RWSet:
    """Immutable read/write summary of one transaction.

    Parameters
    ----------
    reads:
        Mapping from each read address to the value observed during the
        speculative execution.  The value may be ``None`` when only the
        address set matters (synthetic workloads).
    writes:
        Mapping from each written address to the value the transaction
        intends to install at commit time.
    deltas:
        Mapping from each delta address to the signed amount the
        transaction adds to the stored value at commit time.  A delta
        address never appears in ``reads`` or ``writes``: the whole point
        of the classification is that the transaction's behaviour does
        not depend on the stored value, so the read and the
        read-modify-write collapse into the single commutative unit.
    """

    reads: Mapping[Address, Any] = field(default_factory=dict)
    writes: Mapping[Address, Any] = field(default_factory=dict)
    deltas: Mapping[Address, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.reads, Mapping) or not isinstance(self.writes, Mapping):
            raise TransactionError("reads and writes must be mappings")
        if not isinstance(self.deltas, Mapping):
            raise TransactionError("deltas must be a mapping")
        if self.deltas:
            overlap = self.deltas.keys() & (self.reads.keys() | self.writes.keys())
            if overlap:
                raise TransactionError(
                    f"delta addresses must be disjoint from reads/writes: {sorted(overlap)}"
                )

    @property
    def read_addresses(self) -> frozenset[Address]:
        """Addresses read by the transaction (``RS(T)`` in the paper)."""
        return frozenset(self.reads)

    @property
    def write_addresses(self) -> frozenset[Address]:
        """Addresses written by the transaction (``WS(T)`` in the paper)."""
        return frozenset(self.writes)

    @property
    def delta_addresses(self) -> frozenset[Address]:
        """Addresses updated by a commutative delta (``DS(T)``)."""
        return frozenset(self.deltas)

    @property
    def addresses(self) -> frozenset[Address]:
        """All addresses the transaction touches."""
        return self.read_addresses | self.write_addresses | self.delta_addresses

    def conflicts_with(self, other: "RWSet") -> bool:
        """Return ``True`` if the two sets exhibit a rw, wr, or ww conflict.

        Deltas behave like writes here except that two deltas on the same
        address commute and therefore do not conflict.
        """
        mine_w = self.write_addresses
        theirs_w = other.write_addresses
        mine_d = self.delta_addresses
        theirs_d = other.delta_addresses
        if (mine_w | mine_d) & theirs_w:
            return True
        if mine_w & theirs_d:
            return True
        if self.read_addresses & (theirs_w | theirs_d):
            return True
        if other.read_addresses & (mine_w | mine_d):
            return True
        return False

    def merged_with(self, other: "RWSet") -> "RWSet":
        """Combine two summaries; later writes win, reads union, deltas sum.

        A plain read or write in either summary downgrades a delta on the
        same address: the merged summary must stay internally disjoint,
        and a value-dependent access breaks the commutativity argument.
        """
        reads = dict(self.reads)
        reads.update(other.reads)
        writes = dict(self.writes)
        writes.update(other.writes)
        deltas: dict[Address, int] = {}
        for source in (self.deltas, other.deltas):
            for address, amount in source.items():
                deltas[address] = deltas.get(address, 0) + amount
        downgraded = deltas.keys() & (reads.keys() | writes.keys())
        for address in downgraded:
            writes.setdefault(address, None)
            del deltas[address]
        return RWSet(reads=reads, writes=writes, deltas=deltas)

    def iter_units(self) -> Iterator[tuple[Address, str]]:
        """Yield ``(address, kind)`` pairs with kind in {"R", "W", "D"}."""
        for address in self.reads:
            yield address, "R"
        for address in self.writes:
            yield address, "W"
        for address in self.deltas:
            yield address, "D"

    @staticmethod
    def from_addresses(
        read_addresses: Iterator[Address] | frozenset[Address] | list[Address] | tuple[Address, ...],
        write_addresses: Iterator[Address] | frozenset[Address] | list[Address] | tuple[Address, ...],
        deltas: Mapping[Address, int] | None = None,
    ) -> "RWSet":
        """Build a value-less summary from plain address collections."""
        return RWSet(
            reads={address: None for address in read_addresses},
            writes={address: None for address in write_addresses},
            deltas=dict(deltas) if deltas else {},
        )
