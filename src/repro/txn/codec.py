"""Binary serialisation of transactions (RLP-based) and IPC wire tuples.

Blocks must be persisted and (in a real deployment) shipped over the
wire, so transactions need a canonical byte encoding.  Layout::

    [txid, sender, contract_tag, function, [args...], [reads...], [writes...],
     [deltas...]]

where args are tagged scalars (none / int / str) and reads/writes are
``[address, tagged-value]`` pairs.  Deltas are ``[address, amount]``
pairs whose signed amount travels as ``amount % 2**64`` (the scalar
codec is unsigned) and is re-signed on decode.  The trailing deltas
list is omitted when empty, so delta-free transactions keep their
legacy 7-item encoding and old blobs still decode.
``decode_transaction`` is the exact inverse of ``encode_transaction``
(property-tested).

The module also carries the *wire-tuple* codec used by the process
execution backend: transactions and simulation results are flattened to
tuples of primitives (ints/strings/None) before crossing the worker
pipe.  Primitive tuples serialise at C speed and stay compact — no
class-instance overhead per object — which matters because the parent
encodes one epoch's whole batch on the critical path.  A
``SimulationResult`` travels *without* its transaction: the parent
already holds the ``Transaction`` objects and re-attaches them by txid
(``simulation_result_from_wire`` refuses a mismatch).

Tracer spans ride the same pipe when tracing is on:
``span_to_wire``/``span_from_wire`` (re-exported here from
:mod:`repro.obs.tracer` so every IPC wire codec lives behind one module)
flatten :class:`~repro.obs.tracer.Span` objects to primitive tuples for
the worker→parent leg of the ``exec`` exchange.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TransactionError
from repro.obs.tracer import span_from_wire, span_to_wire
from repro.state.mpt.codec import rlp_decode, rlp_encode
from repro.txn.rwset import RWSet
from repro.txn.simulation import SimulationResult, SimulationStatus
from repro.txn.transaction import Transaction

__all__ = [
    "decode_transaction",
    "encode_transaction",
    "simulation_result_from_wire",
    "simulation_result_to_wire",
    "span_from_wire",
    "span_to_wire",
    "transaction_from_wire",
    "transaction_to_wire",
]

_TAG_NONE = b"\x00"
_TAG_INT = b"\x01"
_TAG_STR = b"\x02"
_TAG_BYTES = b"\x03"

_NO_CONTRACT = b"\x00"
_HAS_CONTRACT = b"\x01"

_DELTA_MOD = 1 << 64


def _unsign_delta(amount: int) -> int:
    return amount % _DELTA_MOD


def _resign_delta(amount: int) -> int:
    return amount - _DELTA_MOD if amount >= _DELTA_MOD // 2 else amount


def _encode_scalar(value: Any) -> bytes:
    if value is None:
        return _TAG_NONE
    if isinstance(value, bool):
        raise TransactionError("boolean scalars are not supported")
    if isinstance(value, int):
        if value < 0:
            raise TransactionError(f"negative scalar {value} not supported")
        out = b""
        scratch = value
        while scratch:
            out = bytes([scratch & 0xFF]) + out
            scratch >>= 8
        return _TAG_INT + out
    if isinstance(value, str):
        return _TAG_STR + value.encode()
    if isinstance(value, (bytes, bytearray)):
        return _TAG_BYTES + bytes(value)
    raise TransactionError(f"cannot encode scalar of type {type(value).__name__}")


def _decode_scalar(blob: bytes) -> Any:
    if not blob:
        raise TransactionError("empty scalar encoding")
    tag, payload = blob[:1], blob[1:]
    if tag == _TAG_NONE:
        if payload:
            raise TransactionError("trailing bytes after None scalar")
        return None
    if tag == _TAG_INT:
        return int.from_bytes(payload, "big")
    if tag == _TAG_STR:
        return payload.decode()
    if tag == _TAG_BYTES:
        return payload
    raise TransactionError(f"unknown scalar tag {tag!r}")


def encode_transaction(txn: Transaction) -> bytes:
    """Serialise a transaction to canonical bytes."""
    contract = (
        _NO_CONTRACT if txn.contract is None else _HAS_CONTRACT + txn.contract.encode()
    )
    reads = [
        [address.encode(), _encode_scalar(txn.rwset.reads[address])]
        for address in sorted(txn.rwset.reads)
    ]
    writes = [
        [address.encode(), _encode_scalar(txn.rwset.writes[address])]
        for address in sorted(txn.rwset.writes)
    ]
    item = [
        _encode_scalar(txn.txid)[1:] or b"\x00",
        txn.sender.encode(),
        contract,
        txn.function.encode(),
        [_encode_scalar(arg) for arg in txn.args],
        reads,
        writes,
    ]
    if txn.rwset.deltas:
        item.append(
            [
                [address.encode(), _encode_scalar(_unsign_delta(txn.rwset.deltas[address]))]
                for address in sorted(txn.rwset.deltas)
            ]
        )
    return rlp_encode(item)


def decode_transaction(data: bytes) -> Transaction:
    """Parse the canonical transaction encoding."""
    item = rlp_decode(data)
    if not isinstance(item, list) or len(item) not in (7, 8):
        raise TransactionError("transaction encoding must be a 7- or 8-item list")
    txid_blob, sender, contract_blob, function, args, reads, writes = item[:7]
    deltas = item[7] if len(item) == 8 else []
    txid = int.from_bytes(txid_blob, "big")
    if not isinstance(contract_blob, bytes) or not contract_blob:
        raise TransactionError("malformed contract field")
    if contract_blob[:1] == _NO_CONTRACT:
        contract = None
    else:
        contract = contract_blob[1:].decode()
    return Transaction(
        txid=txid,
        sender=sender.decode(),
        contract=contract,
        function=function.decode(),
        args=tuple(_decode_scalar(arg) for arg in args),
        rwset=RWSet(
            reads={addr.decode(): _decode_scalar(val) for addr, val in reads},
            writes={addr.decode(): _decode_scalar(val) for addr, val in writes},
            deltas={
                addr.decode(): _resign_delta(_decode_scalar(val))
                for addr, val in deltas
            },
        ),
    )


# ------------------------------------------------------------- wire tuples

_STATUS_TO_CODE = {
    SimulationStatus.SUCCESS: 0,
    SimulationStatus.REVERTED: 1,
    SimulationStatus.FAILED: 2,
}
_CODE_TO_STATUS = {code: status for status, code in _STATUS_TO_CODE.items()}


def transaction_to_wire(txn: Transaction) -> tuple:
    """Flatten a transaction to a primitive tuple for worker IPC."""
    return (
        txn.txid,
        txn.sender,
        txn.contract,
        txn.function,
        tuple(txn.args),
        tuple(txn.rwset.reads.items()),
        tuple(txn.rwset.writes.items()),
        tuple(txn.rwset.deltas.items()),
    )


def transaction_from_wire(wire: tuple) -> Transaction:
    """Rebuild a transaction from its wire tuple."""
    txid, sender, contract, function, args, reads, writes, deltas = wire
    return Transaction(
        txid=txid,
        sender=sender,
        contract=contract,
        function=function,
        args=tuple(args),
        rwset=RWSet(reads=dict(reads), writes=dict(writes), deltas=dict(deltas)),
    )


def simulation_result_to_wire(result: SimulationResult) -> tuple:
    """Flatten a simulation result (minus its transaction) for worker IPC."""
    return (
        result.txid,
        _STATUS_TO_CODE[result.status],
        result.gas_used,
        result.return_value,
        result.error,
        tuple(result.rwset.reads.items()),
        tuple(result.rwset.writes.items()),
        tuple(result.rwset.deltas.items()),
    )


def simulation_result_from_wire(
    wire: tuple, transaction: Transaction
) -> SimulationResult:
    """Re-attach the parent's transaction to a worker's wire result."""
    txid, status_code, gas_used, return_value, error, reads, writes, deltas = wire
    if txid != transaction.txid:
        raise TransactionError(
            f"wire result for T{txid} paired with transaction T{transaction.txid}"
        )
    return SimulationResult(
        transaction=transaction,
        rwset=RWSet(reads=dict(reads), writes=dict(writes), deltas=dict(deltas)),
        status=_CODE_TO_STATUS[status_code],
        gas_used=gas_used,
        return_value=return_value,
        error=error,
    )
