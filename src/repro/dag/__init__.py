"""DAG-based blockchain substrate (OHIE-style parallel chains)."""

from repro.dag.block import (
    Block,
    BlockHeader,
    GENESIS_HASH,
    tips_digest,
    transactions_root,
)
from repro.dag.blockstore import BlockStore, decode_block, encode_block
from repro.dag.chain import ParallelChains
from repro.dag.epochs import Epoch, complete_epochs, extract_epoch, total_block_order
from repro.dag.mempool import Mempool
from repro.dag.ohie import EpochCoordinator
from repro.dag.pow import PoWParams, chain_assignment, meets_target, mine

__all__ = [
    "Block",
    "BlockHeader",
    "BlockStore",
    "Epoch",
    "EpochCoordinator",
    "GENESIS_HASH",
    "Mempool",
    "ParallelChains",
    "PoWParams",
    "chain_assignment",
    "decode_block",
    "encode_block",
    "complete_epochs",
    "extract_epoch",
    "meets_target",
    "mine",
    "tips_digest",
    "total_block_order",
    "transactions_root",
]
