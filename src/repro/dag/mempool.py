"""Transaction mempool.

Miners draw block bodies from here.  FIFO with id-based deduplication;
transactions taken by one miner in an epoch are marked in-flight so the
same transaction is not packed into two concurrent blocks (the paper
assumes no duplicates within an epoch; the pipeline also dedups
defensively).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ChainError
from repro.txn.transaction import Transaction


class Mempool:
    """FIFO pool of pending transactions with dedup and capacity."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity <= 0:
            raise ChainError("mempool capacity must be positive")
        self.capacity = capacity
        self._pending: OrderedDict[int, Transaction] = OrderedDict()
        self._seen: set[int] = set()

    def submit(self, txn: Transaction) -> bool:
        """Add a transaction; returns False on duplicate or overflow."""
        if txn.txid in self._seen:
            return False
        if len(self._pending) >= self.capacity:
            return False
        self._pending[txn.txid] = txn
        self._seen.add(txn.txid)
        return True

    def submit_many(self, txns: list[Transaction]) -> int:
        """Add a batch; returns how many were accepted."""
        return sum(1 for txn in txns if self.submit(txn))

    def take(self, count: int) -> list[Transaction]:
        """Pop up to ``count`` transactions in FIFO order."""
        out: list[Transaction] = []
        while self._pending and len(out) < count:
            _, txn = self._pending.popitem(last=False)
            out.append(txn)
        return out

    def requeue(self, txns: list[Transaction]) -> None:
        """Return transactions to the front (aborted txns can be retried)."""
        for txn in reversed(txns):
            self._pending[txn.txid] = txn
            self._pending.move_to_end(txn.txid, last=False)

    def forget(self, txids: set[int]) -> None:
        """Allow ids to be resubmitted (e.g. permanently rejected ones)."""
        self._seen -= txids

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_count(self) -> int:
        """Number of transactions waiting to be packed."""
        return len(self._pending)
