"""Persistent block storage over any key-value store.

The paper stores block data in LevelDB; this module provides the same
role over :class:`~repro.storage.api.KVStore` (use
:class:`~repro.storage.lsm.LSMStore` for durability).  Key space::

    b:<block-hash>         -> RLP([header-fields, [encoded txn, ...]])
    c:<chain>:<height>     -> block hash (chain position index)
    meta:tip:<chain>       -> hash of the chain's latest block
    meta:state_root        -> last committed world-state root

which is enough to rebuild a :class:`~repro.dag.chain.ParallelChains`
after a restart (see :meth:`BlockStore.load_chains`).
"""

from __future__ import annotations

import struct

from repro.dag.block import Block, BlockHeader
from repro.dag.chain import ParallelChains
from repro.dag.pow import PoWParams
from repro.errors import ChainError, StorageError
from repro.state.mpt.codec import rlp_decode, rlp_encode
from repro.storage.api import KVStore, WriteBatch
from repro.txn.codec import decode_transaction, encode_transaction


def encode_block(block: Block) -> bytes:
    """Serialise a full block (header plus body) to canonical bytes."""
    header = block.header
    header_item = [
        struct.pack("<I", header.chain_id),
        struct.pack("<I", header.height),
        header.parent,
        header.state_root,
        header.tx_root,
        header.tips_digest,
        header.miner.encode(),
        struct.pack("<Q", header.nonce),
    ]
    body = [encode_transaction(txn) for txn in block.transactions]
    return rlp_encode([header_item, body])


def decode_block(data: bytes) -> Block:
    """Parse the canonical block encoding."""
    item = rlp_decode(data)
    if not isinstance(item, list) or len(item) != 2:
        raise ChainError("block encoding must be a two-item list")
    header_item, body = item
    if len(header_item) != 8:
        raise ChainError("block header must have 8 fields")
    (chain_id_blob, height_blob, parent, state_root, tx_root, tips, miner, nonce_blob) = header_item
    header = BlockHeader(
        chain_id=struct.unpack("<I", chain_id_blob)[0],
        height=struct.unpack("<I", height_blob)[0],
        parent=parent,
        state_root=state_root,
        tx_root=tx_root,
        tips_digest=tips,
        miner=miner.decode(),
        nonce=struct.unpack("<Q", nonce_blob)[0],
    )
    transactions = tuple(decode_transaction(blob) for blob in body)
    return Block(header=header, transactions=transactions)


class BlockStore:
    """Durable block archive with chain-position indexing."""

    def __init__(self, store: KVStore) -> None:
        self._store = store

    def put_block(self, block: Block) -> None:
        """Persist one block and its chain-position index atomically."""
        batch = WriteBatch()
        batch.put(b"b:" + block.hash, encode_block(block))
        batch.put(self._position_key(block.chain_id, block.height), block.hash)
        batch.put(f"meta:tip:{block.chain_id}".encode(), block.hash)
        self._store.write(batch)

    def get_block(self, block_hash: bytes) -> Block | None:
        """Fetch a block by hash, or ``None``."""
        data = self._store.get(b"b:" + block_hash)
        return None if data is None else decode_block(data)

    def block_at(self, chain_id: int, height: int) -> Block | None:
        """Fetch the block at a chain position, or ``None``."""
        block_hash = self._store.get(self._position_key(chain_id, height))
        return None if block_hash is None else self.get_block(block_hash)

    def set_state_root(self, root: bytes) -> None:
        """Record the latest committed world-state root."""
        self._store.put(b"meta:state_root", root)

    def state_root(self) -> bytes | None:
        """The recorded world-state root, or ``None`` on a fresh store."""
        return self._store.get(b"meta:state_root")

    def chain_height(self, chain_id: int) -> int:
        """Number of persisted blocks on one chain."""
        height = 0
        while self._store.has(self._position_key(chain_id, height)):
            height += 1
        return height

    def load_chains(self, chain_count: int, pow_params: PoWParams | None = None) -> ParallelChains:
        """Rebuild the parallel-chain state from persisted blocks.

        Replays blocks in epoch-major order through full validation, so a
        corrupted or tampered archive fails loudly rather than producing
        an inconsistent chain view.
        """
        chains = ParallelChains(
            chain_count=chain_count,
            pow_params=pow_params if pow_params is not None else PoWParams(),
        )
        heights = [self.chain_height(chain_id) for chain_id in range(chain_count)]
        for height in range(max(heights, default=0)):
            for chain_id in range(chain_count):
                if height >= heights[chain_id]:
                    continue
                block = self.block_at(chain_id, height)
                if block is None:
                    raise StorageError(
                        f"missing indexed block chain={chain_id} height={height}"
                    )
                chains.append(block)
        return chains

    @staticmethod
    def _position_key(chain_id: int, height: int) -> bytes:
        return f"c:{chain_id:04d}:{height:08d}".encode()
