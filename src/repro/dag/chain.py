"""Parallel-chain bookkeeping for the OHIE-style DAG.

Tracks ``k`` single chains growing in lockstep epochs.  Each chain is a
list of block hashes; the tip list is what miners commit to in
``tips_digest``.  Validation enforces PoW, chain assignment, parentage,
and height monotonicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dag.block import GENESIS_HASH, Block
from repro.dag.pow import PoWParams, chain_assignment, meets_target
from repro.errors import BlockValidationError, ChainError


@dataclass
class ParallelChains:
    """State of the ``k`` parallel chains on one node."""

    chain_count: int
    pow_params: PoWParams = field(default_factory=PoWParams)
    blocks: dict[bytes, Block] = field(default_factory=dict)
    chains: list[list[bytes]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.chain_count <= 0:
            raise ChainError("chain_count must be positive")
        if not self.chains:
            self.chains = [[] for _ in range(self.chain_count)]

    def tip(self, chain_id: int) -> bytes:
        """Hash of the chain's latest block (genesis sentinel when empty)."""
        chain = self.chains[chain_id]
        return chain[-1] if chain else GENESIS_HASH

    def tips(self) -> list[bytes]:
        """Current tip of every chain, by chain id."""
        return [self.tip(chain_id) for chain_id in range(self.chain_count)]

    def height(self, chain_id: int) -> int:
        """Number of blocks on one chain."""
        return len(self.chains[chain_id])

    def validate(self, block: Block) -> None:
        """Structural validation: PoW, assignment, parent, height.

        Raises :class:`~repro.errors.BlockValidationError` on any failure.
        The state-root check is contextual and done by the full node.
        """
        core_hash = block.header.core_hash()
        if not meets_target(core_hash, self.pow_params):
            raise BlockValidationError("proof-of-work below target failed")
        expected_chain = chain_assignment(core_hash, self.chain_count)
        if block.chain_id != expected_chain:
            raise BlockValidationError(
                f"hash assigns chain {expected_chain}, header claims {block.chain_id}"
            )
        if not 0 <= block.chain_id < self.chain_count:
            raise BlockValidationError(f"chain id {block.chain_id} out of range")
        if block.header.parent != self.tip(block.chain_id):
            raise BlockValidationError("parent is not the current chain tip")
        if block.height != self.height(block.chain_id):
            raise BlockValidationError(
                f"height {block.height} != next height {self.height(block.chain_id)}"
            )

    def append(self, block: Block) -> None:
        """Validate and append a block to its chain."""
        self.validate(block)
        block_hash = block.hash
        if block_hash in self.blocks:
            raise BlockValidationError("duplicate block")
        self.blocks[block_hash] = block
        self.chains[block.chain_id].append(block_hash)

    def block_at(self, chain_id: int, height: int) -> Block | None:
        """The block at a chain position, or ``None``."""
        chain = self.chains[chain_id]
        if height >= len(chain):
            return None
        return self.blocks[chain[height]]

    def total_blocks(self) -> int:
        """Blocks accepted across all chains."""
        return len(self.blocks)
