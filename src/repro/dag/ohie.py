"""OHIE-style consensus: parallel Nakamoto instances in lockstep epochs.

The paper runs OHIE with up to 12 parallel chains and an expected block
interval of one second, giving ``omega`` concurrent blocks per epoch.
:class:`EpochCoordinator` reproduces that steady state: each epoch it
mines candidate blocks (the mined hash — not the miner — picks the chain,
so candidates retry until every chain has exactly one new block) and
hands the epoch's block set to the full node.

This collapses OHIE's asynchronous fork resolution into its synchronous
steady state, which is the regime the paper's evaluation fixes anyway
(exactly ``omega`` valid blocks per epoch); see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dag.block import Block, BlockHeader, tips_digest, transactions_root
from repro.dag.chain import ParallelChains
from repro.dag.mempool import Mempool
from repro.dag.pow import PoWParams, chain_assignment, mine
from repro.errors import ChainError

MAX_EPOCH_CANDIDATES = 10_000


@dataclass
class EpochCoordinator:
    """Drives block production for one network of miners.

    Parameters
    ----------
    chains:
        The canonical chain state blocks are mined against.
    miners:
        Miner identities, used round-robin (the paper uses 12).
    block_size:
        Transactions per block (the paper uses 200).
    """

    chains: ParallelChains
    miners: list[str] = field(default_factory=lambda: ["miner-0"])
    block_size: int = 200

    def __post_init__(self) -> None:
        if not self.miners:
            raise ChainError("at least one miner is required")
        if self.block_size <= 0:
            raise ChainError("block_size must be positive")
        self._candidate_counter = 0

    @property
    def pow_params(self) -> PoWParams:
        """Difficulty shared with validation."""
        return self.chains.pow_params

    def mine_epoch(
        self,
        mempool: Mempool,
        state_root: bytes,
        concurrency: int | None = None,
    ) -> list[Block]:
        """Produce one epoch: one block per chain (or ``concurrency`` chains).

        Every block carries the previous epoch's ``state_root`` (the
        paper's workflow change) and is mined until its hash lands on a
        chain that still lacks a block this epoch.
        """
        target = self.chains.chain_count if concurrency is None else concurrency
        if not 0 < target <= self.chains.chain_count:
            raise ChainError(
                f"concurrency {target} out of range 1..{self.chains.chain_count}"
            )
        tips = self.chains.tips()
        digest = tips_digest(tips)
        filled: dict[int, Block] = {}
        attempts = 0
        while len(filled) < target:
            attempts += 1
            if attempts > MAX_EPOCH_CANDIDATES:
                raise ChainError("epoch mining failed to fill all chains")
            transactions = tuple(mempool.take(self.block_size))
            miner = self.miners[self._candidate_counter % len(self.miners)]
            self._candidate_counter += 1
            header = BlockHeader(
                chain_id=0,
                height=self._epoch_height(target),
                parent=b"\x00" * 32,
                state_root=state_root,
                tx_root=transactions_root(transactions),
                tips_digest=digest,
                miner=miner,
                nonce=self._candidate_counter * 1_000_003,
            )
            mined = mine(header, self.pow_params, start_nonce=header.nonce)
            chain_id = chain_assignment(mined.core_hash(), self.chains.chain_count)
            wanted = chain_id < target and chain_id not in filled
            if not wanted:
                # Fork loser: its transactions return to the pool.
                mempool.requeue(list(transactions))
                continue
            final_header = BlockHeader(
                chain_id=chain_id,
                height=mined.height,
                parent=tips[chain_id],
                state_root=mined.state_root,
                tx_root=mined.tx_root,
                tips_digest=mined.tips_digest,
                miner=mined.miner,
                nonce=mined.nonce,
            )
            filled[chain_id] = Block(header=final_header, transactions=transactions)
        blocks = [filled[chain_id] for chain_id in sorted(filled)]
        for block in blocks:
            self.chains.append(block)
        return blocks

    def _epoch_height(self, target: int) -> int:
        """Current lockstep epoch index over the active chains."""
        return min(self.chains.height(chain_id) for chain_id in range(target))
