"""Blocks of the DAG-based blockchain.

Following the paper's workflow change (Section III-B), a block carries the
state root *of the previous epoch* rather than post-execution state:
consensus nodes do not execute transactions before proposing.  Blocks are
bound to one of the parallel chains (OHIE-style, the chain is derived
from the block hash so miners cannot choose it) and reference both their
own-chain parent and the tips of every other chain at proposal time.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.errors import ChainError
from repro.txn.transaction import Transaction

GENESIS_HASH = b"\x00" * 32
"""Parent reference used by height-0 blocks."""


@dataclass(frozen=True)
class BlockHeader:
    """Consensus-relevant block metadata."""

    chain_id: int
    height: int
    parent: bytes
    state_root: bytes
    tx_root: bytes
    tips_digest: bytes
    miner: str = ""
    nonce: int = 0

    def encode(self) -> bytes:
        """Canonical byte encoding (hashed for the block id)."""
        return struct.pack("<II", self.chain_id, self.height) + self.parent + self.mining_core()

    def mining_core(self) -> bytes:
        """The bytes PoW grinds over.

        ``chain_id`` and ``parent`` are *derived from* the mined hash
        (OHIE: the hash picks the chain, the parent is that chain's tip
        committed in ``tips_digest``), so they cannot be part of the
        pre-image; everything else is.
        """
        return b"".join(
            (
                struct.pack("<I", self.height),
                self.state_root,
                self.tx_root,
                self.tips_digest,
                self.miner.encode(),
                struct.pack("<Q", self.nonce),
            )
        )

    def core_hash(self) -> bytes:
        """The mined hash: decides PoW validity and chain assignment."""
        return hashlib.sha256(self.mining_core()).digest()

    def hash(self) -> bytes:
        """Block id: SHA-256 of the canonical header encoding."""
        return hashlib.sha256(self.encode()).digest()


@dataclass(frozen=True)
class Block:
    """A full block: header plus transaction body."""

    header: BlockHeader
    transactions: tuple[Transaction, ...] = ()

    def __post_init__(self) -> None:
        expected = transactions_root(self.transactions)
        if expected != self.header.tx_root:
            raise ChainError("block body does not match header tx_root")

    @property
    def hash(self) -> bytes:
        """Block id (header hash)."""
        return self.header.hash()

    @property
    def chain_id(self) -> int:
        """Which parallel chain the block extends."""
        return self.header.chain_id

    @property
    def height(self) -> int:
        """Position on its chain; also the epoch index in this model."""
        return self.header.height

    @property
    def size(self) -> int:
        """Number of transactions in the body."""
        return len(self.transactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(chain={self.chain_id}, height={self.height}, "
            f"txs={self.size}, hash={self.hash.hex()[:12]})"
        )


def transactions_root(transactions: tuple[Transaction, ...]) -> bytes:
    """Binary Merkle root over transaction digests.

    An empty body hashes to the digest of the empty string, so headers
    always commit to their (possibly empty) bodies.
    """
    layer = [txn.digest() for txn in transactions]
    if not layer:
        return hashlib.sha256(b"").digest()
    while len(layer) > 1:
        if len(layer) % 2:
            layer.append(layer[-1])
        layer = [
            hashlib.sha256(layer[i] + layer[i + 1]).digest()
            for i in range(0, len(layer), 2)
        ]
    return layer[0]


def tips_digest(tips: list[bytes]) -> bytes:
    """Commitment to the tips of every parallel chain at proposal time."""
    return hashlib.sha256(b"".join(tips)).digest()
