"""Simulated proof-of-work.

Real mining searches nonces until the header hash clears a difficulty
target; the simulation does exactly that but with a target chosen so a
bounded nonce search always succeeds quickly, keeping runs deterministic
and fast while preserving the two properties the system relies on:

* the block hash is unpredictable before mining completes, and
* the hash (not the miner) decides which parallel chain the block
  extends (OHIE's unmanipulable chain assignment).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dag.block import BlockHeader
from repro.errors import ChainError

DEFAULT_DIFFICULTY_BITS = 8
"""Leading zero bits required; 8 bits => 1/256 per attempt."""

MAX_MINING_ATTEMPTS = 1_000_000


@dataclass(frozen=True)
class PoWParams:
    """Difficulty configuration shared by miners and validators."""

    difficulty_bits: int = DEFAULT_DIFFICULTY_BITS

    def __post_init__(self) -> None:
        if not 0 <= self.difficulty_bits <= 64:
            raise ChainError("difficulty_bits must be within [0, 64]")

    @property
    def target(self) -> int:
        """Hashes interpreted big-endian must be below this value."""
        return 1 << (256 - self.difficulty_bits)


def meets_target(core_hash: bytes, params: PoWParams) -> bool:
    """PoW validity check used by block validation (on the core hash)."""
    return int.from_bytes(core_hash, "big") < params.target


def mine(header: BlockHeader, params: PoWParams, start_nonce: int = 0) -> BlockHeader:
    """Search nonces until the header's *core hash* clears the target.

    Deterministic given the header contents and ``start_nonce``.  The
    returned header still carries the caller's provisional ``chain_id``
    and ``parent``; the OHIE miner re-derives both from the mined hash.
    Raises :class:`~repro.errors.ChainError` if the bounded search fails
    (only possible with an unreasonably high difficulty).
    """
    nonce = start_nonce
    for _ in range(MAX_MINING_ATTEMPTS):
        candidate = replace(header, nonce=nonce)
        if meets_target(candidate.core_hash(), params):
            return candidate
        nonce += 1
    raise ChainError(
        f"mining failed after {MAX_MINING_ATTEMPTS} attempts "
        f"(difficulty_bits={params.difficulty_bits})"
    )


def chain_assignment(block_hash: bytes, chain_count: int) -> int:
    """OHIE chain assignment: the hash picks the chain.

    Uses the *low* bytes of the hash so the assignment is independent of
    the leading-zero PoW constraint.
    """
    if chain_count <= 0:
        raise ChainError("chain_count must be positive")
    return int.from_bytes(block_hash[-8:], "big") % chain_count
