"""Epoch extraction and deterministic total ordering.

The paper models the DAG blockchain as ``B = {B_e | e >= 0}`` where
``B_e`` is the set of valid concurrent blocks of epoch ``e`` (Section
III-A).  With lockstep parallel chains, epoch ``e`` is simply the set of
height-``e`` blocks across chains; the deterministic total order within
an epoch is ascending chain id (OHIE's rank order restricted to this
synchronous regime), which the Serial baseline uses for block-by-block
processing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.block import Block
from repro.dag.chain import ParallelChains
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class Epoch:
    """One epoch's concurrent blocks, in deterministic (chain id) order."""

    index: int
    blocks: tuple[Block, ...]

    @property
    def concurrency(self) -> int:
        """The paper's ``omega_e``: number of concurrent blocks."""
        return len(self.blocks)

    def transactions(self, exclude: frozenset[int] | set[int] = frozenset()) -> list[Transaction]:
        """Transactions appearing in the epoch, first occurrence wins.

        Matches the paper's "picks transactions that first appear in all
        verified blocks"; blocks are scanned in total order, so a
        transaction duplicated across concurrent blocks is processed once.
        ``exclude`` suppresses ids already processed in earlier epochs
        (a duplicate packed by a lagging miner must not re-execute).
        """
        seen: set[int] = set(exclude)
        out: list[Transaction] = []
        for block in self.blocks:
            for txn in block.transactions:
                if txn.txid in seen:
                    continue
                seen.add(txn.txid)
                out.append(txn)
        return out

    @property
    def transaction_count(self) -> int:
        """The paper's ``N_e`` (with duplicates removed)."""
        return len(self.transactions())


def extract_epoch(chains: ParallelChains, index: int) -> Epoch | None:
    """The epoch at ``index``, or ``None`` when no chain has reached it."""
    blocks = []
    for chain_id in range(chains.chain_count):
        block = chains.block_at(chain_id, index)
        if block is not None:
            blocks.append(block)
    if not blocks:
        return None
    return Epoch(index=index, blocks=tuple(blocks))


def complete_epochs(chains: ParallelChains) -> list[Epoch]:
    """All epochs every chain has fully reached (lockstep regime)."""
    if chains.chain_count == 0:
        return []
    depth = min(chains.height(chain_id) for chain_id in range(chains.chain_count))
    epochs = []
    for index in range(depth):
        epoch = extract_epoch(chains, index)
        if epoch is not None:
            epochs.append(epoch)
    return epochs


def total_block_order(chains: ParallelChains) -> list[Block]:
    """Every accepted block in deterministic total order.

    Epoch-major, chain-id-minor: exactly the order the Serial baseline
    processes blocks in.
    """
    out: list[Block] = []
    max_height = max(
        (chains.height(chain_id) for chain_id in range(chains.chain_count)),
        default=0,
    )
    for height in range(max_height):
        for chain_id in range(chains.chain_count):
            block = chains.block_at(chain_id, height)
            if block is not None:
                out.append(block)
    return out
