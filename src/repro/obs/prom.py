"""Prometheus text-exposition rendering of a :class:`MetricsRegistry`.

The node's registry was write-only — nothing ever exported it.  This
module renders it in the Prometheus text exposition format (version
0.0.4): one ``# TYPE`` header per metric family, one sample line per
label set, with label values escaped per the spec (backslash, double
quote, and newline).  Histograms export as Prometheus *summaries* —
quantiles over the retained sample ring plus cumulative ``_sum`` and
``_count`` over every observation ever made.

Written via ``--metrics-out`` on the CLI, or served however the caller
likes — the renderer is just registry -> text.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Mapping, Union

if TYPE_CHECKING:  # avoid a module-level repro.node import cycle
    from repro.node.metrics import Counter, Gauge, Histogram, MetricsRegistry
    from repro.obs.tracer import Tracer

    Metric = Union[Counter, Gauge, Histogram]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def sanitize_metric_name(name: str) -> str:
    """Coerce a registry name into a legal Prometheus metric name."""
    if _NAME_OK.match(name):
        return name
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-exposition spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_labels(labels: Mapping[str, str]) -> str:
    """``{k="v",...}`` with keys sorted, or the empty string."""
    if not labels:
        return ""
    parts = [
        f'{sanitize_metric_name(key)}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _summary_lines(
    name: str, labels: Mapping[str, str], histogram: "Histogram"
) -> list[str]:
    # Imported lazily: obs must stay importable from every layer, so the
    # module pulls repro.analysis in only when actually rendering.
    from repro.analysis.metrics import percentile

    ordered = sorted(histogram.samples)
    lines = []
    for quantile in _SUMMARY_QUANTILES:
        merged = dict(labels)
        merged["quantile"] = str(quantile)
        lines.append(
            f"{name}{render_labels(merged)} {_format_value(percentile(ordered, quantile))}"
        )
    suffix = render_labels(labels)
    lines.append(f"{name}_sum{suffix} {_format_value(histogram.observed_sum)}")
    lines.append(f"{name}_count{suffix} {_format_value(float(histogram.observed_count))}")
    return lines


def render_tracer_aggregates(tracer: "Tracer") -> str:
    """The tracer's cumulative per-span-name totals as two counter
    families.

    The aggregates survive the bounded span ring's eviction, so these
    counters stay truthful over runs long enough to overflow the ring —
    exactly the runs where a Prometheus scrape matters.
    """
    aggregates = tracer.aggregates()
    if not aggregates:
        return ""
    count_lines = ["# TYPE repro_span_count counter"]
    seconds_lines = ["# TYPE repro_span_seconds_total counter"]
    for name, entry in aggregates.items():
        labels = render_labels({"name": name})
        count_lines.append(
            f"repro_span_count{labels} {_format_value(float(entry.count))}"
        )
        seconds_lines.append(
            f"repro_span_seconds_total{labels} "
            f"{_format_value(entry.total_seconds)}"
        )
    return "\n".join(count_lines) + "\n" + "\n".join(seconds_lines) + "\n"


def render_prometheus(
    registry: "MetricsRegistry", tracer: "Tracer | None" = None
) -> str:
    """The whole registry in Prometheus text-exposition format.

    With a ``tracer``, its cumulative span aggregates are appended as
    ``repro_span_count`` / ``repro_span_seconds_total`` families.
    """
    from repro.node.metrics import Counter, Gauge, Histogram

    blocks: list[str] = []
    if tracer is not None:
        rendered = render_tracer_aggregates(tracer)
        if rendered:
            blocks.append(rendered.rstrip("\n"))
    for name, kind, samples in registry.families():
        metric_name = sanitize_metric_name(name)
        if kind is Counter:
            type_name = "counter"
        elif kind is Gauge:
            type_name = "gauge"
        elif kind is Histogram:
            type_name = "summary"
        else:  # pragma: no cover - registry only holds the three kinds
            continue
        lines = [f"# TYPE {metric_name} {type_name}"]
        for labels, metric in samples:
            if isinstance(metric, Histogram):
                lines.extend(_summary_lines(metric_name, labels, metric))
            else:
                lines.append(
                    f"{metric_name}{render_labels(labels)} {_format_value(metric.value)}"
                )
        blocks.append("\n".join(lines))
    return "\n".join(blocks) + ("\n" if blocks else "")


def write_prometheus(
    path: str, registry: "MetricsRegistry", tracer: "Tracer | None" = None
) -> int:
    """Write the exposition to ``path``; returns the number of lines."""
    text = render_prometheus(registry, tracer)
    from pathlib import Path

    Path(path).write_text(text)
    return text.count("\n")
