"""Prometheus text-exposition rendering of a :class:`MetricsRegistry`.

The node's registry was write-only — nothing ever exported it.  This
module renders it in the Prometheus text exposition format (version
0.0.4): exactly one ``# HELP`` and one ``# TYPE`` header per metric
family, one sample line per label set, with label values escaped per the
spec (backslash, double quote, and newline).  Histograms export as
Prometheus *summaries* — quantiles over the retained sample ring plus
cumulative ``_sum`` and ``_count`` over every observation ever made.

Written via ``--metrics-out`` on the CLI, served live by the
``--metrics-port`` endpoint (:mod:`repro.obs.endpoint`), or however the
caller likes — the renderer is just registry -> text.
:func:`parse_prometheus` is the conformance half: a small exposition
parser the round-trip test pins the renderer against (every family
headered exactly once, every sample attributable to a declared family).
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Mapping, Union

if TYPE_CHECKING:  # avoid a module-level repro.node import cycle
    from repro.node.metrics import Counter, Gauge, Histogram, MetricsRegistry
    from repro.obs.ledger import FlightLedger
    from repro.obs.tracer import Tracer

    Metric = Union[Counter, Gauge, Histogram]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def sanitize_metric_name(name: str) -> str:
    """Coerce a registry name into a legal Prometheus metric name."""
    if _NAME_OK.match(name):
        return name
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-exposition spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_labels(labels: Mapping[str, str]) -> str:
    """``{k="v",...}`` with keys sorted, or the empty string."""
    if not labels:
        return ""
    parts = [
        f'{sanitize_metric_name(key)}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _summary_lines(
    name: str, labels: Mapping[str, str], histogram: "Histogram"
) -> list[str]:
    # Imported lazily: obs must stay importable from every layer, so the
    # module pulls repro.analysis in only when actually rendering.
    from repro.analysis.metrics import percentile

    ordered = sorted(histogram.samples)
    lines = []
    for quantile in _SUMMARY_QUANTILES:
        merged = dict(labels)
        merged["quantile"] = str(quantile)
        lines.append(
            f"{name}{render_labels(merged)} {_format_value(percentile(ordered, quantile))}"
        )
    suffix = render_labels(labels)
    lines.append(f"{name}_sum{suffix} {_format_value(histogram.observed_sum)}")
    lines.append(f"{name}_count{suffix} {_format_value(float(histogram.observed_count))}")
    return lines


_HELP_TEXT = {
    "repro_span_count": "Spans finished per name (survives ring eviction)",
    "repro_span_seconds_total": "Cumulative span seconds per name",
    "tracer_spans_evicted_total": (
        "Spans silently dropped by the bounded span ring"
    ),
    "ledger_events_total": "Flight-ledger lifecycle events ever recorded",
    "ledger_events_evicted_total": (
        "Flight-ledger events dropped by the bounded event ring"
    ),
}


def _help_line(name: str, kind: str) -> str:
    text = _HELP_TEXT.get(name, f"{name} ({kind} exported by repro)")
    escaped = text.replace("\\", "\\\\").replace("\n", "\\n")
    return f"# HELP {name} {escaped}"


def _family_header(name: str, kind: str) -> list[str]:
    return [_help_line(name, kind), f"# TYPE {name} {kind}"]


def render_tracer_aggregates(tracer: "Tracer") -> str:
    """The tracer's cumulative per-span-name totals plus the ring's
    eviction counter, as counter families.

    The aggregates survive the bounded span ring's eviction, so these
    counters stay truthful over runs long enough to overflow the ring —
    exactly the runs where a Prometheus scrape matters — and
    ``tracer_spans_evicted_total`` says how much of the *span* export
    (Chrome trace) such a run silently lost.
    """
    aggregates = tracer.aggregates()
    if not aggregates:
        return ""
    count_lines = _family_header("repro_span_count", "counter")
    seconds_lines = _family_header("repro_span_seconds_total", "counter")
    for name, entry in aggregates.items():
        labels = render_labels({"name": name})
        count_lines.append(
            f"repro_span_count{labels} {_format_value(float(entry.count))}"
        )
        seconds_lines.append(
            f"repro_span_seconds_total{labels} "
            f"{_format_value(entry.total_seconds)}"
        )
    evicted_lines = _family_header("tracer_spans_evicted_total", "counter")
    evicted_lines.append(
        f"tracer_spans_evicted_total {_format_value(float(tracer.evicted))}"
    )
    return (
        "\n".join(count_lines)
        + "\n"
        + "\n".join(seconds_lines)
        + "\n"
        + "\n".join(evicted_lines)
        + "\n"
    )


def render_ledger_counters(ledger: "FlightLedger") -> str:
    """The flight ledger's volume/loss accounting as counter families."""
    total_lines = _family_header("ledger_events_total", "counter")
    total_lines.append(
        f"ledger_events_total {_format_value(float(ledger.recorded))}"
    )
    evicted_lines = _family_header("ledger_events_evicted_total", "counter")
    evicted_lines.append(
        f"ledger_events_evicted_total {_format_value(float(ledger.evicted))}"
    )
    return "\n".join(total_lines) + "\n" + "\n".join(evicted_lines) + "\n"


def render_prometheus(
    registry: "MetricsRegistry",
    tracer: "Tracer | None" = None,
    ledger: "FlightLedger | None" = None,
) -> str:
    """The whole registry in Prometheus text-exposition format.

    With a ``tracer``, its cumulative span aggregates are appended as
    ``repro_span_count`` / ``repro_span_seconds_total`` /
    ``tracer_spans_evicted_total`` families; with a ``ledger``, its
    volume counters follow.  Every family carries exactly one ``# HELP``
    and one ``# TYPE`` header (pinned by the :func:`parse_prometheus`
    round-trip test).
    """
    from repro.node.metrics import Counter, Gauge, Histogram

    blocks: list[str] = []
    if tracer is not None:
        rendered = render_tracer_aggregates(tracer)
        if rendered:
            blocks.append(rendered.rstrip("\n"))
    if ledger is not None:
        blocks.append(render_ledger_counters(ledger).rstrip("\n"))
    for name, kind, samples in registry.families():
        metric_name = sanitize_metric_name(name)
        if kind is Counter:
            type_name = "counter"
        elif kind is Gauge:
            type_name = "gauge"
        elif kind is Histogram:
            type_name = "summary"
        else:  # pragma: no cover - registry only holds the three kinds
            continue
        lines = _family_header(metric_name, type_name)
        for labels, metric in samples:
            if isinstance(metric, Histogram):
                lines.extend(_summary_lines(metric_name, labels, metric))
            else:
                lines.append(
                    f"{metric_name}{render_labels(labels)} {_format_value(metric.value)}"
                )
        blocks.append("\n".join(lines))
    return "\n".join(blocks) + ("\n" if blocks else "")


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus(
    text: str,
) -> dict[str, dict[str, object]]:
    """Parse a text exposition; returns family -> parsed block.

    Each family maps to ``{"type", "help", "samples"}`` where samples is
    a list of ``(metric name, labels dict, value)``.  Raises
    ``ValueError`` on conformance violations: a family with a repeated
    or missing ``# HELP``/``# TYPE`` header, a sample that belongs to no
    declared family, or an unparseable line.  This is the strict reader
    the renderer round-trips against.
    """
    families: dict[str, dict[str, object]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            keyword = line[2:6]
            rest = line[7:]
            parts = rest.split(" ", 1)
            name = parts[0]
            value = parts[1] if len(parts) > 1 else ""
            entry = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            key = keyword.lower()
            if entry[key] is not None:
                raise ValueError(
                    f"line {lineno}: repeated # {keyword} for family {name!r}"
                )
            entry[key] = value
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        sample_name = match.group("name")
        family = None
        for candidate in (
            sample_name,
            sample_name.removesuffix("_sum"),
            sample_name.removesuffix("_count"),
        ):
            if candidate in families:
                family = candidate
                break
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} precedes its "
                "family's # HELP/# TYPE headers"
            )
        labels: dict[str, str] = {}
        if match.group("labels"):
            for key, value in _LABEL_PAIR.findall(match.group("labels")):
                labels[key] = _unescape_label_value(value)
        samples = families[family]["samples"]
        assert isinstance(samples, list)
        samples.append((sample_name, labels, float(match.group("value"))))
    for name, entry in families.items():
        if entry["type"] is None:
            raise ValueError(f"family {name!r} has no # TYPE header")
        if entry["help"] is None:
            raise ValueError(f"family {name!r} has no # HELP header")
    return families


def write_prometheus(
    path: str,
    registry: "MetricsRegistry",
    tracer: "Tracer | None" = None,
    ledger: "FlightLedger | None" = None,
) -> int:
    """Write the exposition to ``path``; returns the number of lines."""
    text = render_prometheus(registry, tracer, ledger)
    from pathlib import Path

    Path(path).write_text(text)
    return text.count("\n")
