"""Span exporters: Chrome/Perfetto ``trace_event`` JSON and a text "top".

The Chrome trace-event format is the lingua franca of timeline viewers —
``chrome://tracing``, Perfetto (https://ui.perfetto.dev), and Speedscope
all load it.  Every finished span becomes one complete ("ph": "X") event;
tracks (main thread, executor threads, worker processes) map to ``tid``
rows with ``thread_name`` metadata so worker occupancy and stragglers are
visible at a glance.

``validate_chrome_trace`` is the schema check used by tests, by the
``repro-nezha top`` command, and by CI (the workflow validates the trace
emitted by a traced ``simulate`` run before uploading it as an
artifact).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.obs.tracer import Span

_MICROS = 1e6


def _track_ids(spans: Sequence[Span]) -> dict[str, int]:
    """Stable track -> tid mapping ("main" first, the rest sorted)."""
    tracks = {span.track for span in spans}
    ordered = (["main"] if "main" in tracks else []) + sorted(tracks - {"main"})
    return {track: tid for tid, track in enumerate(ordered)}


def chrome_trace(spans: Sequence[Span]) -> dict:
    """Render spans as a Chrome/Perfetto ``trace_event`` JSON object.

    Timestamps are microseconds relative to the earliest span start, so
    the trace always begins near t=0 regardless of process uptime.
    """
    ordered = sorted(spans, key=lambda s: (s.start, s.span_id))
    origin = ordered[0].start if ordered else 0.0
    tids = _track_ids(ordered)
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    for span in ordered:
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "pid": 0,
                "tid": tids[span.track],
                "ts": (span.start - origin) * _MICROS,
                "dur": span.duration * _MICROS,
                "args": dict(span.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, spans: Sequence[Span]) -> int:
    """Write the Chrome trace JSON; returns the number of span events."""
    payload = chrome_trace(spans)
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return sum(1 for event in payload["traceEvents"] if event["ph"] == "X")


def validate_chrome_trace(payload: object) -> list[dict]:
    """Check a parsed trace against the ``trace_event`` schema.

    Returns the complete ("X") events; raises ``ValueError`` describing
    the first violation.  Deliberately strict about the fields the repro
    emits so a regression in the exporter fails CI rather than producing
    a trace Perfetto silently misrenders.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must carry a 'traceEvents' list")
    complete: list[dict] = []
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{position}] is not an object")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"traceEvents[{position}] lacks a string 'name'")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise ValueError(
                f"traceEvents[{position}] has unsupported phase {phase!r}"
            )
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"traceEvents[{position}] lacks integer {key!r}")
        if phase == "M":
            continue
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"traceEvents[{position}] needs non-negative numeric {key!r}"
                )
        if not isinstance(event.get("args"), dict):
            raise ValueError(f"traceEvents[{position}] lacks an 'args' object")
        complete.append(event)
    if not complete:
        raise ValueError("trace carries no complete ('X') span events")
    return complete


# ------------------------------------------------------------- text summary


def summarize_events(events: Sequence[dict], limit: int = 15) -> list[dict]:
    """Aggregate span events by name, slowest total first.

    Each row carries ``name``/``count``/``total_ms``/``mean_ms``/``max_ms``;
    this is the data behind the ``repro-nezha top`` table.
    """
    grouped: dict[str, list[float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        grouped.setdefault(str(event["name"]), []).append(float(event["dur"]))
    rows = [
        {
            "name": name,
            "count": len(durations),
            "total_ms": sum(durations) / 1e3,
            "mean_ms": sum(durations) / len(durations) / 1e3,
            "max_ms": max(durations) / 1e3,
        }
        for name, durations in grouped.items()
    ]
    rows.sort(key=lambda row: (-float(row["total_ms"]), str(row["name"])))
    return rows[:limit]


def render_top(events: Sequence[dict], limit: int = 15) -> str:
    """The ``repro-nezha top`` text table: slowest span names first."""
    rows = summarize_events(events, limit=limit)
    header = f"{'span':<36} {'count':>6} {'total ms':>10} {'mean ms':>9} {'max ms':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{str(row['name']):<36} {row['count']:>6} "
            f"{row['total_ms']:>10.2f} {row['mean_ms']:>9.3f} {row['max_ms']:>9.3f}"
        )
    return "\n".join(lines)
