"""Live ``/metrics`` + ``/healthz`` endpoint over ``http.server``.

Exports used to be write-at-exit only (``--metrics-out``): a long
simulate/multinode run was a black box until it finished.
:class:`MetricsEndpoint` serves the same Prometheus text exposition
*live* from a daemon thread, so ``curl :9464/metrics`` mid-run answers
"how far along is it, what is aborting, and why" — stdlib only, like
everything else in ``repro.obs``.

Routes
------
``/metrics``
    The registry rendered by :func:`repro.obs.prom.render_prometheus`,
    plus the tracer's cumulative span aggregates and the flight ledger's
    volume counters when attached (``text/plain; version=0.0.4``).
``/healthz``
    A small JSON liveness document: ``{"status": "ok", ...}`` merged
    with whatever the ``health`` callable reports (epoch progress,
    scheme, ...).

The server binds lazily on :meth:`start` (port ``0`` picks an ephemeral
port — tests use this), serves each request on its own thread
(``ThreadingHTTPServer``), and tolerates scrapes racing the pipeline's
registry writes by retrying the render a few times (the registry is
deliberately lock-free on the hot path; a concurrent family insertion
can surface as ``RuntimeError: dictionary changed size`` mid-iteration).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:  # avoid a module-level repro.node import cycle
    from repro.node.metrics import MetricsRegistry
    from repro.obs.ledger import FlightLedger
    from repro.obs.tracer import Tracer

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_RENDER_RETRIES = 5


class MetricsEndpoint:
    """Background HTTP server exposing a registry, tracer, and ledger.

    Use as a context manager or call :meth:`start`/:meth:`stop`;
    :attr:`port` holds the bound port after ``start`` (useful with
    ``port=0``).  ``stop`` is idempotent and joins the serving thread.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        tracer: "Tracer | None" = None,
        ledger: "FlightLedger | None" = None,
        host: str = "127.0.0.1",
        port: int = 9464,
        health: Callable[[], Mapping[str, Any]] | None = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.ledger = ledger
        self.host = host
        self.port = port
        self.health = health
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "MetricsEndpoint":
        """Bind and serve on a daemon thread; returns self."""
        if self._server is not None:
            return self
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                endpoint._handle(self)

            def log_message(self, fmt: str, *args: Any) -> None:
                # Scrapes must not spam the run's stderr.
                pass

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-endpoint",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread (idempotent)."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        return f"http://{self.host}:{self.port}"

    # -- request handling --------------------------------------------------

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            try:
                body = self._render_metrics().encode()
            except Exception as exc:  # pragma: no cover - defensive
                self._respond(
                    request, 500, f"render failed: {exc}\n".encode(),
                    "text/plain; charset=utf-8",
                )
                return
            self._respond(request, 200, body, CONTENT_TYPE)
        elif path == "/healthz":
            payload: dict[str, Any] = {"status": "ok"}
            if self.health is not None:
                try:
                    payload.update(self.health())
                except Exception as exc:  # pragma: no cover - defensive
                    payload = {"status": "degraded", "error": str(exc)}
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
            self._respond(request, 200, body, "application/json")
        else:
            self._respond(
                request, 404, b"not found\n", "text/plain; charset=utf-8"
            )

    def _render_metrics(self) -> str:
        from repro.obs.prom import render_prometheus

        last_error: RuntimeError | None = None
        for _ in range(_RENDER_RETRIES):
            try:
                return render_prometheus(
                    self.registry, self.tracer, self.ledger
                )
            except RuntimeError as exc:
                # The pipeline inserted a new family mid-iteration;
                # re-render against the settled registry.
                last_error = exc
        raise last_error if last_error is not None else RuntimeError()

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler,
        status: int,
        body: bytes,
        content_type: str,
    ) -> None:
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)
