"""Abort-reason taxonomy: *why* each transaction fell out of an epoch.

The paper reports abort **rates** (Figure 11); reproductions debugging
those rates need abort **reasons**.  Every abort recorded by the sorter
or the validator carries one of these reason strings, threaded through
``SortState``/``DenseSortState`` into ``NezhaResult.abort_reasons`` and
finally ``EpochReport.abort_reasons``, whose counts always sum to
``EpochReport.aborted`` (the conservation invariant, asserted by
``tests/node/test_abort_taxonomy.py``).

Reasons
-------
``unserializable_write``
    A write unit violated the R<W or W!=W invariant and the transaction
    could not be rescued (Algorithm 2's abort, plus the validator's
    re-check of the same rule).
``doomed_reorder``
    The transaction *was* rescued by the Section IV-D reordering bump
    but the bump stranded another writer, so the bumped transaction paid
    (the "doomed bump" case fixed in PR 1).
``scheme_conflict``
    Fallback bucket for schemes that abort without attribution (OCC's
    first-committer-wins, CG's feedback vertex set) and for any abort a
    scheduler fails to label.
``delta_overflow``
    The commit-time fold of a transaction's commutative deltas left some
    address outside the machine-word range ``[0, 2**64)``; the bounded
    over/underflow guard aborted the whole transaction deterministically
    (every correct replica folds the same values in the same order).

``failed_simulation`` and ``revived`` are *not* abort reasons — failed
simulations never enter the schedule (they are accounted separately in
``EpochReport.failed_simulation``) and revived transactions ended up
committing — but both are exported alongside the taxonomy counters so
dashboards see the whole funnel.
"""

from __future__ import annotations

from typing import Iterable, Mapping

UNSERIALIZABLE_WRITE = "unserializable_write"
DOOMED_REORDER = "doomed_reorder"
SCHEME_CONFLICT = "scheme_conflict"
DELTA_OVERFLOW = "delta_overflow"

ABORT_REASONS: tuple[str, ...] = (
    UNSERIALIZABLE_WRITE,
    DOOMED_REORDER,
    SCHEME_CONFLICT,
    DELTA_OVERFLOW,
)
"""Every reason an aborted transaction can carry (closed set)."""

EDGE_RW = "rw"
EDGE_WW = "ww"
EDGE_WD = "wd"
EDGE_RD = "rd"
EDGE_DELTA_GUARD = "delta_guard"

EDGE_KINDS: tuple[str, ...] = (EDGE_RW, EDGE_WW, EDGE_WD, EDGE_RD, EDGE_DELTA_GUARD)
"""Conflict-edge kinds an abort attribution can carry (closed set).

An attributed edge is the triple ``(peer, address, kind)``: the
conflicting peer transaction (txid, or ``-1`` when no single peer
exists), the contended address, and which invariant the pair violated —
``rw`` (R<W), ``ww`` (W!=W), ``rd`` (R<D), ``wd`` (W!=D), or
``delta_guard`` (the commit-time bounded-overflow fold).  Threaded from
the sorter/validator through ``NezhaResult.abort_edges`` into
``EpochReport.abort_edges`` and the flight ledger's abort events.
"""

UNKNOWN_PEER = -1
"""Sentinel peer txid for edges with no attributable counterparty."""


def taxonomy_counts(
    aborted: Iterable[int], reasons: Mapping[int, str] | None = None
) -> dict[str, int]:
    """Count aborted transactions by reason.

    ``reasons`` maps txid -> reason string for schedulers that attribute
    their aborts (Nezha); ids missing from it — or the whole mapping when
    a scheme records nothing — fall into ``scheme_conflict``.  The counts
    therefore always sum to ``len(aborted)``, whatever the scheme.
    """
    counts: dict[str, int] = {}
    for txid in sorted(aborted):
        reason = SCHEME_CONFLICT
        if reasons is not None:
            reason = reasons.get(txid, SCHEME_CONFLICT)
        if reason not in ABORT_REASONS:
            reason = SCHEME_CONFLICT
        counts[reason] = counts.get(reason, 0) + 1
    return {reason: counts[reason] for reason in sorted(counts)}
