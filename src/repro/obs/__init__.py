"""Observability: structured tracing, exporters, and the abort taxonomy.

Dependency-free by design — every other layer (core, node, net) imports
from here, so nothing in this package may import from them at module
scope (``prom`` type-checks against ``repro.node.metrics`` under
``TYPE_CHECKING`` only).
"""

from repro.obs.endpoint import MetricsEndpoint
from repro.obs.export import (
    chrome_trace,
    render_top,
    summarize_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.ledger import (
    EVENT_KINDS,
    FlightLedger,
    aggregate_contention,
    delta_promotion_candidates,
    estimate_skew,
    iter_timeline,
    read_jsonl,
    timeline_digest,
    validate_ledger,
)
from repro.obs.prom import (
    parse_prometheus,
    render_ledger_counters,
    render_prometheus,
    render_tracer_aggregates,
    write_prometheus,
)
from repro.obs.taxonomy import (
    ABORT_REASONS,
    DELTA_OVERFLOW,
    DOOMED_REORDER,
    EDGE_DELTA_GUARD,
    EDGE_KINDS,
    EDGE_RD,
    EDGE_RW,
    EDGE_WD,
    EDGE_WW,
    SCHEME_CONFLICT,
    UNKNOWN_PEER,
    UNSERIALIZABLE_WRITE,
    taxonomy_counts,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    SpanAggregate,
    SpanLike,
    Tracer,
    maybe_span,
    span_from_wire,
    span_to_wire,
)

__all__ = [
    "ABORT_REASONS",
    "DELTA_OVERFLOW",
    "DOOMED_REORDER",
    "EDGE_DELTA_GUARD",
    "EDGE_KINDS",
    "EDGE_RD",
    "EDGE_RW",
    "EDGE_WD",
    "EDGE_WW",
    "EVENT_KINDS",
    "FlightLedger",
    "MetricsEndpoint",
    "NULL_SPAN",
    "SCHEME_CONFLICT",
    "Span",
    "SpanAggregate",
    "SpanLike",
    "Tracer",
    "UNKNOWN_PEER",
    "UNSERIALIZABLE_WRITE",
    "aggregate_contention",
    "chrome_trace",
    "delta_promotion_candidates",
    "estimate_skew",
    "iter_timeline",
    "maybe_span",
    "parse_prometheus",
    "read_jsonl",
    "render_ledger_counters",
    "render_prometheus",
    "render_top",
    "render_tracer_aggregates",
    "span_from_wire",
    "span_to_wire",
    "summarize_events",
    "taxonomy_counts",
    "timeline_digest",
    "validate_chrome_trace",
    "validate_ledger",
    "write_chrome_trace",
    "write_prometheus",
]
