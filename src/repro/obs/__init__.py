"""Observability: structured tracing, exporters, and the abort taxonomy.

Dependency-free by design — every other layer (core, node, net) imports
from here, so nothing in this package may import from them at module
scope (``prom`` type-checks against ``repro.node.metrics`` under
``TYPE_CHECKING`` only).
"""

from repro.obs.export import (
    chrome_trace,
    render_top,
    summarize_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.prom import (
    render_prometheus,
    render_tracer_aggregates,
    write_prometheus,
)
from repro.obs.taxonomy import (
    ABORT_REASONS,
    DELTA_OVERFLOW,
    DOOMED_REORDER,
    SCHEME_CONFLICT,
    UNSERIALIZABLE_WRITE,
    taxonomy_counts,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    SpanAggregate,
    SpanLike,
    Tracer,
    maybe_span,
    span_from_wire,
    span_to_wire,
)

__all__ = [
    "ABORT_REASONS",
    "DELTA_OVERFLOW",
    "DOOMED_REORDER",
    "NULL_SPAN",
    "SCHEME_CONFLICT",
    "Span",
    "SpanAggregate",
    "SpanLike",
    "Tracer",
    "UNSERIALIZABLE_WRITE",
    "chrome_trace",
    "maybe_span",
    "render_prometheus",
    "render_top",
    "render_tracer_aggregates",
    "span_from_wire",
    "span_to_wire",
    "summarize_events",
    "taxonomy_counts",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
]
