"""Structured tracing: nested spans over a monotonic clock.

The paper's whole evaluation is phase-level latency accounting (Table IV,
Figures 9-12), so the repro needs to *see* where an epoch's time goes —
down to the concurrency-control sub-phases and the per-worker execution
chunks.  A :class:`Tracer` records :class:`Span` objects: named intervals
measured with ``time.perf_counter`` (monotonic — the determinism linter's
ND102 rule explicitly allows it because span timings never feed committed
state), nested through per-thread stacks, and retained in a bounded
in-memory ring so long runs cannot grow without bound.

Worker processes build their own ``Tracer`` and ship finished spans back
to the parent as primitive wire tuples (see :mod:`repro.txn.codec`);
``Tracer.extend`` merges them into one timeline.  ``perf_counter`` reads
``CLOCK_MONOTONIC``, which is system-wide on Linux, so parent and worker
timestamps share one time base and the merged timeline lines up.

This module must stay importable from every layer (core, node, net)
without cycles: it imports nothing from ``repro`` except
:mod:`repro.analysis.race` — the concurrency sanitizer's hook module,
which itself imports only the standard library.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Union

from repro.analysis import race

AttrValue = Union[str, int, float, bool, None]
"""JSON-safe span attribute values."""

DEFAULT_MAX_SPANS = 100_000
"""Default bound of the finished-span ring (oldest spans are evicted)."""


@dataclass
class Span:
    """One finished (or in-flight) named interval.

    ``start``/``end`` are monotonic-clock seconds; ``track`` names the
    logical timeline the span belongs to ("main", a worker thread name,
    or "worker-N" for a process-backend worker).
    """

    name: str
    span_id: int
    parent_id: int | None
    track: str
    start: float
    end: float = 0.0
    attrs: dict[str, AttrValue] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (never negative)."""
        return max(0.0, self.end - self.start)

    def set(self, **attrs: AttrValue) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)


class _NullSpan:
    """No-op stand-in yielded by :func:`maybe_span` when tracing is off."""

    __slots__ = ()

    def set(self, **attrs: AttrValue) -> None:
        """Discard the attributes (tracing is disabled)."""


NULL_SPAN = _NullSpan()

SpanLike = Union[Span, _NullSpan]


@dataclass
class SpanAggregate:
    """Cumulative per-name accounting over a tracer's whole lifetime.

    The finished-span ring is bounded, so a long run silently evicts its
    oldest spans — but the aggregates keep counting: they are updated
    when a span finishes (or arrives via :meth:`Tracer.extend`), never
    recomputed from the ring.
    """

    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Average span duration in seconds."""
        return self.total_seconds / self.count if self.count else 0.0


class Tracer:
    """Records nested spans into a bounded in-memory ring.

    Thread-safe: every thread keeps its own nesting stack (so spans
    opened by pool workers nest correctly and land on their own track)
    while the finished ring is shared.  The ring is guarded by
    ``_ring_lock``: ``deque.append`` alone *is* atomic under the GIL,
    but the compound operations around it are not — ``drain()`` used to
    snapshot and then clear in two steps, silently dropping any span a
    worker thread finished in between (found by the concurrency
    sanitizer, pinned by ``tests/obs/test_tracer_threads.py``).  Spans
    are coarse (one per phase or executor chunk), so the per-finish lock
    acquisition stays invisible to the <5% tracing-overhead gate.
    """

    def __init__(
        self,
        max_spans: int = DEFAULT_MAX_SPANS,
        track: str = "main",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.track = track
        self._clock = clock
        self.max_spans = max_spans
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._aggregates: dict[str, SpanAggregate] = {}
        self._aggregate_lock = threading.Lock()
        self._ring_lock = threading.Lock()
        self._evicted = 0

    def _record_finished(self, span: Span) -> None:
        # Sanitizer hooks sit *inside* the real lock so the modelled
        # acquire/release edges bracket the access exactly.
        with self._ring_lock:
            race.lock_acquired(("tracer-ring", id(self)))
            race.trace_write(("tracer", id(self), "ring"))
            if len(self._finished) == self.max_spans:
                self._evicted += 1
            self._finished.append(span)
            race.lock_released(("tracer-ring", id(self)))

    # ------------------------------------------------------------- recording

    def _stack(self) -> list[Span]:
        stack: list[Span] | None = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _current_track(self) -> str:
        thread = threading.current_thread()
        if thread is threading.main_thread():
            return self.track
        return thread.name

    @contextmanager
    def span(self, name: str, **attrs: AttrValue) -> Iterator[Span]:
        """Open a nested span; it is recorded when the block exits."""
        stack = self._stack()
        opened = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=stack[-1].span_id if stack else None,
            track=self._current_track(),
            start=self._clock(),
            attrs=dict(attrs),
        )
        stack.append(opened)
        try:
            yield opened
        finally:
            opened.end = self._clock()
            stack.pop()
            self._record_finished(opened)
            self._aggregate(opened)

    def extend(self, spans: Iterable[Span]) -> None:
        """Merge externally-recorded spans (e.g. from worker processes)."""
        for span in spans:
            self._record_finished(span)
            self._aggregate(span)

    def _aggregate(self, span: Span) -> None:
        with self._aggregate_lock:
            race.lock_acquired(("tracer-agg", id(self)))
            race.trace_write(("tracer", id(self), "aggregates"))
            entry = self._aggregates.get(span.name)
            if entry is None:
                entry = self._aggregates[span.name] = SpanAggregate()
            entry.count += 1
            entry.total_seconds += span.duration
            race.lock_released(("tracer-agg", id(self)))

    # ------------------------------------------------------------ inspection

    def spans(self) -> list[Span]:
        """Finished spans in merged timeline order (start time, then id)."""
        with self._ring_lock:
            race.lock_acquired(("tracer-ring", id(self)))
            race.trace_read(("tracer", id(self), "ring"))
            snapshot = list(self._finished)
            race.lock_released(("tracer-ring", id(self)))
        return sorted(snapshot, key=lambda s: (s.start, s.span_id))

    def drain(self) -> list[Span]:
        """Atomically snapshot and clear the ring (used by workers).

        Snapshot and clear happen under one lock acquisition: a span
        finishing concurrently lands either in the returned list or in
        the ring for the next drain — never in neither.
        """
        with self._ring_lock:
            race.lock_acquired(("tracer-ring", id(self)))
            race.trace_write(("tracer", id(self), "ring"))
            snapshot = list(self._finished)
            self._finished.clear()
            race.lock_released(("tracer-ring", id(self)))
        return sorted(snapshot, key=lambda s: (s.start, s.span_id))

    def aggregates(self) -> dict[str, SpanAggregate]:
        """Per-name cumulative (count, total duration), sorted by name.

        Lifetime totals: unlike :meth:`spans`, these are unaffected by
        ring eviction, :meth:`drain`, and :meth:`clear`.
        """
        with self._aggregate_lock:
            race.lock_acquired(("tracer-agg", id(self)))
            race.trace_read(("tracer", id(self), "aggregates"))
            snapshot = {
                name: SpanAggregate(entry.count, entry.total_seconds)
                for name, entry in sorted(self._aggregates.items())
            }
            race.lock_released(("tracer-agg", id(self)))
        return snapshot

    @property
    def evicted(self) -> int:
        """Spans silently dropped by the bounded ring since construction.

        Lifetime counter (never reset by :meth:`drain` / :meth:`clear`):
        a nonzero value means exported traces are truncated — exactly
        what ``tracer_spans_evicted_total`` surfaces on ``/metrics``.
        """
        with self._ring_lock:
            race.lock_acquired(("tracer-ring", id(self)))
            race.trace_read(("tracer", id(self), "ring"))
            count = self._evicted
            race.lock_released(("tracer-ring", id(self)))
        return count

    def clear(self) -> None:
        """Drop every finished span (cumulative aggregates survive)."""
        with self._ring_lock:
            race.lock_acquired(("tracer-ring", id(self)))
            race.trace_write(("tracer", id(self), "ring"))
            self._finished.clear()
            race.lock_released(("tracer-ring", id(self)))

    def __len__(self) -> int:
        with self._ring_lock:
            race.lock_acquired(("tracer-ring", id(self)))
            race.trace_read(("tracer", id(self), "ring"))
            count = len(self._finished)
            race.lock_released(("tracer-ring", id(self)))
        return count


@contextmanager
def maybe_span(
    tracer: Tracer | None, name: str, **attrs: AttrValue
) -> Iterator[SpanLike]:
    """``tracer.span(...)`` when tracing is on, else a shared no-op span.

    Instrumented call sites use this unconditionally so the untraced hot
    path pays only a ``None`` check plus one generator frame — the
    overhead benchmark (``benchmarks/bench_obs_overhead.py``) holds the
    traced-vs-untraced gap under 5% of epoch latency.
    """
    if tracer is None:
        yield NULL_SPAN
    else:
        with tracer.span(name, **attrs) as span:
            yield span


# ------------------------------------------------------------- wire format

SpanWire = tuple  # (name, span_id, parent_id, track, start, end, attrs-items)


def span_to_wire(span: Span) -> tuple:
    """Flatten a span to a primitive tuple for worker IPC."""
    return (
        span.name,
        span.span_id,
        span.parent_id,
        span.track,
        span.start,
        span.end,
        tuple(span.attrs.items()),
    )


def span_from_wire(wire: tuple) -> Span:
    """Rebuild a span from its wire tuple."""
    name, span_id, parent_id, track, start, end, attrs = wire
    return Span(
        name=name,
        span_id=span_id,
        parent_id=parent_id,
        track=track,
        start=start,
        end=end,
        attrs=dict(attrs),
    )
