"""The transaction flight ledger: per-transaction causal lifecycles.

Aggregate metrics say *how many* transactions aborted; the ledger says
*what happened to this one* — and *who killed it*.  It is a bounded,
dependency-free structured event log recording every transaction's path
through the node:

``ingest``
    The transaction entered the epoch via a delivered block.
``speculate``
    The streaming engine executed it speculatively against the previous
    epoch's pre-state (streaming runs only).
``reconcile``
    The reconciliation pass kept the speculation (``outcome="kept"``) or
    re-executed it because its reads intersected the committed write
    delta (``outcome="reexecuted"``) — streaming runs only.
``execute``
    Simulation finished (``ok`` carries success/failure).
``schedule``
    Concurrency control admitted it at sequence ``seq`` (``reordered`` /
    ``revived`` flag the Section IV-D rescue paths).
``commit``
    Its writes were applied; ``group`` is the commit-group sequence.
``abort``
    It fell out of the epoch.  ``reason`` is the taxonomy label and
    ``edges`` the attributed conflict edges ``[peer txid, address,
    kind]`` threaded from the sorter/validator (or the commit-time
    delta guard), so every ``unserializable_write`` / ``delta_overflow``
    abort names its killer.

Events live in a bounded ring (oldest evicted first; ``evicted`` counts
the loss so truncation is detectable), while the per-address contention
aggregates are cumulative and survive eviction.  ``write_jsonl`` exports
one JSON object per line behind a schema-versioned meta line;
``validate_ledger`` is the independent checker CI runs against exported
files.

Digest stability: ``timeline_digest`` hashes only the *stage-stable*
event kinds (ingest/execute/schedule/commit/abort) in a canonical order,
never the streaming-only speculate/reconcile events or arrival order, so
a barrier run and a streaming run over the same workload produce the
same digest — the property ``repro analyze txn`` relies on when
replaying a timeline.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.obs.taxonomy import (
    ABORT_REASONS,
    DELTA_OVERFLOW,
    EDGE_KINDS,
    UNSERIALIZABLE_WRITE,
)

SCHEMA = "repro-flight-ledger/1"
"""Schema tag carried by the JSONL meta line (first line of an export)."""

DEFAULT_MAX_EVENTS = 200_000
"""Default event-ring bound (~4 epochs of 480 txns at 4 events each,
with generous headroom)."""

EVENT_KINDS: tuple[str, ...] = (
    "ingest",
    "speculate",
    "reconcile",
    "execute",
    "schedule",
    "commit",
    "abort",
)
"""Every lifecycle stage an event can record (closed set)."""

STABLE_KINDS: tuple[str, ...] = ("ingest", "execute", "schedule", "commit", "abort")
"""Kinds present in both barrier and streaming runs — the digest basis."""

RECONCILE_OUTCOMES: tuple[str, ...] = ("kept", "reexecuted")

_KIND_RANK = {kind: rank for rank, kind in enumerate(EVENT_KINDS)}

Event = dict[str, Any]
"""One ledger event: ``{"epoch", "txid", "kind", ...kind attrs}``."""


class FlightLedger:
    """Bounded, thread-safe event log of per-transaction lifecycles.

    ``record``/``record_many`` are safe from any thread (the streaming
    engine's back stage commits on a background thread while the main
    thread speculates the next epoch).  The ring drops oldest events
    when full — ``evicted`` counts the drops and ``recorded`` the total
    ever recorded, so exporters can tell a complete ledger from a
    truncated one.  Per-address abort attribution aggregates are
    cumulative: they keep counting after the ring wraps.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self._events: deque[Event] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self._recorded = 0
        self._evicted = 0
        self._addr_aborts: dict[str, dict[str, int]] = {}

    # -- recording ---------------------------------------------------------

    def record(self, epoch: int, txid: int, kind: str, **attrs: Any) -> None:
        """Record one lifecycle event."""
        event: Event = {"epoch": epoch, "txid": txid, "kind": kind}
        event.update(attrs)
        with self._lock:
            self._append(event)

    def record_many(self, events: Iterable[Event]) -> None:
        """Record pre-built events under one lock acquisition.

        The pipeline batches an epoch's events through here so the
        ledger adds one lock round-trip per phase, not per transaction.
        """
        with self._lock:
            for event in events:
                self._append(event)

    def _append(self, event: Event) -> None:
        if len(self._events) == self.max_events:
            self._evicted += 1
        self._events.append(event)
        self._recorded += 1
        if event["kind"] == "abort":
            for edge in event.get("edges", ()):
                _peer, address, edge_kind = edge
                per_kind = self._addr_aborts.setdefault(str(address), {})
                per_kind[edge_kind] = per_kind.get(edge_kind, 0) + 1

    # -- introspection -----------------------------------------------------

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including evicted ones)."""
        with self._lock:
            return self._recorded

    @property
    def evicted(self) -> int:
        """Events silently dropped by the bounded ring."""
        with self._lock:
            return self._evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> list[Event]:
        """Snapshot of the retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def events_for(self, txid: int) -> list[Event]:
        """Retained events of one transaction, oldest first."""
        with self._lock:
            return [e for e in self._events if e["txid"] == txid]

    def contention(self) -> dict[str, dict[str, int]]:
        """Cumulative per-address abort attribution: address -> edge-kind
        counts.  Survives ring eviction."""
        with self._lock:
            return {a: dict(kinds) for a, kinds in self._addr_aborts.items()}

    # -- export ------------------------------------------------------------

    def meta(self) -> dict[str, Any]:
        """The export meta line: schema tag plus loss accounting."""
        with self._lock:
            return {
                "schema": SCHEMA,
                "events": len(self._events),
                "recorded": self._recorded,
                "evicted": self._evicted,
            }

    def write_jsonl(self, path: str | Path) -> int:
        """Export as JSONL (meta line first); returns lines written."""
        meta = self.meta()
        events = self.events()
        lines = [json.dumps(meta, sort_keys=True)]
        lines.extend(json.dumps(event, sort_keys=True) for event in events)
        Path(path).write_text("\n".join(lines) + "\n")
        return len(lines)


def read_jsonl(path: str | Path) -> tuple[dict[str, Any], list[Event]]:
    """Parse an exported ledger; returns ``(meta, events)``.

    Raises ``ValueError`` on a file that is not a flight-ledger export.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError("empty ledger file")
    meta = json.loads(lines[0])
    if not isinstance(meta, dict) or meta.get("schema") != SCHEMA:
        raise ValueError(f"not a flight ledger (expected schema {SCHEMA!r})")
    events = [json.loads(line) for line in lines[1:] if line.strip()]
    return meta, events


def validate_ledger(path: str | Path) -> list[str]:
    """Schema-check an exported ledger; returns human-readable problems.

    Checks the meta line, every event's required fields, the closed kind
    sets, and the attribution invariant: every ``unserializable_write``
    or ``delta_overflow`` abort must carry at least one attributed edge
    whose kind is in :data:`repro.obs.taxonomy.EDGE_KINDS`.
    """
    problems: list[str] = []
    try:
        meta, events = read_jsonl(path)
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        return [f"unreadable ledger: {exc}"]
    for key in ("events", "recorded", "evicted"):
        if not isinstance(meta.get(key), int):
            problems.append(f"meta line missing integer field {key!r}")
    if isinstance(meta.get("events"), int) and meta["events"] != len(events):
        problems.append(
            f"meta says {meta['events']} events, file holds {len(events)}"
        )
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        epoch, txid, kind = event.get("epoch"), event.get("txid"), event.get("kind")
        if not isinstance(epoch, int) or epoch < 0:
            problems.append(f"{where}: bad epoch {epoch!r}")
        if not isinstance(txid, int):
            problems.append(f"{where}: bad txid {txid!r}")
        if kind not in EVENT_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        if kind == "schedule" and not isinstance(event.get("seq"), int):
            problems.append(f"{where}: schedule event without integer seq")
        if kind == "execute" and not isinstance(event.get("ok"), bool):
            problems.append(f"{where}: execute event without boolean ok")
        if kind == "reconcile" and event.get("outcome") not in RECONCILE_OUTCOMES:
            problems.append(
                f"{where}: reconcile outcome {event.get('outcome')!r}"
            )
        if kind == "abort":
            reason = event.get("reason")
            if reason not in ABORT_REASONS:
                problems.append(f"{where}: unknown abort reason {reason!r}")
            edges = event.get("edges", [])
            if not isinstance(edges, list):
                problems.append(f"{where}: edges is not a list")
                continue
            for edge in edges:
                if (
                    not isinstance(edge, (list, tuple))
                    or len(edge) != 3
                    or not isinstance(edge[0], int)
                    or not isinstance(edge[1], str)
                    or edge[2] not in EDGE_KINDS
                ):
                    problems.append(f"{where}: malformed edge {edge!r}")
            if reason in (UNSERIALIZABLE_WRITE, DELTA_OVERFLOW) and not edges:
                problems.append(
                    f"{where}: {reason} abort of T{txid} carries no "
                    "attributed edge"
                )
    return problems


def _stable_events(
    events: Iterable[Event], txid: int | None = None
) -> list[Event]:
    selected = [
        event
        for event in events
        if event["kind"] in STABLE_KINDS
        and (txid is None or event["txid"] == txid)
    ]
    selected.sort(
        key=lambda e: (
            e["epoch"],
            e["txid"],
            _KIND_RANK[e["kind"]],
            json.dumps(e, sort_keys=True),
        )
    )
    return selected


def timeline_digest(events: Iterable[Event], txid: int | None = None) -> str:
    """Hex digest over the stage-stable events (optionally one txn's).

    Stable across barrier and streaming runs of the same workload:
    speculate/reconcile events are excluded and events are hashed in
    canonical ``(epoch, txid, stage)`` order, not arrival order.
    """
    hasher = hashlib.sha256()
    for event in _stable_events(events, txid):
        hasher.update(json.dumps(event, sort_keys=True).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def iter_timeline(events: Iterable[Event], txid: int) -> Iterator[Event]:
    """One transaction's events in causal order (stable kinds in stage
    order, speculate/reconcile interleaved by epoch)."""
    mine = [event for event in events if event["txid"] == txid]
    mine.sort(key=lambda e: (e["epoch"], _KIND_RANK[e["kind"]]))
    return iter(mine)


def aggregate_contention(
    events: Iterable[Event],
) -> dict[str, dict[str, Any]]:
    """Fold abort events into a per-address contention table.

    Returns address -> ``{"aborts", "kinds", "victims", "peers"}`` where
    *aborts* is the address's total attributed abort mass, *kinds* the
    per-edge-kind breakdown, and *victims*/*peers* the distinct
    transactions convicted on / blamed for the address.
    """
    table: dict[str, dict[str, Any]] = {}
    for event in events:
        if event["kind"] != "abort":
            continue
        for edge in event.get("edges", ()):
            peer, address, edge_kind = edge[0], str(edge[1]), edge[2]
            entry = table.setdefault(
                address,
                {"aborts": 0, "kinds": {}, "victims": set(), "peers": set()},
            )
            entry["aborts"] += 1
            entry["kinds"][edge_kind] = entry["kinds"].get(edge_kind, 0) + 1
            entry["victims"].add(event["txid"])
            if peer >= 0:
                entry["peers"].add(peer)
    return table


def delta_promotion_candidates(
    table: Mapping[str, Mapping[str, Any]]
) -> list[str]:
    """Addresses whose abort mass is write-write dominated.

    A W!=W-dominated hot address is exactly what operation-level CC's
    commutative deltas absorb (ROADMAP item 2): promote its writes to
    deltas and the collisions fold instead of aborting.  R<W-dominated
    addresses stay put — reads cannot commute.
    """
    candidates = [
        address
        for address, entry in table.items()
        if entry["kinds"].get("ww", 0) > entry["aborts"] / 2
    ]
    candidates.sort(key=lambda a: (-table[a]["aborts"], a))
    return candidates


def estimate_skew(masses: Iterable[int]) -> float | None:
    """Zipf-exponent estimate from a ranked contention-mass distribution.

    Least-squares slope of log(mass) against log(rank), negated — the
    ``s`` a Zipf(s) access pattern would need to produce this abort
    profile.  ``None`` with fewer than three contended addresses (no
    meaningful fit).
    """
    import math

    ranked = sorted((m for m in masses if m > 0), reverse=True)
    if len(ranked) < 3:
        return None
    xs = [math.log(rank + 1) for rank in range(len(ranked))]
    ys = [math.log(mass) for mass in ranked]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denom = sum((x - mean_x) ** 2 for x in xs)
    if denom == 0:
        return None
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / denom
    return -slope
