"""Multi-replica network: every node processes every epoch independently.

The paper's correctness story rests on determinism — given the same
concurrent blocks, every node must derive the same commit order and the
same state root (Section III-B: "each node commits a batch of
transactions deterministically based on the proposed scheduling
information").  :class:`ReplicaNetwork` drives N independent full nodes
from one miner set through the discrete-event simulator, delivering each
epoch to each replica after a per-link broadcast delay, and checks
agreement after every epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dag.chain import ParallelChains
from repro.dag.mempool import Mempool
from repro.dag.ohie import EpochCoordinator
from repro.dag.pow import PoWParams
from repro.errors import NetworkError
from repro.net.links import LinkModel
from repro.net.simulator import Simulator
from repro.node.metrics import MetricsRegistry
from repro.node.node import FullNode
from repro.node.phases import EpochReport
from repro.node.pipeline import Scheduler
from repro.obs.ledger import FlightLedger
from repro.obs.tracer import Tracer, maybe_span
from repro.state.flat import make_statedb
from repro.vm.contracts.smallbank import default_registry
from repro.workload.smallbank import SmallBankConfig, SmallBankWorkload, initial_state

SchedulerFactory = Callable[[], Scheduler]


@dataclass
class EpochAgreement:
    """Agreement outcome of one epoch across replicas."""

    epoch_index: int
    state_roots: list[bytes]
    committed: list[int]
    delivery_times: list[float]

    @property
    def agreed(self) -> bool:
        """True when every replica derived the same root and commit count."""
        return len(set(self.state_roots)) == 1 and len(set(self.committed)) == 1


@dataclass
class ReplicaNetworkConfig:
    """Shape of the replica deployment."""

    replica_count: int = 3
    chain_count: int = 4
    block_size: int = 50
    account_count: int = 1_000
    skew: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.replica_count < 1:
            raise NetworkError("need at least one replica")


class ReplicaNetwork:
    """N full nodes fed identical epochs through simulated links."""

    def __init__(
        self,
        scheduler_factory: SchedulerFactory,
        config: ReplicaNetworkConfig | None = None,
        tracer: Tracer | None = None,
        with_ledgers: bool = False,
    ) -> None:
        self.config = config or ReplicaNetworkConfig()
        self.tracer = tracer
        pow_params = PoWParams()
        workload_config = SmallBankConfig(
            account_count=self.config.account_count,
            skew=self.config.skew,
            seed=self.config.seed,
        )
        self.simulator = Simulator()
        self.links = [
            LinkModel(seed=self.config.seed + replica)
            for replica in range(self.config.replica_count)
        ]
        self.mempool = Mempool()
        self.workload = SmallBankWorkload(workload_config)
        self.miner_chains = ParallelChains(
            chain_count=self.config.chain_count, pow_params=pow_params
        )
        self.coordinator = EpochCoordinator(
            chains=self.miner_chains,
            miners=[f"miner-{i}" for i in range(4)],
            block_size=self.config.block_size,
        )
        self.replicas: list[FullNode] = []
        # One registry per replica so per-replica abort/latency series stay
        # separable (agreement checks compare replicas; pooled counters
        # would hide a diverging one).
        self.metrics: list[MetricsRegistry] = []
        # One flight ledger per replica, same separability argument: a
        # replica that aborts differently should show its own lifecycle.
        self.ledgers: list[FlightLedger | None] = []
        for _ in range(self.config.replica_count):
            # Replicas run the flat fast path; the agreement check across
            # replicas (and the flat/trie equivalence sweep) guards roots.
            state = make_statedb()
            state.seed(initial_state(workload_config))
            registry = MetricsRegistry()
            self.metrics.append(registry)
            ledger = FlightLedger() if with_ledgers else None
            self.ledgers.append(ledger)
            self.replicas.append(
                FullNode(
                    chains=ParallelChains(
                        chain_count=self.config.chain_count, pow_params=pow_params
                    ),
                    state=state,
                    scheduler=scheduler_factory(),
                    registry=default_registry(),
                    metrics=registry,
                    tracer=tracer,
                    ledger=ledger,
                )
            )
        self.agreements: list[EpochAgreement] = []

    def run_epoch(self) -> EpochAgreement:
        """Mine one epoch, broadcast to every replica, check agreement."""
        per_epoch = self.config.chain_count * self.config.block_size
        if len(self.mempool) < per_epoch:
            self.mempool.submit_many(self.workload.generate(per_epoch * 2))
        blocks = self.coordinator.mine_epoch(
            self.mempool, state_root=self.replicas[0].state_root
        )
        reports: list[EpochReport | None] = [None] * len(self.replicas)
        delivery_times: list[float] = [0.0] * len(self.replicas)

        def deliver(replica_index: int) -> Callable[[], None]:
            def handler() -> None:
                with maybe_span(
                    self.tracer, "net.replica_deliver", replica=replica_index
                ):
                    reports[replica_index] = self.replicas[
                        replica_index
                    ].receive_epoch(blocks)
                delivery_times[replica_index] = self.simulator.now

            return handler

        for index, link in enumerate(self.links):
            delay = max(link.block_delay(block.size) for block in blocks)
            self.simulator.schedule(delay, deliver(index))
        self.simulator.run()

        agreement = EpochAgreement(
            epoch_index=reports[0].epoch_index,
            state_roots=[report.state_root for report in reports],
            committed=[report.committed for report in reports],
            delivery_times=delivery_times,
        )
        self.agreements.append(agreement)
        return agreement

    def run_epochs(self, count: int) -> list[EpochAgreement]:
        """Run several epochs; stops early if agreement is ever lost."""
        out = []
        for _ in range(count):
            agreement = self.run_epoch()
            out.append(agreement)
            if not agreement.agreed:
                break
        return out

    @property
    def all_agreed(self) -> bool:
        """True while every processed epoch reached agreement."""
        return all(agreement.agreed for agreement in self.agreements)
