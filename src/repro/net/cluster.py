"""The simulated evaluation cluster (the paper's 14-node testbed).

Twelve miners propose blocks in parallel (one epoch per block interval),
one client submits SmallBank transactions, and one full node validates,
schedules, and commits — the node the paper measures.  Simulated time
covers block intervals and broadcast delays; the full node's *processing*
time is real measured wall-clock, because that is precisely the quantity
the paper's latency/throughput plots report.

Effective throughput of an epoch is ``committed / max(block_interval,
processing_time)``: when processing outpaces mining, mining is the
bottleneck (the paper's 1 s expected block interval); when processing is
slower — Serial, or CG under contention — processing time dominates and
throughput collapses, which is exactly Figure 12's story.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dag.chain import ParallelChains
from repro.dag.mempool import Mempool
from repro.dag.ohie import EpochCoordinator
from repro.dag.pow import PoWParams
from repro.errors import NetworkError
from repro.net.links import LinkModel
from repro.net.simulator import Simulator
from repro.node.metrics import MetricsRegistry
from repro.node.node import FullNode
from repro.node.phases import EpochReport
from repro.node.pipeline import PipelineConfig, Scheduler
from repro.obs.ledger import FlightLedger
from repro.obs.tracer import Tracer, maybe_span
from repro.state.flat import make_statedb
from repro.storage.api import KVStore
from repro.storage.memstore import MemStore
from repro.vm.contracts.smallbank import default_registry
from repro.vm.costmodel import ExecutionCostModel, ZERO_COST
from repro.workload.smallbank import SmallBankConfig, SmallBankWorkload, initial_state


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated deployment (paper defaults)."""

    miner_count: int = 12
    block_concurrency: int = 12
    block_size: int = 200
    block_interval: float = 1.0
    account_count: int = 10_000
    skew: float = 0.0
    seed: int = 0
    workers: int = 0
    use_vm: bool = False
    exec_backend: str = "auto"
    delta_cc: bool = False
    flat_state: bool = True
    state_cache: int = 0
    streaming: bool = False
    certify: bool = False
    cost_model: ExecutionCostModel = ZERO_COST
    store: "KVStore | None" = None

    def __post_init__(self) -> None:
        if self.block_concurrency <= 0 or self.miner_count <= 0:
            raise NetworkError("cluster needs miners and at least one chain")
        if self.block_interval <= 0:
            raise NetworkError("block_interval must be positive")


@dataclass
class EpochOutcome:
    """One epoch's report plus its simulated timeline."""

    report: EpochReport
    processing_seconds: float
    epoch_seconds: float

    @property
    def effective_tps(self) -> float:
        """Committed transactions per (simulated) second for this epoch."""
        return self.report.committed / self.epoch_seconds if self.epoch_seconds else 0.0


@dataclass
class ClusterRun:
    """Aggregate results of a multi-epoch run."""

    outcomes: list[EpochOutcome] = field(default_factory=list)

    @property
    def committed(self) -> int:
        """Total committed transactions."""
        return sum(outcome.report.committed for outcome in self.outcomes)

    @property
    def duration(self) -> float:
        """Total simulated seconds."""
        return sum(outcome.epoch_seconds for outcome in self.outcomes)

    @property
    def effective_throughput(self) -> float:
        """Committed transactions per simulated second across the run."""
        return self.committed / self.duration if self.duration else 0.0

    @property
    def mean_abort_rate(self) -> float:
        """Average abort rate across epochs."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.report.abort_rate for outcome in self.outcomes) / len(
            self.outcomes
        )


class Cluster:
    """Builds and drives the full simulated deployment."""

    def __init__(
        self,
        scheduler: Scheduler,
        config: ClusterConfig | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        ledger: FlightLedger | None = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.metrics = metrics
        self.tracer = tracer
        self.ledger = ledger
        workload_config = SmallBankConfig(
            account_count=self.config.account_count,
            skew=self.config.skew,
            seed=self.config.seed,
        )
        self.workload = SmallBankWorkload(workload_config)
        self.mempool = Mempool()
        self.simulator = Simulator()
        self.links = LinkModel(seed=self.config.seed)
        pow_params = PoWParams()
        self.miner_chains = ParallelChains(
            chain_count=self.config.block_concurrency, pow_params=pow_params
        )
        self.coordinator = EpochCoordinator(
            chains=self.miner_chains,
            miners=[f"miner-{i}" for i in range(self.config.miner_count)],
            block_size=self.config.block_size,
        )
        state = make_statedb(
            # An explicit store (e.g. an LSM-backed node) replaces the
            # default in-memory trie-node store; roots are identical
            # either way.
            store=self.config.store if self.config.store is not None else MemStore(),
            cache_size=self.config.state_cache,
            flat=self.config.flat_state,
            tracer=tracer,
        )
        state.seed(initial_state(workload_config))
        self.node = FullNode(
            chains=ParallelChains(
                chain_count=self.config.block_concurrency, pow_params=pow_params
            ),
            state=state,
            scheduler=scheduler,
            # Delta-CC needs the assembled bytecode deployed even for
            # native execution: the static classifier reads it.
            registry=default_registry(
                include_bytecode=self.config.use_vm or self.config.delta_cc
            ),
            config=PipelineConfig(
                workers=self.config.workers,
                use_vm=self.config.use_vm,
                backend=self.config.exec_backend,
                delta_cc=self.config.delta_cc,
                flat_state=self.config.flat_state,
                state_cache=self.config.state_cache,
                streaming=self.config.streaming,
                certify=self.config.certify,
            ),
            metrics=metrics,
            tracer=tracer,
            ledger=ledger,
        )

    def close(self) -> None:
        """Release the measuring node's worker pools (idempotent)."""
        self.node.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def feed_client(self, transaction_count: int) -> int:
        """The client node submits a burst of SmallBank transactions."""
        return self.mempool.submit_many(self.workload.generate(transaction_count))

    def run_epochs(self, epoch_count: int) -> ClusterRun:
        """Mine and process ``epoch_count`` epochs; refills the mempool."""
        run = ClusterRun()
        per_epoch = self.config.block_concurrency * self.config.block_size
        for _ in range(epoch_count):
            if len(self.mempool) < per_epoch:
                self.feed_client(per_epoch * 2)
            run.outcomes.append(self._run_one_epoch())
        return run

    def _run_one_epoch(self) -> EpochOutcome:
        with maybe_span(self.tracer, "net.mine_epoch") as span:
            blocks = self.coordinator.mine_epoch(
                self.mempool, state_root=self.node.state_root
            )
            span.set(blocks=len(blocks))
        # Simulated time: the block interval elapses, then broadcasts land.
        broadcast_delay = max(
            self.links.block_delay(block.size) for block in blocks
        )
        self.simulator.run(until=self.simulator.now + self.config.block_interval)
        self.simulator.run(until=self.simulator.now + broadcast_delay)
        # Real time: the full node's measured processing cost.
        start = time.perf_counter()
        report = self.node.receive_epoch(blocks)
        measured = time.perf_counter() - start
        # Simulated execution charge at the paper's calibrated EVM rate
        # (0 by default): serial executes everything one by one, the
        # concurrent schemes only pay the parallel speculative phase.
        if report.scheme == "serial":
            modelled = self.config.cost_model.serial_batch_seconds(
                report.input_transactions
            )
        else:
            modelled = self.config.cost_model.concurrent_batch_seconds(
                report.input_transactions
            )
        processing = measured + modelled
        epoch_seconds = max(
            self.config.block_interval + broadcast_delay, processing
        )
        self.simulator.run(
            until=self.simulator.now
            + max(0.0, processing - self.config.block_interval)
        )
        return EpochOutcome(
            report=report,
            processing_seconds=processing,
            epoch_seconds=epoch_seconds,
        )
