"""Network simulation: event loop, link model, and the evaluation cluster."""

from repro.net.cluster import Cluster, ClusterConfig, ClusterRun, EpochOutcome
from repro.net.links import LinkModel
from repro.net.multinode import (
    EpochAgreement,
    ReplicaNetwork,
    ReplicaNetworkConfig,
)
from repro.net.simulator import Simulator
from repro.net.sync import SyncReport, sync_from_archive

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterRun",
    "EpochAgreement",
    "EpochOutcome",
    "ReplicaNetwork",
    "ReplicaNetworkConfig",
    "LinkModel",
    "Simulator",
    "SyncReport",
    "sync_from_archive",
]
