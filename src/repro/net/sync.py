"""Catch-up synchronisation: a lagging node pulls archived blocks.

A replica that was offline (or partitioned) cannot process new epochs —
their blocks carry state roots it has not reached.  ``sync_from_archive``
replays the missing epochs from a peer's :class:`~repro.dag.blockstore.BlockStore`
through the node's normal validation-and-processing path, so a synced
node is byte-identical to one that never went offline (asserted by
tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.blockstore import BlockStore
from repro.errors import NetworkError
from repro.node.node import FullNode
from repro.obs.tracer import maybe_span


@dataclass(frozen=True)
class SyncReport:
    """What a catch-up pass accomplished."""

    start_epoch: int
    epochs_applied: int
    transactions_committed: int

    @property
    def caught_up(self) -> bool:
        """True when at least one epoch was applied (or none were needed)."""
        return self.epochs_applied >= 0


def sync_from_archive(
    node: FullNode, archive: BlockStore, max_epochs: int | None = None
) -> SyncReport:
    """Replay archived epochs through the node until it is caught up.

    The archive is treated as an untrusted peer: every block goes through
    the node's full validation (PoW, chain assignment, parentage, state
    root), so a corrupt or malicious archive cannot poison the node —
    it just fails the sync with :class:`~repro.errors.NetworkError`.
    """
    chain_count = node.chains.chain_count
    start = node._next_epoch
    applied = 0
    committed = 0
    while max_epochs is None or applied < max_epochs:
        height = node._next_epoch
        blocks = []
        for chain_id in range(chain_count):
            try:
                block = archive.block_at(chain_id, height)
            except Exception as exc:  # noqa: BLE001 - rewrap with context
                raise NetworkError(
                    f"archive returned corrupt block chain={chain_id} "
                    f"height={height}: {exc}"
                ) from exc
            if block is not None:
                blocks.append(block)
        if not blocks:
            break  # archive exhausted: caught up
        try:
            with maybe_span(node.tracer, "sync.round", epoch=height) as span:
                report = node.receive_epoch(blocks)
                span.set(committed=report.committed)
        except Exception as exc:  # noqa: BLE001 - rewrap with context
            raise NetworkError(
                f"sync failed at epoch {height}: {exc}"
            ) from exc
        applied += 1
        committed += report.committed
    return SyncReport(
        start_epoch=start,
        epochs_applied=applied,
        transactions_committed=committed,
    )
