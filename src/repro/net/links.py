"""Network link model.

The paper's cluster is one region on 100 Mbps Ethernet; we model links
with a base propagation delay, deterministic jitter, and a serialisation
delay proportional to message size at the configured bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import NetworkError

DEFAULT_BANDWIDTH_BPS = 100_000_000 / 8  # 100 Mbps in bytes/second
DEFAULT_BASE_DELAY = 0.002  # same-region RTT/2 of ~2 ms


@dataclass
class LinkModel:
    """Deterministic latency model for one cluster."""

    base_delay: float = DEFAULT_BASE_DELAY
    jitter: float = 0.001
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter < 0 or self.bandwidth_bps <= 0:
            raise NetworkError("link parameters must be positive")
        self._rng = random.Random(self.seed)

    def delay(self, message_bytes: int = 0) -> float:
        """Latency for one message of the given size."""
        serialisation = message_bytes / self.bandwidth_bps
        noise = self._rng.uniform(0.0, self.jitter)
        return self.base_delay + serialisation + noise

    def block_delay(self, transaction_count: int, bytes_per_txn: int = 250) -> float:
        """Latency for broadcasting a block of ``transaction_count`` txns."""
        return self.delay(message_bytes=transaction_count * bytes_per_txn)
