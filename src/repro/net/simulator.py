"""Discrete-event simulator.

Replaces the paper's physical 14-node cluster: simulated time advances
from event to event, so experiments are deterministic and run as fast as
the CPU allows regardless of how much "network time" they cover.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError

EventFn = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: EventFn = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """A single-threaded event loop over virtual time."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._processed = 0

    def schedule(self, delay: float, fn: EventFn) -> _Event:
        """Run ``fn`` after ``delay`` simulated seconds; returns a handle."""
        if delay < 0:
            raise NetworkError(f"cannot schedule in the past (delay={delay})")
        event = _Event(time=self.now + delay, seq=next(self._counter), fn=fn)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, fn: EventFn) -> _Event:
        """Run ``fn`` at absolute simulated time ``when``."""
        return self.schedule(when - self.now, fn)

    def cancel(self, event: _Event) -> None:
        """Cancel a scheduled event (lazy removal)."""
        event.cancelled = True

    def run(self, until: float | None = None) -> int:
        """Process events (up to ``until`` if given); returns events run."""
        ran = 0
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = max(self.now, event.time)
            event.fn()
            ran += 1
            self._processed += 1
        if until is not None and self.now < until:
            self.now = until
        return ran

    def step(self) -> bool:
        """Process exactly one event; returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = max(self.now, event.time)
            event.fn()
            self._processed += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Events still queued (cancelled ones included until popped)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed
