"""Tarjan's strongly-connected-components algorithm (iterative).

Used by the CG strawman to restrict Johnson's cycle enumeration to the
non-trivial SCCs, exactly as Fabric++ does.  Implemented iteratively so
conflict graphs with thousands of vertices do not overflow Python's
recursion limit.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence, TypeVar

Node = TypeVar("Node", bound=Hashable)


class _Frame:
    """One simulated recursion frame of Tarjan's DFS."""

    __slots__ = ("node", "successors", "position", "child")

    def __init__(self, node, successors) -> None:
        self.node = node
        self.successors = successors
        self.position = 0
        self.child = None


def strongly_connected_components(
    vertices: Sequence[Node], out_edges: Mapping[Node, set[Node]]
) -> list[list[Node]]:
    """Return the SCCs of a directed graph in deterministic order.

    Vertices are visited in the given order and successors in sorted order,
    so the output is stable across runs.  Complexity ``O(V + E)``.
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in vertices:
        if root in index_of:
            continue
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [_Frame(root, sorted(out_edges.get(root, ())))]
        while work:
            frame = work[-1]
            node = frame.node
            if frame.child is not None:
                lowlink[node] = min(lowlink[node], lowlink[frame.child])
                frame.child = None
            descended = False
            while frame.position < len(frame.successors):
                succ = frame.successors[frame.position]
                frame.position += 1
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    frame.child = succ
                    work.append(_Frame(succ, sorted(out_edges.get(succ, ()))))
                    descended = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if descended:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def nontrivial_components(
    vertices: Sequence[Node], out_edges: Mapping[Node, set[Node]]
) -> list[list[Node]]:
    """SCCs that can contain cycles: size > 1, or a self-looped vertex."""
    result = []
    for component in strongly_connected_components(vertices, out_edges):
        if len(component) > 1:
            result.append(component)
        else:
            only = component[0]
            if only in out_edges.get(only, set()):
                result.append(component)
    return result
