"""Johnson's elementary-circuit enumeration with a resource budget.

Fabric++ (and hence the paper's CG strawman) finds every elementary cycle
of the conflict graph with Johnson's algorithm, whose cost is
``O((V + E) * (c + 1))`` for ``c`` cycles.  Under high contention ``c``
explodes — the paper reports the CG scheme dying from out-of-memory at
``skew = 0.8``.  We bound the enumeration with an explicit budget and
raise :class:`~repro.errors.CycleBudgetExceeded` instead of exhausting
host memory; harnesses report this the way the paper reports OOM.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence, TypeVar

from repro.baselines.tarjan import strongly_connected_components
from repro.errors import CycleBudgetExceeded

Node = TypeVar("Node", bound=Hashable)

DEFAULT_CYCLE_BUDGET = 200_000
"""Maximum number of elementary cycles enumerated before giving up."""


def find_elementary_cycles(
    vertices: Sequence[Node],
    out_edges: Mapping[Node, set[Node]],
    budget: int = DEFAULT_CYCLE_BUDGET,
) -> list[tuple[Node, ...]]:
    """Enumerate all elementary cycles of a directed graph.

    Follows Johnson (1975): vertices are processed in ascending order; for
    each start vertex ``s`` only the subgraph induced by vertices ``>= s``
    inside ``s``'s SCC is searched, with the blocked-set / unblock
    machinery bounding redundant work.

    Raises
    ------
    CycleBudgetExceeded
        If more than ``budget`` cycles are found.
    """
    order: dict[Node, int] = {v: i for i, v in enumerate(sorted(vertices))}
    cycles: list[tuple[Node, ...]] = []
    for start in sorted(vertices, key=order.__getitem__):
        component = _component_of(start, order, out_edges)
        if component is None:
            continue
        _circuits_from(start, component, cycles, budget)
    return cycles


def _component_of(
    start: Node, order: Mapping[Node, int], out_edges: Mapping[Node, set[Node]]
) -> dict[Node, set[Node]] | None:
    """Adjacency of the SCC containing ``start`` within ``{v >= start}``.

    Returns ``None`` when that SCC is trivial and self-loop-free, i.e. no
    cycle can start at ``start``.
    """
    start_rank = order[start]
    allowed = {v for v, rank in order.items() if rank >= start_rank}
    sub_edges = {
        v: {w for w in out_edges.get(v, ()) if w in allowed} for v in allowed
    }
    for component in strongly_connected_components(sorted(allowed), sub_edges):
        if start not in component:
            continue
        members = set(component)
        if len(members) == 1 and start not in sub_edges.get(start, set()):
            return None
        return {v: {w for w in sub_edges.get(v, ()) if w in members} for v in members}
    return None


def _circuits_from(
    start: Node,
    adjacency: dict[Node, set[Node]],
    cycles: list[tuple[Node, ...]],
    budget: int,
) -> None:
    """Iterative version of Johnson's CIRCUIT procedure rooted at ``start``."""
    blocked: set[Node] = set()
    block_map: dict[Node, set[Node]] = {}
    path: list[Node] = [start]
    blocked.add(start)
    # Each frame: (node, sorted successor list, next index, found_cycle flag).
    frames: list[list] = [[start, sorted(adjacency[start]), 0, False]]
    while frames:
        frame = frames[-1]
        node, successors, position, _found = frame
        descended = False
        while frame[2] < len(successors):
            succ = successors[frame[2]]
            frame[2] += 1
            if succ == start:
                cycles.append(tuple(path))
                if len(cycles) > budget:
                    raise CycleBudgetExceeded(budget)
                frame[3] = True
            elif succ not in blocked:
                path.append(succ)
                blocked.add(succ)
                frames.append([succ, sorted(adjacency[succ]), 0, False])
                descended = True
                break
        if descended:
            continue
        frames.pop()
        path.pop()
        if frame[3]:
            _unblock(node, blocked, block_map)
            if frames:
                frames[-1][3] = True
        else:
            for succ in adjacency[node]:
                block_map.setdefault(succ, set()).add(node)


def _unblock(node: Node, blocked: set[Node], block_map: dict[Node, set[Node]]) -> None:
    """Johnson's UNBLOCK: recursively release vertices waiting on ``node``."""
    work = [node]
    while work:
        current = work.pop()
        if current in blocked:
            blocked.discard(current)
            for waiter in block_map.pop(current, ()):  # vertices blocked on us
                work.append(waiter)


def count_cycles(
    vertices: Sequence[Node],
    out_edges: Mapping[Node, set[Node]],
    budget: int = DEFAULT_CYCLE_BUDGET,
) -> int:
    """Convenience wrapper returning only the number of elementary cycles."""
    return len(find_elementary_cycles(vertices, out_edges, budget))
