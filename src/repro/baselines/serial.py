"""The Serial baseline: today's DAG-based blockchains.

Concurrent blocks are processed sequentially in their deterministic total
order and the transactions inside each block are executed and committed
one by one.  There are no conflicts — and no concurrency: the cost is the
full serial execution latency, which Table IV and Figure 12 show dwarfing
everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.schedule import Schedule, serial_schedule
from repro.txn.transaction import Transaction


@dataclass
class SerialResult:
    """Schedule produced by the serial scheme (never aborts)."""

    schedule: Schedule

    def as_dict(self) -> dict[str, float]:
        """No concurrency-control phases exist for the serial scheme."""
        return {}


class SerialScheduler:
    """Commits every transaction in id order, one at a time."""

    name = "serial"

    def schedule(self, transactions: Sequence[Transaction]) -> SerialResult:
        """Return the identity schedule: all transactions, id order."""
        order = [t.txid for t in sorted(transactions, key=lambda t: t.txid)]
        return SerialResult(schedule=serial_schedule(order))
