"""Baseline concurrency-control schemes the paper compares against."""

from repro.baselines.conflict_graph import (
    CGConfig,
    CGResult,
    CGScheduler,
    CGTimings,
    ConflictGraph,
    build_conflict_graph,
    remove_cycles,
    topological_order,
)
from repro.baselines.johnson import (
    DEFAULT_CYCLE_BUDGET,
    count_cycles,
    find_elementary_cycles,
)
from repro.baselines.occ import OCCResult, OCCScheduler
from repro.baselines.pcc import PCCResult, PCCScheduler
from repro.baselines.serial import SerialResult, SerialScheduler
from repro.baselines.tarjan import nontrivial_components, strongly_connected_components

__all__ = [
    "CGConfig",
    "CGResult",
    "CGScheduler",
    "CGTimings",
    "ConflictGraph",
    "DEFAULT_CYCLE_BUDGET",
    "OCCResult",
    "OCCScheduler",
    "PCCResult",
    "PCCScheduler",
    "SerialResult",
    "SerialScheduler",
    "build_conflict_graph",
    "count_cycles",
    "find_elementary_cycles",
    "nontrivial_components",
    "remove_cycles",
    "strongly_connected_components",
    "topological_order",
]
