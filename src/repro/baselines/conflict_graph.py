"""The CG strawman: OCC with a transaction-level conflict graph.

Reimplements the scheme the paper compares against (Section III-D),
following Fabric++/FabricSharp: ① pairwise dependency capture into a
conflict graph, ② cycle detection (Tarjan + Johnson) and removal by
aborting transactions, ③ topological sorting into a *serial* commit
order.  Per-step timings are recorded so Figure 10 can be reproduced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.johnson import DEFAULT_CYCLE_BUDGET, find_elementary_cycles
from repro.baselines.tarjan import nontrivial_components
from repro.core.schedule import Schedule, serial_schedule
from repro.errors import CycleBudgetExceeded, SchedulingError
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class CGConfig:
    """Tunables for the conflict-graph scheme.

    Attributes
    ----------
    cycle_budget:
        Maximum number of elementary cycles Johnson's algorithm may
        enumerate before the scheme fails (models the paper's OOM).
    """

    cycle_budget: int = DEFAULT_CYCLE_BUDGET


@dataclass
class CGTimings:
    """Wall-clock seconds spent in each CG sub-phase (Figure 10)."""

    graph_construction: float = 0.0
    cycle_detection: float = 0.0
    topological_sorting: float = 0.0

    @property
    def total(self) -> float:
        """Total concurrency-control time."""
        return self.graph_construction + self.cycle_detection + self.topological_sorting

    def as_dict(self) -> dict[str, float]:
        """Phase name -> seconds, for harness reporting."""
        return {
            "graph_construction": self.graph_construction,
            "cycle_detection": self.cycle_detection,
            "topological_sorting": self.topological_sorting,
        }


@dataclass
class ConflictGraph:
    """Transaction-level conflict graph (Definition 2)."""

    vertices: list[int] = field(default_factory=list)
    out_edges: dict[int, set[int]] = field(default_factory=dict)
    in_edges: dict[int, set[int]] = field(default_factory=dict)

    @property
    def edge_count(self) -> int:
        """Number of directed dependency edges."""
        return sum(len(targets) for targets in self.out_edges.values())

    def add_edge(self, src: int, dst: int) -> None:
        """Record the transaction dependency ``src -> dst``."""
        self.out_edges.setdefault(src, set()).add(dst)
        self.in_edges.setdefault(dst, set()).add(src)

    def remove_vertex(self, txid: int) -> None:
        """Drop a vertex and all incident edges (transaction aborted)."""
        for succ in self.out_edges.pop(txid, set()):
            self.in_edges.get(succ, set()).discard(txid)
        for pred in self.in_edges.pop(txid, set()):
            self.out_edges.get(pred, set()).discard(txid)
        self.vertices.remove(txid)


@dataclass
class CGResult:
    """Schedule plus diagnostics from one CG run."""

    schedule: Schedule
    timings: CGTimings
    graph: ConflictGraph
    cycle_count: int = 0
    failed: bool = False
    failure: str | None = None


def build_conflict_graph(transactions: Sequence[Transaction]) -> ConflictGraph:
    """Pairwise dependency capture (Definition 1).

    For every ordered pair, a read-write dependency ``T_u -> T_v`` is added
    when ``RS(T_u)`` intersects ``WS(T_v)`` (the reader must commit before
    the writer under snapshot reads); write-write dependencies are directed
    from the smaller to the larger id, the deterministic order the paper
    uses.  This is the ``O((|V|^2 - |V|) / 2)`` comparison step the paper
    criticises — kept faithfully, including its cost.
    """
    ordered = sorted(transactions, key=lambda t: t.txid)
    graph = ConflictGraph(vertices=[t.txid for t in ordered])
    summaries = [(t.txid, t.read_set, t.write_set) for t in ordered]
    count = len(summaries)
    for i in range(count):
        txid_a, reads_a, writes_a = summaries[i]
        for j in range(i + 1, count):
            txid_b, reads_b, writes_b = summaries[j]
            if reads_a & writes_b:
                graph.add_edge(txid_a, txid_b)
            if reads_b & writes_a:
                graph.add_edge(txid_b, txid_a)
            if writes_a & writes_b:
                graph.add_edge(txid_a, txid_b)
    return graph


def remove_cycles(
    graph: ConflictGraph, budget: int = DEFAULT_CYCLE_BUDGET
) -> tuple[set[int], int]:
    """Abort transactions until the graph is acyclic (Fabric++ style).

    All elementary cycles inside each non-trivial SCC are enumerated with
    Johnson's algorithm; the transaction participating in the most cycles
    is aborted greedily (ties broken towards the larger id, i.e. the
    younger transaction) until every enumerated cycle is broken.  Because
    removing vertices never creates cycles, one enumeration pass suffices
    per SCC, but SCCs are re-checked until none remain.

    Returns the aborted ids and the number of cycles enumerated.
    """
    aborted: set[int] = set()
    total_cycles = 0
    while True:
        components = nontrivial_components(sorted(graph.vertices), graph.out_edges)
        if not components:
            return aborted, total_cycles
        for component in components:
            members = set(component)
            sub_edges = {
                v: {w for w in graph.out_edges.get(v, ()) if w in members}
                for v in members
            }
            cycles = find_elementary_cycles(sorted(members), sub_edges, budget)
            total_cycles += len(cycles)
            live_cycles = [set(cycle) for cycle in cycles]
            while live_cycles:
                victim = _most_frequent_vertex(live_cycles)
                aborted.add(victim)
                graph.remove_vertex(victim)
                live_cycles = [c for c in live_cycles if victim not in c]


def _most_frequent_vertex(cycles: list[set[int]]) -> int:
    """Vertex appearing in the most cycles; ties favour the larger id."""
    counts: dict[int, int] = {}
    for cycle in cycles:
        for txid in cycle:
            counts[txid] = counts.get(txid, 0) + 1
    best_txid = -1
    best_count = -1
    for txid, count in counts.items():
        if count > best_count or (count == best_count and txid > best_txid):
            best_txid = txid
            best_count = count
    return best_txid


def topological_order(graph: ConflictGraph) -> list[int]:
    """Kahn's algorithm over the acyclic residual graph.

    Ties are broken by the smallest transaction id for determinism.
    """
    import heapq

    in_degree = {v: len(graph.in_edges.get(v, ())) for v in graph.vertices}
    heap = [v for v, degree in in_degree.items() if degree == 0]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        node = heapq.heappop(heap)
        order.append(node)
        for succ in sorted(graph.out_edges.get(node, ())):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                heapq.heappush(heap, succ)
    if len(order) != len(graph.vertices):
        raise SchedulingError("topological sort saw a residual cycle")
    return order


class CGScheduler:
    """End-to-end CG concurrency control (the paper's strawman)."""

    name = "cg"

    def __init__(self, config: CGConfig | None = None) -> None:
        self.config = config or CGConfig()

    def schedule(self, transactions: Sequence[Transaction]) -> CGResult:
        """Run construction, cycle removal, and topological sorting.

        On a cycle-budget blowout the result carries ``failed=True`` and an
        empty schedule, mirroring the paper's out-of-memory data points.
        """
        timings = CGTimings()

        start = time.perf_counter()
        graph = build_conflict_graph(transactions)
        timings.graph_construction = time.perf_counter() - start

        start = time.perf_counter()
        try:
            aborted, cycle_count = remove_cycles(graph, self.config.cycle_budget)
        except CycleBudgetExceeded as exc:
            timings.cycle_detection = time.perf_counter() - start
            return CGResult(
                schedule=Schedule(aborted=tuple(sorted(t.txid for t in transactions))),
                timings=timings,
                graph=graph,
                failed=True,
                failure=str(exc),
            )
        timings.cycle_detection = time.perf_counter() - start

        start = time.perf_counter()
        order = topological_order(graph)
        timings.topological_sorting = time.perf_counter() - start

        schedule = serial_schedule(order, aborted=sorted(aborted))
        return CGResult(
            schedule=schedule,
            timings=timings,
            graph=graph,
            cycle_count=cycle_count,
        )
