"""Plain optimistic concurrency control (Fabric-style baseline).

Transactions are validated in id order against the writes of transactions
already admitted from the same batch: a transaction whose read set
intersects an earlier-admitted write set observed a stale snapshot value
and is aborted.  No scheduling information is built, which makes the
scheme cheap but — as the paper stresses — prone to very high abort rates
under contention (Fabric exceeds 40%).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.schedule import Schedule, serial_schedule
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction


@dataclass
class OCCResult:
    """Schedule plus validation timing from one OCC run."""

    schedule: Schedule
    validation_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Phase name -> seconds, matching the other schemes' results."""
        return {"validation": self.validation_seconds}


class OCCScheduler:
    """First-committer-wins validation in transaction-id order."""

    name = "occ"

    def schedule(self, transactions: Sequence[Transaction]) -> OCCResult:
        """Validate the batch and return a serial schedule of survivors."""
        start = time.perf_counter()
        committed: list[int] = []
        aborted: list[int] = []
        written: set[Address] = set()
        for txn in sorted(transactions, key=lambda t: t.txid):
            if txn.read_set & written:
                aborted.append(txn.txid)
                continue
            committed.append(txn.txid)
            written.update(txn.write_set)
        elapsed = time.perf_counter() - start
        return OCCResult(
            schedule=serial_schedule(committed, aborted=aborted),
            validation_seconds=elapsed,
        )
