"""Pessimistic concurrency control (PEEP-style ordered locking).

The paper's Table II lists PEEP as the representative PCC scheme: every
transaction acquires locks on its accessed addresses in a deterministic
(sorted) order, which prevents deadlock and eliminates aborts entirely —
at the cost of lock-queue serialisation on contended addresses.

We model the steady-state effect of ordered locking rather than the lock
protocol itself: transactions are placed into commit *waves* in id order,
where a transaction must wait for every conflicting predecessor to finish
first (its wave is one past the latest wave holding a conflicting lock).
Non-conflicting transactions share a wave and run concurrently, exactly
as lock-compatible transactions execute in parallel under PEEP; read
locks are shared, write locks exclusive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.schedule import Schedule, schedule_from_sequences
from repro.txn.rwset import Address
from repro.txn.transaction import Transaction


@dataclass
class PCCResult:
    """Schedule plus scheduling time from one PCC run.

    ``requires_reexecution`` tells the pipeline that commit waves must be
    *executed* in wave order (each wave observes the previous waves'
    writes) rather than applying snapshot-speculated write values: under
    locking there is no speculation against a stale snapshot.
    """

    schedule: Schedule
    scheduling_seconds: float = 0.0
    requires_reexecution: bool = True

    def as_dict(self) -> dict[str, float]:
        """Phase name -> seconds, matching the other schemes' results."""
        return {"lock_scheduling": self.scheduling_seconds}


class PCCScheduler:
    """Ordered-locking schedule: zero aborts, wave-level concurrency.

    ``uses_declared_rwsets`` tells the pipeline to schedule from the
    transactions' declared read/write sets without a speculative phase:
    ordered locking requires a-priori lock sets (PEEP's standing
    assumption) and executes under locks rather than against a snapshot.
    """

    name = "pcc"
    uses_declared_rwsets = True

    def schedule(self, transactions: Sequence[Transaction]) -> PCCResult:
        """Assign each transaction the earliest wave its locks allow.

        ``last_write[a]`` is the latest wave writing address ``a`` and
        ``last_read[a]`` the latest wave reading it.  A transaction must
        start after every conflicting lock holder:

        * reading ``a``: after the last writer of ``a`` (shared read locks
          may coexist);
        * writing ``a``: after both the last writer and the last reader.
        """
        start = time.perf_counter()
        last_write: dict[Address, int] = {}
        last_read: dict[Address, int] = {}
        waves: dict[int, int] = {}
        for txn in sorted(transactions, key=lambda t: t.txid):
            wave = 1
            for address in txn.read_set:
                wave = max(wave, last_write.get(address, 0) + 1)
            for address in txn.write_set:
                wave = max(
                    wave,
                    last_write.get(address, 0) + 1,
                    last_read.get(address, 0) + 1,
                )
            waves[txn.txid] = wave
            for address in txn.read_set:
                last_read[address] = max(last_read.get(address, 0), wave)
            for address in txn.write_set:
                last_write[address] = max(last_write.get(address, 0), wave)
        elapsed = time.perf_counter() - start
        return PCCResult(
            schedule=schedule_from_sequences(waves),
            scheduling_seconds=elapsed,
        )
