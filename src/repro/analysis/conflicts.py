"""Conflict-count analysis (Table I and Section III-C).

The paper quantifies potential conflicts as ``C = N(N-1)/2 * p`` where
``p`` is the pairwise conflict probability, and reports the average number
of conflicts per accessed address under a fixed Zipfian access pattern
over 10k accounts.  This module provides the analytical model plus
empirical measurement over generated workloads, so the benchmark can
print both the paper's closed form and observed counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.txn.transaction import Transaction
from repro.workload.zipf import ZipfSampler


def pairwise_conflict_count(transaction_count: int, probability: float = 1.0) -> float:
    """Equation (1): ``C = N(N-1)/2 * p``.

    With ``probability=1`` this returns the coefficient of ``p`` — the
    form Table I reports (e.g. "780p" for 40 transactions).
    """
    pairs = transaction_count * (transaction_count - 1) / 2
    return pairs * probability


def expected_distinct_addresses(access_count: int, sampler: ZipfSampler) -> float:
    """Expected number of distinct addresses after ``access_count`` draws.

    ``E[distinct] = sum_j (1 - (1 - q_j)^m)`` for access probabilities
    ``q_j``; the divisor behind Table I's per-address averages.
    """
    return sum(
        1.0 - (1.0 - probability) ** access_count
        for probability in sampler.probabilities()
    )


def conflicts_per_address(
    transaction_count: int,
    accesses_per_txn: int,
    sampler: ZipfSampler,
    probability: float = 1.0,
) -> float:
    """Average conflicts per accessed address (Table I, second row)."""
    total = pairwise_conflict_count(transaction_count, probability)
    distinct = expected_distinct_addresses(transaction_count * accesses_per_txn, sampler)
    return total / distinct if distinct else 0.0


@dataclass(frozen=True)
class ConflictMeasurement:
    """Empirically measured conflict structure of one batch."""

    transaction_count: int
    conflicting_pairs: int
    distinct_addresses: int
    max_conflicts_on_address: int
    mean_conflicts_per_address: float

    @property
    def conflict_probability(self) -> float:
        """Observed pairwise conflict probability ``p``."""
        pairs = self.transaction_count * (self.transaction_count - 1) / 2
        return self.conflicting_pairs / pairs if pairs else 0.0


def measure_conflicts(transactions: Sequence[Transaction]) -> ConflictMeasurement:
    """Count actual conflicting pairs and per-address conflict load.

    Two transactions conflict when one writes an address the other reads
    or writes.  Per-address conflicts count conflicting pairs meeting on
    that address (a pair conflicting on several addresses counts once per
    address, matching how the ACG sees the load).
    """
    readers: dict[str, list[int]] = {}
    writers: dict[str, list[int]] = {}
    for txn in transactions:
        for address in txn.read_set:
            readers.setdefault(address, []).append(txn.txid)
        for address in txn.write_set:
            writers.setdefault(address, []).append(txn.txid)
    conflicting_pairs: set[tuple[int, int]] = set()
    per_address: dict[str, int] = {}
    addresses = set(readers) | set(writers)
    for address in addresses:
        write_list = writers.get(address, [])
        read_list = readers.get(address, [])
        count = 0
        for i, writer in enumerate(write_list):
            for other in write_list[i + 1 :]:
                conflicting_pairs.add(_pair(writer, other))
                count += 1
            for reader in read_list:
                if reader != writer:
                    conflicting_pairs.add(_pair(writer, reader))
                    count += 1
        per_address[address] = count
    mean = (
        sum(per_address.values()) / len(per_address) if per_address else 0.0
    )
    return ConflictMeasurement(
        transaction_count=len(transactions),
        conflicting_pairs=len(conflicting_pairs),
        distinct_addresses=len(addresses),
        max_conflicts_on_address=max(per_address.values(), default=0),
        mean_conflicts_per_address=mean,
    )


def _pair(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)
