"""Contention analysis: where the conflicts actually live.

Summarises a batch's address access distribution — the top hot addresses,
how concentrated access is (Gini coefficient), and the share of
transactions touching the hottest address.  Used by the CLI's
``hotspots`` command and by workload-design sanity checks in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class AddressHeat:
    """Access statistics for one address."""

    address: str
    reads: int
    writes: int

    @property
    def total(self) -> int:
        """All accesses."""
        return self.reads + self.writes


@dataclass(frozen=True)
class ContentionReport:
    """Batch-level contention summary."""

    transaction_count: int
    distinct_addresses: int
    hottest: tuple[AddressHeat, ...]
    gini: float
    hottest_share: float

    def describe(self) -> str:
        """One-line narrative of the contention level."""
        if self.gini < 0.3:
            level = "low (near-uniform access)"
        elif self.gini < 0.6:
            level = "moderate"
        else:
            level = "high (hot-spot dominated)"
        return (
            f"{self.distinct_addresses} addresses, gini={self.gini:.2f} ({level}), "
            f"hottest address appears in {100 * self.hottest_share:.1f}% of txns"
        )


def analyze_contention(
    transactions: Sequence[Transaction], top: int = 10
) -> ContentionReport:
    """Build a contention report for a batch."""
    reads: dict[str, int] = {}
    writes: dict[str, int] = {}
    touching_hottest: dict[str, int] = {}
    for txn in transactions:
        for address in txn.read_set:
            reads[address] = reads.get(address, 0) + 1
        for address in txn.write_set:
            writes[address] = writes.get(address, 0) + 1
        for address in txn.rwset.addresses:
            touching_hottest[address] = touching_hottest.get(address, 0) + 1
    addresses = sorted(set(reads) | set(writes))
    heats = [
        AddressHeat(
            address=address,
            reads=reads.get(address, 0),
            writes=writes.get(address, 0),
        )
        for address in addresses
    ]
    heats.sort(key=lambda h: (-h.total, h.address))
    totals = [heat.total for heat in heats]
    hottest_share = 0.0
    if heats and transactions:
        hottest_share = touching_hottest.get(heats[0].address, 0) / len(transactions)
    return ContentionReport(
        transaction_count=len(transactions),
        distinct_addresses=len(addresses),
        hottest=tuple(heats[:top]),
        gini=gini_coefficient(totals),
        hottest_share=hottest_share,
    )


def gini_coefficient(values: Sequence[int]) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, ->1 = concentrated)."""
    positives = sorted(v for v in values if v > 0)
    count = len(positives)
    if count == 0:
        return 0.0
    total = sum(positives)
    if total == 0:
        return 0.0
    weighted = sum((index + 1) * value for index, value in enumerate(positives))
    return (2 * weighted) / (count * total) - (count + 1) / count
