"""Concurrency sanitizer: a vector-clock happens-before race detector.

The streaming engine (PR 8) and background LSM compaction (PR 7) made the
node genuinely multi-threaded, so shared-state races are now a first-class
correctness risk.  This module implements a FastTrack-style detector over
*logical* shared locations: instrumented call sites report reads, writes,
and synchronisation edges, and the detector flags any pair of accesses to
one location that conflict (at least one write) without a happens-before
path between them.

The detector is **off by default** and every hook is a cheap
``if _DETECTOR is None`` check, so the production hot path pays one global
load per instrumented site.  Enable it with :func:`enable` (the CLI's
``--sanitize`` flag, or the ``REPRO_SANITIZE=1`` environment variable
honoured by the test suite).

Memory model
------------
CPython's GIL makes single bytecode-level container operations atomic
(one ``dict.__setitem__``, one ``deque.append``).  Call sites that rely
on exactly that — e.g. ``FlatStateDB.peek`` racing the background
committer by design, with reconciliation re-executing any speculation
whose reads were touched — mark their accesses ``relaxed=True``.  Like
C11 atomics, two relaxed accesses never race; a relaxed access against a
*plain* access still does.  Compound read-modify-write operations
(``x += 1``, check-then-insert) are **not** GIL-atomic and must use plain
accesses plus a lock (modelled via :meth:`RaceDetector.acquire` /
:meth:`RaceDetector.release`) or a fork/join edge
(:meth:`RaceDetector.hb_release` / :meth:`RaceDetector.hb_acquire`, used
at thread-pool ``submit()`` / ``Future.result()`` boundaries).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

__all__ = [
    "RaceDetector",
    "RaceFinding",
    "active",
    "disable",
    "enable",
    "hb_acquire",
    "hb_release",
    "lock_acquired",
    "lock_released",
    "trace_read",
    "trace_write",
]


@dataclass(frozen=True)
class RaceFinding:
    """One detected data race between two unordered conflicting accesses."""

    location: str
    first_op: str
    first_thread: str
    second_op: str
    second_thread: str
    severity: str = "error"

    def render(self) -> str:
        return (
            f"RACE on {self.location}: {self.first_op} by {self.first_thread} "
            f"is unordered with {self.second_op} by {self.second_thread}"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "location": self.location,
            "first": {"op": self.first_op, "thread": self.first_thread},
            "second": {"op": self.second_op, "thread": self.second_thread},
            "severity": self.severity,
        }


@dataclass
class _Epoch:
    """A (thread, clock) stamp for one access, FastTrack-style."""

    tid: int
    clock: int
    op: str
    thread_name: str
    relaxed: bool


@dataclass
class _Location:
    """Access history for one logical shared location."""

    last_write: _Epoch | None = None
    reads: dict[int, _Epoch] = field(default_factory=dict)


class RaceDetector:
    """Vector-clock happens-before detector over logical locations.

    All public methods are thread-safe; the detector serialises its own
    bookkeeping with one internal lock, which also keeps the reported
    interleavings coherent.  ``Hashable`` location and sync keys are
    chosen by the instrumentation sites (tuples naming the object and
    field, e.g. ``("cache-stats", id(stats), "hits")``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clocks: dict[int, dict[int, int]] = {}
        self._sync: dict[Hashable, dict[int, int]] = {}
        self._locations: dict[Hashable, _Location] = {}
        self._findings: list[RaceFinding] = []
        self._seen: set[tuple[str, str, str, str, str]] = set()
        self.accesses = 0
        self.relaxed_accesses = 0

    # -- vector clock plumbing (callers hold self._lock) -------------------

    def _clock_of(self, tid: int) -> dict[int, int]:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = {tid: 1}
            self._clocks[tid] = clock
        return clock

    @staticmethod
    def _join(into: dict[int, int], other: dict[int, int]) -> None:
        for tid, tick in other.items():
            if into.get(tid, 0) < tick:
                into[tid] = tick

    def _happens_before(self, stamp: _Epoch, tid: int) -> bool:
        """True when ``stamp`` is ordered before thread ``tid``'s present."""
        if stamp.tid == tid:
            return True
        return self._clock_of(tid).get(stamp.tid, 0) >= stamp.clock

    # -- synchronisation edges ---------------------------------------------

    def acquire(self, key: Hashable) -> None:
        """Record a lock acquire: join the lock's clock into this thread."""
        tid = threading.get_ident()
        with self._lock:
            released = self._sync.get(key)
            if released:
                self._join(self._clock_of(tid), released)

    def release(self, key: Hashable) -> None:
        """Record a lock release: publish this thread's clock to the lock."""
        tid = threading.get_ident()
        with self._lock:
            clock = self._clock_of(tid)
            stored = self._sync.setdefault(key, {})
            self._join(stored, clock)
            clock[tid] = clock.get(tid, 0) + 1

    # Fork/join edges (thread-pool submit / Future.result) reuse the same
    # mechanics: release at the publishing side, acquire at the receiving
    # side.  Separate names keep instrumentation sites self-describing.
    hb_release = release
    hb_acquire = acquire

    # -- accesses -----------------------------------------------------------

    def _record(self, key: Hashable, op: str, relaxed: bool) -> None:
        tid = threading.get_ident()
        name = threading.current_thread().name
        with self._lock:
            self.accesses += 1
            if relaxed:
                self.relaxed_accesses += 1
            location = self._locations.setdefault(str(key), _Location())
            clock = self._clock_of(tid)
            stamp = _Epoch(
                tid=tid,
                clock=clock.get(tid, 0),
                op=op,
                thread_name=name,
                relaxed=relaxed,
            )
            if op == "write":
                prior: Iterable[_Epoch] = [
                    *([location.last_write] if location.last_write else []),
                    *location.reads.values(),
                ]
                for previous in prior:
                    self._check(str(key), previous, stamp)
                location.last_write = stamp
                location.reads = {}
            else:
                if location.last_write is not None:
                    self._check(str(key), location.last_write, stamp)
                location.reads[tid] = stamp

    def _check(self, location: str, first: _Epoch, second: _Epoch) -> None:
        if first.relaxed and second.relaxed:
            return
        if self._happens_before(first, second.tid):
            return
        finding = RaceFinding(
            location=location,
            first_op=first.op,
            first_thread=first.thread_name,
            second_op=second.op,
            second_thread=second.thread_name,
        )
        dedup = (
            finding.location,
            finding.first_op,
            finding.first_thread,
            finding.second_op,
            finding.second_thread,
        )
        if dedup not in self._seen:
            self._seen.add(dedup)
            self._findings.append(finding)

    def read(self, key: Hashable, *, relaxed: bool = False) -> None:
        self._record(key, "read", relaxed)

    def write(self, key: Hashable, *, relaxed: bool = False) -> None:
        self._record(key, "write", relaxed)

    # -- reporting ----------------------------------------------------------

    def report(self) -> list[RaceFinding]:
        """All distinct races observed so far."""
        with self._lock:
            return list(self._findings)

    def summary(self) -> dict[str, Any]:
        with self._lock:
            return {
                "report": "race-sanitizer",
                "ok": not self._findings,
                "accesses": self.accesses,
                "relaxed_accesses": self.relaxed_accesses,
                "locations": len(self._locations),
                "races": [finding.to_json() for finding in self._findings],
            }


_DETECTOR: RaceDetector | None = None


def enable(detector: RaceDetector | None = None) -> RaceDetector:
    """Install (and return) the process-global detector."""
    global _DETECTOR
    _DETECTOR = detector if detector is not None else RaceDetector()
    return _DETECTOR


def disable() -> None:
    """Remove the global detector; hooks become no-ops again."""
    global _DETECTOR
    _DETECTOR = None


def active() -> RaceDetector | None:
    """The installed detector, or ``None`` when sanitizing is off."""
    return _DETECTOR


def _maybe_enable_from_env() -> None:
    if os.environ.get("REPRO_SANITIZE", "").strip() in {"1", "true", "on"}:
        enable()


# -- module-level hooks: one global load when the sanitizer is off ---------


def trace_read(key: Hashable, *, relaxed: bool = False) -> None:
    if _DETECTOR is not None:
        _DETECTOR.read(key, relaxed=relaxed)


def trace_write(key: Hashable, *, relaxed: bool = False) -> None:
    if _DETECTOR is not None:
        _DETECTOR.write(key, relaxed=relaxed)


def lock_acquired(key: Hashable) -> None:
    if _DETECTOR is not None:
        _DETECTOR.acquire(key)


def lock_released(key: Hashable) -> None:
    if _DETECTOR is not None:
        _DETECTOR.release(key)


def hb_release(key: Hashable) -> None:
    """Publish a happens-before edge (thread-pool submit, task end)."""
    if _DETECTOR is not None:
        _DETECTOR.release(key)


def hb_acquire(key: Hashable) -> None:
    """Receive a happens-before edge (task start, ``Future.result()``)."""
    if _DETECTOR is not None:
        _DETECTOR.acquire(key)


_maybe_enable_from_env()
