"""Proof-carrying schedule certifier.

An *independent* checker for the concurrency-control output: it takes an
epoch's admitted transactions (their read/write/delta unit sets), the
emitted commit schedule, and the abort bookkeeping, rebuilds the conflict
graph from scratch, and certifies that

(a) the committed set is conflict-serializable — the rebuilt conflict
    digraph, oriented by commit position, is acyclic with the commit
    order itself as the topological witness (the witness is embedded in
    the certificate, so a third party can re-check it without re-running
    the certifier);
(b) the delta-unit invariants of DESIGN invariant 9 hold — readers
    sequence strictly below an address's deltas (R<D), a plain write
    never shares a delta's commit group (W≠D), co-grouped deltas commute
    (D=D, discharged by folding the amounts in two orders); and
(c) abort-reason accounting is conserved against the PR-5 taxonomy —
    every abort is classified, no committed transaction carries a
    reason, and committed ∪ aborted ∪ failed partitions the admitted
    set.

Independence is a design invariant (DESIGN invariant 12): this module
shares **no code** with the CC paths.  It must not import
``repro.core.rank``, ``repro.core.sorting``, ``repro.core.validate``,
``repro.core.acg``, or ``repro.core.scheduler`` — not even for type
annotations — which is pinned by ``tests/analysis/test_certify.py``.
Inputs are duck-typed so the certifier can consume either live pipeline
objects or epoch artifacts parsed back from JSON (``repro.core.export``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.taxonomy import ABORT_REASONS, DELTA_OVERFLOW

# Cap on stored findings per certificate; totals are always exact.
MAX_FINDINGS = 50

#: Finding codes, keyed by code with a one-line description.  ``CERT1xx``
#: are structural, ``CERT11x`` serializability, ``CERT12x`` conservation.
CERT_RULES: dict[str, str] = {
    "CERT101": "scheduled transaction has no admitted read/write set",
    "CERT102": "transaction appears more than once in the schedule",
    "CERT103": "transaction is both committed and aborted",
    "CERT104": "commit group sequences are not strictly increasing",
    "CERT111": "committed reader sequenced at/after a committed writer",
    "CERT112": "two committed writes to one address share a commit group",
    "CERT113": "committed reader sequenced at/after a committed delta (R<D)",
    "CERT114": "plain write shares a commit group with a delta (W≠D)",
    "CERT115": "delta address overlaps the transaction's own reads/writes",
    "CERT116": "group-local delta fold is not commutative",
    "CERT120": "abort reason missing from or outside the taxonomy",
    "CERT121": "abort accounting not conserved across committed/aborted/failed",
}


@dataclass(frozen=True)
class CertFinding:
    """One certification failure."""

    code: str
    message: str
    txids: tuple[int, ...] = ()
    address: str | None = None
    severity: str = "error"

    def render(self) -> str:
        where = f" @{self.address}" if self.address else ""
        return f"{self.code}{where}: {self.message}"

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "txids": list(self.txids),
        }
        if self.address is not None:
            payload["address"] = self.address
        return payload


@dataclass
class EpochCertificate:
    """Machine-checkable verdict for one epoch's commit schedule."""

    epoch_index: int
    scheme: str
    committed: int
    aborted: int
    failed: int
    conflict_edges: int
    delta_folds: int
    witness: tuple[int, ...]
    findings: list[CertFinding] = field(default_factory=list)
    finding_counts: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the epoch is certified."""
        return not self.finding_counts

    @property
    def witness_digest(self) -> str:
        blob = ",".join(str(txid) for txid in self.witness)
        return hashlib.sha256(blob.encode("ascii")).hexdigest()

    def summary(self) -> str:
        if self.ok:
            return (
                f"epoch {self.epoch_index} CERTIFIED: {self.committed} committed, "
                f"{self.aborted} aborted, {self.conflict_edges} conflict edges, "
                f"witness {self.witness_digest[:12]}"
            )
        worst = ", ".join(
            f"{code}×{count}" for code, count in sorted(self.finding_counts.items())
        )
        return f"epoch {self.epoch_index} REJECTED: {worst}"

    def to_json(self) -> dict[str, Any]:
        return {
            "report": "schedule-certificate",
            "epoch": self.epoch_index,
            "scheme": self.scheme,
            "ok": self.ok,
            "committed": self.committed,
            "aborted": self.aborted,
            "failed": self.failed,
            "conflict_edges": self.conflict_edges,
            "delta_folds": self.delta_folds,
            "witness": list(self.witness),
            "witness_digest": self.witness_digest,
            "finding_counts": dict(sorted(self.finding_counts.items())),
            "findings": [finding.to_json() for finding in self.findings],
        }


@dataclass(frozen=True)
class _Units:
    """Normalized unit sets for one transaction."""

    reads: frozenset[str]
    writes: frozenset[str]
    deltas: tuple[tuple[str, Any], ...]


def _normalize_units(rwset: Any) -> _Units:
    """Accept an ``RWSet``-like object or a plain mapping."""
    if isinstance(rwset, Mapping):
        reads = rwset.get("reads", ())
        writes = rwset.get("writes", ())
        deltas = rwset.get("deltas", {})
    else:
        reads = rwset.reads
        writes = rwset.writes
        deltas = rwset.deltas
    delta_items: Iterable[tuple[str, Any]]
    if isinstance(deltas, Mapping):
        delta_items = deltas.items()
    else:
        delta_items = deltas
    return _Units(
        reads=frozenset(reads),
        writes=frozenset(writes),
        deltas=tuple(sorted(delta_items)),
    )


def _normalize_groups(schedule: Any) -> tuple[list[tuple[int, tuple[int, ...]]], set[int]]:
    """Accept a ``Schedule``-like object or ``[(sequence, txids), ...]``."""
    groups = getattr(schedule, "groups", schedule)
    aborted = set(getattr(schedule, "aborted", ()))
    normalized: list[tuple[int, tuple[int, ...]]] = []
    for group in groups:
        if hasattr(group, "sequence"):
            normalized.append((int(group.sequence), tuple(group.txids)))
        else:
            sequence, txids = group
            normalized.append((int(sequence), tuple(txids)))
    return normalized, aborted


class _Collector:
    """Accumulates findings with a storage cap but exact per-code counts."""

    def __init__(self) -> None:
        self.findings: list[CertFinding] = []
        self.counts: dict[str, int] = {}

    def add(
        self,
        code: str,
        message: str,
        txids: tuple[int, ...] = (),
        address: str | None = None,
    ) -> None:
        self.counts[code] = self.counts.get(code, 0) + 1
        if len(self.findings) < MAX_FINDINGS:
            self.findings.append(
                CertFinding(code=code, message=message, txids=txids, address=address)
            )


def certify_epoch(
    rwsets: Mapping[int, Any],
    schedule: Any,
    *,
    abort_reasons: Mapping[int, str] | None = None,
    guard_aborted: Iterable[int] = (),
    failed: Iterable[int] = (),
    admitted: Iterable[int] | None = None,
    reason_counts: Mapping[str, int] | None = None,
    epoch_index: int = 0,
    scheme: str = "nezha",
) -> EpochCertificate:
    """Certify one epoch's commit schedule from first principles.

    Parameters
    ----------
    rwsets:
        ``txid -> RWSet``-like mapping for every transaction that reached
        concurrency control (simulation succeeded).  Values may be
        :class:`repro.txn.rwset.RWSet` instances or plain mappings with
        ``reads``/``writes``/``deltas`` keys (the artifact wire form).
    schedule:
        The emitted schedule: an object with ``groups`` (each carrying
        ``sequence`` and ``txids``) and ``aborted``, or a plain list of
        ``(sequence, txids)`` pairs.
    abort_reasons:
        Per-txid taxonomy labels as emitted by the scheduler.
    guard_aborted:
        Transactions scheduled to commit but aborted by the commit-time
        delta overflow guard; the certifier reclassifies them as aborted
        with reason ``delta_overflow``.
    failed:
        Admitted transactions whose simulation failed (never scheduled).
    admitted:
        The full admitted txid set; defaults to ``rwsets ∪ failed``.
    reason_counts:
        The report-level taxonomy counts, checked for conservation.
    """
    reasons = dict(abort_reasons or {})
    guard_set = set(guard_aborted)
    failed_set = set(failed)
    out = _Collector()

    groups, scheduled_aborted = _normalize_groups(schedule)
    aborted_set = scheduled_aborted | guard_set

    units: dict[int, _Units] = {}
    for txid, rwset in rwsets.items():
        units[int(txid)] = _normalize_units(rwset)

    admitted_set = set(admitted) if admitted is not None else set(units) | failed_set

    # -- structural checks -------------------------------------------------
    position: dict[int, int] = {}
    group_of: dict[int, int] = {}
    witness: list[int] = []
    last_sequence: int | None = None
    for group_index, (sequence, txids) in enumerate(groups):
        if last_sequence is not None and sequence <= last_sequence:
            out.add(
                "CERT104",
                f"group sequence {sequence} follows {last_sequence}",
            )
        last_sequence = sequence
        for txid in txids:
            if txid in guard_set:
                continue  # guard-aborted: writes never applied
            if txid in position:
                out.add("CERT102", f"T{txid} committed twice", (txid,))
                continue
            if txid not in units:
                out.add("CERT101", f"T{txid} scheduled without an RWSet", (txid,))
                continue
            if txid in aborted_set:
                out.add("CERT103", f"T{txid} is committed and aborted", (txid,))
                continue
            position[txid] = len(witness)
            group_of[txid] = group_index
            witness.append(txid)
    committed_set = set(position)

    # -- per-transaction delta structure (CERT115) -------------------------
    for txid in sorted(committed_set):
        txn_units = units[txid]
        overlap = {addr for addr, _ in txn_units.deltas} & (
            txn_units.reads | txn_units.writes
        )
        for address in sorted(overlap):
            out.add(
                "CERT115",
                f"T{txid} carries a delta on {address} it also reads/writes",
                (txid,),
                address,
            )

    # -- rebuild the conflict graph and check the witness ------------------
    readers: dict[str, list[int]] = {}
    writers: dict[str, list[int]] = {}
    delta_writers: dict[str, list[int]] = {}
    for txid in witness:
        txn_units = units[txid]
        for address in txn_units.reads:
            readers.setdefault(address, []).append(txid)
        for address in txn_units.writes:
            writers.setdefault(address, []).append(txid)
        for address, _amount in txn_units.deltas:
            delta_writers.setdefault(address, []).append(txid)

    conflict_edges = 0
    for address in sorted(set(readers) | set(writers) | set(delta_writers)):
        read_list = readers.get(address, [])
        write_list = writers.get(address, [])
        delta_list = delta_writers.get(address, [])

        # W-W: every pair conflicts; distinct groups required (commit
        # order orients the edge, so sorted-adjacent equality suffices).
        conflict_edges += len(write_list) * (len(write_list) - 1) // 2
        by_position = sorted(write_list, key=position.__getitem__)
        for first, second in zip(by_position, by_position[1:]):
            if group_of[first] == group_of[second]:
                out.add(
                    "CERT112",
                    f"T{first} and T{second} both write {address} in one group",
                    (first, second),
                    address,
                )

        # R-W and R-D: every committed reader must sit in a strictly
        # earlier commit group than every *other* writer/delta of the
        # address (snapshot reads); sharing a group is equally invalid.
        for kind, write_like in (("writes", write_list), ("delta", delta_list)):
            if not write_like or not read_list:
                continue
            ranked = sorted(write_like, key=group_of.__getitem__)
            for reader in read_list:
                conflict_edges += len(write_like) - (reader in write_like)
                blocker = ranked[0] if ranked[0] != reader else (
                    ranked[1] if len(ranked) > 1 else None
                )
                if blocker is None or group_of[reader] < group_of[blocker]:
                    continue
                code = "CERT111" if kind == "writes" else "CERT113"
                verb = "writes" if kind == "writes" else "applies a delta to"
                out.add(
                    code,
                    f"T{reader} reads {address} but commits at/after "
                    f"T{blocker}, which {verb} it",
                    (reader, blocker),
                    address,
                )

        # W-D: conflict, distinct groups required in either order.
        if write_list and delta_list:
            conflict_edges += len(write_list) * len(delta_list)
            delta_groups: dict[int, int] = {}
            for txid in delta_list:
                delta_groups.setdefault(group_of[txid], txid)
            for writer in write_list:
                partner = delta_groups.get(group_of[writer])
                if partner is not None and partner != writer:
                    out.add(
                        "CERT114",
                        f"T{writer} writes {address} in the same group as "
                        f"delta T{partner}",
                        (writer, partner),
                        address,
                    )
        # D-D pairs commute (D=D) and are deliberately *not* conflict edges.

    # -- delta-fold commutativity (CERT116) --------------------------------
    delta_folds = 0
    for address in sorted(delta_writers):
        amounts: list[tuple[int, Any]] = []
        for txid in delta_writers[address]:
            for addr, amount in units[txid].deltas:
                if addr == address:
                    amounts.append((txid, amount))
        if len(amounts) < 2:
            continue
        delta_folds += 1
        txids = tuple(txid for txid, _ in amounts)
        if not all(isinstance(amount, int) for _, amount in amounts):
            out.add(
                "CERT116",
                f"non-integer delta amount on {address}",
                txids,
                address,
            )
            continue
        forward = sum(amount for _, amount in amounts)
        backward = sum(amount for _, amount in reversed(amounts))
        if forward != backward:
            out.add(
                "CERT116",
                f"delta fold on {address} is order-dependent",
                txids,
                address,
            )

    # -- abort-reason conservation (CERT120/CERT121) -----------------------
    for txid, reason in sorted(reasons.items()):
        if reason not in ABORT_REASONS:
            out.add(
                "CERT120",
                f"T{txid} aborted with unknown reason {reason!r}",
                (txid,),
            )
        elif txid in committed_set:
            out.add(
                "CERT120",
                f"committed T{txid} carries abort reason {reason!r}",
                (txid,),
            )
    for txid in sorted(guard_set):
        reason = reasons.get(txid, DELTA_OVERFLOW)
        if reason != DELTA_OVERFLOW:
            out.add(
                "CERT120",
                f"guard-aborted T{txid} labelled {reason!r}, "
                f"expected {DELTA_OVERFLOW!r}",
                (txid,),
            )

    accounted = committed_set | aborted_set | failed_set
    if admitted_set != accounted:
        missing = sorted(admitted_set - accounted)
        extra = sorted(accounted - admitted_set)
        out.add(
            "CERT121",
            "committed ∪ aborted ∪ failed does not partition admitted "
            f"(missing={missing[:5]}, extra={extra[:5]})",
            tuple((missing + extra)[:5]),
        )
    if reason_counts is not None:
        total = sum(reason_counts.values())
        if total != len(aborted_set):
            out.add(
                "CERT121",
                f"taxonomy counts sum to {total} but {len(aborted_set)} "
                f"transactions aborted",
            )
        for reason in sorted(reason_counts):
            if reason not in ABORT_REASONS:
                out.add(
                    "CERT121",
                    f"taxonomy counts carry unknown reason {reason!r}",
                )

    return EpochCertificate(
        epoch_index=epoch_index,
        scheme=scheme,
        committed=len(committed_set),
        aborted=len(aborted_set),
        failed=len(failed_set),
        conflict_edges=conflict_edges,
        delta_folds=delta_folds,
        witness=tuple(witness),
        findings=out.findings,
        finding_counts=out.counts,
    )
