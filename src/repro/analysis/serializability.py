"""Schedule certification: independent serializability checking.

``certify_schedule`` validates any scheme's output against the committed
*order* (not the raw sequence numbers), using different machinery than
:func:`repro.core.validate.check_invariants` — the two are run against
each other in the test suite so a bug in one cannot silently pass both.

A committed schedule is conflict-serializable in the snapshot-read model
iff:

1. every committed reader of an address commits before every *other*
   committed writer of that address (a later read would otherwise have
   observed a stale snapshot value), and
2. transactions inside one commit group are pairwise conflict-free, so
   any parallel interleaving of the group is equivalent.

Under operation-level CC the checker also enforces the delta-unit
invariants of DESIGN invariant 9: committed readers sequence strictly
before an address's delta writers (R<D), and a plain write never shares
a commit group with a delta on the same address (W≠D) — co-grouped
deltas are allowed because they commute.

The certifier also reports the dependency graph it built, which doubles
as an analysis artifact (edge counts correlate with the CG scheme's
workload).  The deeper, scheme-independent checker — rebuilt conflict
graph, embedded topological witness, abort-reason conservation — lives
in :mod:`repro.analysis.certify`; this module stays the lightweight
transaction-object variant used by the equivalence suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.schedule import Schedule
from repro.txn.transaction import Transaction


@dataclass
class CertificationReport:
    """Outcome of certifying one schedule."""

    committed_count: int
    dependency_edge_count: int
    order_violations: list[str] = field(default_factory=list)
    group_conflicts: list[str] = field(default_factory=list)
    unknown_txids: list[int] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """True when the schedule is certified serializable."""
        return not (self.order_violations or self.group_conflicts or self.unknown_txids)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.valid:
            return (
                f"CERTIFIED: {self.committed_count} transactions, "
                f"{self.dependency_edge_count} dependencies respected"
            )
        return (
            f"REJECTED: {len(self.order_violations)} order violations, "
            f"{len(self.group_conflicts)} group conflicts, "
            f"{len(self.unknown_txids)} unknown ids"
        )


def certify_schedule(
    transactions: Sequence[Transaction] | Mapping[int, Transaction],
    schedule: Schedule,
) -> CertificationReport:
    """Certify a commit schedule against its transactions."""
    if not isinstance(transactions, Mapping):
        transactions = {t.txid: t for t in transactions}

    position: dict[int, int] = {}
    group_of: dict[int, int] = {}
    unknown: list[int] = []
    for group_index, group in enumerate(schedule.groups):
        for txid in group.txids:
            position[txid] = len(position)
            group_of[txid] = group_index
            if txid not in transactions:
                unknown.append(txid)

    readers: dict[str, list[int]] = {}
    writers: dict[str, list[int]] = {}
    delta_writers: dict[str, list[int]] = {}
    for txid in position:
        txn = transactions.get(txid)
        if txn is None:
            continue
        for address in txn.read_set:
            readers.setdefault(address, []).append(txid)
        for address in txn.write_set:
            writers.setdefault(address, []).append(txid)
        for address in txn.delta_set:
            delta_writers.setdefault(address, []).append(txid)

    order_violations: list[str] = []
    group_conflicts: list[str] = []
    edges = 0
    for address in sorted(set(readers) | set(writers) | set(delta_writers)):
        write_list = writers.get(address, [])
        delta_list = delta_writers.get(address, [])
        for reader in readers.get(address, []):
            for kind, writer in [("write", w) for w in write_list] + [
                ("delta", d) for d in delta_list
            ]:
                if reader == writer:
                    continue
                edges += 1
                verb = "writes" if kind == "write" else "applies a delta to"
                if group_of[reader] == group_of[writer]:
                    group_conflicts.append(
                        f"T{reader} reads and T{writer} {verb} {address} "
                        f"in the same commit group"
                    )
                elif position[reader] > position[writer]:
                    order_violations.append(
                        f"T{reader} reads {address} but commits after "
                        f"T{writer}, which {verb} it"
                    )
        for index, first in enumerate(write_list):
            for second in write_list[index + 1 :]:
                edges += 1
                if group_of[first] == group_of[second]:
                    group_conflicts.append(
                        f"T{first} and T{second} both write {address} "
                        f"in the same commit group"
                    )
        # W≠D: a plain write must not share a group with any delta on
        # the same address (fold order against the write would matter);
        # D=D pairs commute and are deliberately conflict-free.
        for writer in write_list:
            for delta in delta_list:
                if writer == delta:
                    continue
                edges += 1
                if group_of[writer] == group_of[delta]:
                    group_conflicts.append(
                        f"T{writer} writes and T{delta} applies a delta to "
                        f"{address} in the same commit group"
                    )

    return CertificationReport(
        committed_count=len(position),
        dependency_edge_count=edges,
        order_violations=order_violations,
        group_conflicts=group_conflicts,
        unknown_txids=unknown,
    )
