"""Analytical models and measurement helpers for the evaluation."""

from repro.analysis.contention import (
    AddressHeat,
    ContentionReport,
    analyze_contention,
    gini_coefficient,
)
from repro.analysis.conflicts import (
    ConflictMeasurement,
    conflicts_per_address,
    expected_distinct_addresses,
    measure_conflicts,
    pairwise_conflict_count,
)
from repro.analysis.metrics import Summary, geometric_mean, percentile, speedup
from repro.analysis.serializability import CertificationReport, certify_schedule

__all__ = [
    "AddressHeat",
    "CertificationReport",
    "ContentionReport",
    "ConflictMeasurement",
    "Summary",
    "analyze_contention",
    "certify_schedule",
    "conflicts_per_address",
    "expected_distinct_addresses",
    "geometric_mean",
    "gini_coefficient",
    "measure_conflicts",
    "pairwise_conflict_count",
    "percentile",
    "speedup",
]
