"""Analytical models and measurement helpers for the evaluation.

Re-exports are **lazy** (PEP 562): low-level modules (``obs.tracer``,
``state.flat``, ``storage.lsm``) import ``repro.analysis.race`` for their
sanitizer hooks, and an eager ``__init__`` would drag the whole analysis
stack — and through ``serializability`` the ``repro.core`` package — into
every such import, creating a cycle.
"""

from typing import Any

_EXPORTS: dict[str, str] = {
    "AddressHeat": "repro.analysis.contention",
    "ContentionReport": "repro.analysis.contention",
    "analyze_contention": "repro.analysis.contention",
    "gini_coefficient": "repro.analysis.contention",
    "ConflictMeasurement": "repro.analysis.conflicts",
    "conflicts_per_address": "repro.analysis.conflicts",
    "expected_distinct_addresses": "repro.analysis.conflicts",
    "measure_conflicts": "repro.analysis.conflicts",
    "pairwise_conflict_count": "repro.analysis.conflicts",
    "Summary": "repro.analysis.metrics",
    "geometric_mean": "repro.analysis.metrics",
    "percentile": "repro.analysis.metrics",
    "speedup": "repro.analysis.metrics",
    "CertificationReport": "repro.analysis.serializability",
    "certify_schedule": "repro.analysis.serializability",
    "CertFinding": "repro.analysis.certify",
    "EpochCertificate": "repro.analysis.certify",
    "certify_epoch": "repro.analysis.certify",
    "RaceDetector": "repro.analysis.race",
    "RaceFinding": "repro.analysis.race",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
