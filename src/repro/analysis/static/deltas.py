"""Static classification of commutative delta writes.

A store is a *delta site* when the written value is provably
``old ± k`` where ``old`` is the value loaded from the *same* key and
``k`` is a pure input expression — the operation commutes with every
other delta on that key, so the scheduler can let hot-key increments
share a sequence number instead of aborting them as write-write
conflicts.

Eligibility is deliberately strict (every rejection is merely a missed
optimisation, while a wrong acceptance corrupts state):

* the store's value term must match ``ADD(Load(K), E)``, ``ADD(E,
  Load(K))`` (sign +1) or ``SUB(Load(K), E)`` (sign -1), with the store
  key syntactically equal to ``K`` and both ``K`` and ``E`` *clean* —
  containing no ``Load`` and no ⊤;
* no branch condition, other store key, or other store value may
  contain a ``Load`` of a syntactically equal key — control flow and
  other effects must not depend on the old value;
* any ⊤ reaching a store key/value, load key, or branch condition kills
  the whole function: a widened term can hide a ``Load`` dependency;
* a store or load pc that accumulated more than one term across
  worklist revisits kills the whole function — the fixpoint coarsened
  past the point where "the" key of that site is meaningful.

Syntactic key inequality does **not** imply runtime inequality
(``sendPayment(src, dst)`` aliases its two checking keys when ``src ==
dst``), so classification alone never authorises a promotion:
:func:`resolve_sites` concretizes every key under the actual call
inputs and drops any site whose address collides with another store or
load — and the logger's :meth:`~repro.vm.logger.LoggedStorage.
promote_deltas` re-checks the claimed delta against the dynamically
observed values on top of that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.txn.rwset import Address
from repro.vm.decoder import decode
from repro.vm.machine import KeyRenderer
from repro.vm.opcodes import WORD_MASK, Op

from repro.analysis.static.absdomain import (
    AbsVal,
    BinExpr,
    Load,
    NotExpr,
    Top,
    evaluate,
)
from repro.analysis.static.absint import interpret

_WORD_MOD = WORD_MASK + 1


@dataclass(frozen=True)
class DeltaSite:
    """One statically proven commutative store.

    ``pc`` is the SSTORE, ``load_pc`` the SLOAD whose value flows into
    it; ``key`` and ``delta`` are input-only symbolic terms and ``sign``
    applies to the concretized delta (+1 for ``ADD``, -1 for ``SUB``).
    """

    pc: int
    load_pc: int
    key: AbsVal
    delta: AbsVal
    sign: int


@dataclass(frozen=True)
class DeltaClassification:
    """Delta sites of one function plus the alias-check side tables.

    ``store_keys``/``load_keys`` list *every* store and load of the
    function as ``(pc, key term)`` pairs; :func:`resolve_sites`
    concretizes them per call to rule out runtime aliasing that the
    syntactic rules cannot see.
    """

    sites: tuple[DeltaSite, ...] = ()
    store_keys: tuple[tuple[int, AbsVal], ...] = ()
    load_keys: tuple[tuple[int, AbsVal], ...] = ()


EMPTY_CLASSIFICATION = DeltaClassification()


def _contains_top(term: AbsVal) -> bool:
    if isinstance(term, Top):
        return True
    if isinstance(term, BinExpr):
        return _contains_top(term.left) or _contains_top(term.right)
    if isinstance(term, NotExpr):
        return _contains_top(term.operand)
    if isinstance(term, Load):
        return _contains_top(term.key)
    return False


def _contains_load(term: AbsVal, key: AbsVal | None = None) -> bool:
    """Whether ``term`` contains a Load (of ``key``, when given)."""
    if isinstance(term, Load):
        if key is None or term.key == key:
            return True
        return _contains_load(term.key, key)
    if isinstance(term, BinExpr):
        return _contains_load(term.left, key) or _contains_load(term.right, key)
    if isinstance(term, NotExpr):
        return _contains_load(term.operand, key)
    return False


def _match_site(pc: int, key: AbsVal, value: AbsVal) -> DeltaSite | None:
    """Match ``value`` against ``old ± k`` for the store at ``pc``."""
    if not isinstance(value, BinExpr):
        return None
    if value.op is Op.ADD:
        candidates = ((value.left, value.right), (value.right, value.left))
        sign = 1
    elif value.op is Op.SUB:
        candidates = ((value.left, value.right),)
        sign = -1
    else:
        return None
    for load_term, delta in candidates:
        if not isinstance(load_term, Load):
            continue
        if load_term.key != key:
            continue
        if _contains_load(key) or _contains_load(delta):
            continue
        return DeltaSite(
            pc=pc, load_pc=load_term.pc, key=key, delta=delta, sign=sign
        )
    return None


def classify_bytecode(
    code: bytes, *, nargs: int | None = None
) -> DeltaClassification:
    """Classify one function's bytecode; empty on any imprecision.

    Runs the abstract interpreter in load-tracking mode and applies the
    eligibility rules above.  Functions that fail verification, widen a
    relevant term to ⊤, or coarsen a store/load site across worklist
    revisits classify as having no delta sites — never an error.
    """
    result = interpret(decode(code), nargs=nargs, track_loads=True)
    if not result.ok:
        return EMPTY_CLASSIFICATION

    stores: dict[int, tuple[AbsVal, AbsVal]] = {}
    for pc, pairs in result.store_sites.items():
        if len(pairs) != 1:
            return EMPTY_CLASSIFICATION
        (key, value) = next(iter(pairs))
        if _contains_top(key) or _contains_top(value):
            return EMPTY_CLASSIFICATION
        stores[pc] = (key, value)
    loads: dict[int, AbsVal] = {}
    for pc, keys in result.load_sites.items():
        if len(keys) != 1:
            return EMPTY_CLASSIFICATION
        (load_key,) = keys
        if _contains_top(load_key):
            return EMPTY_CLASSIFICATION
        loads[pc] = load_key
    for condition in result.branch_conditions:
        if _contains_top(condition):
            return EMPTY_CLASSIFICATION

    sites: list[DeltaSite] = []
    for pc in sorted(stores):
        key, value = stores[pc]
        site = _match_site(pc, key, value)
        if site is None:
            continue
        if any(
            _contains_load(condition, site.key)
            for condition in result.branch_conditions
        ):
            continue
        hazard = False
        for other_pc in sorted(stores):
            if other_pc == pc:
                continue
            other_key, other_value = stores[other_pc]
            if (
                other_key == site.key
                or _contains_load(other_key, site.key)
                or _contains_load(other_value, site.key)
            ):
                hazard = True
                break
        if not hazard:
            sites.append(site)
    return DeltaClassification(
        sites=tuple(sites),
        store_keys=tuple((pc, stores[pc][0]) for pc in sorted(stores)),
        load_keys=tuple((pc, loads[pc]) for pc in sorted(loads)),
    )


def classify_contract(
    bytecodes: Mapping[str, bytes],
    arities: Mapping[str, int] | None = None,
) -> dict[str, DeltaClassification]:
    """Classify every function of a contract (name -> classification)."""
    out: dict[str, DeltaClassification] = {}
    for name in sorted(bytecodes):
        nargs = arities.get(name) if arities is not None else None
        out[name] = classify_bytecode(bytecodes[name], nargs=nargs)
    return out


def resolve_sites(
    classification: DeltaClassification,
    args: Iterable[int],
    caller: int,
    key_renderer: KeyRenderer,
) -> tuple[tuple[Address, int], ...]:
    """Concretize a call's delta sites into ``(address, delta mod 2**64)``.

    Every store and load key is evaluated under the actual inputs; a
    site is dropped when its own key or delta fails to concretize, when
    its delta is zero, or when any *other* store or load of the function
    lands on the same rendered address (or cannot be shown not to) —
    the runtime aliasing the syntactic rules cannot exclude.
    """
    if not classification.sites:
        return ()
    arg_tuple = tuple(args)
    store_addrs: dict[int, Address | None] = {}
    for pc, term in classification.store_keys:
        concrete = evaluate(term, arg_tuple, caller)
        store_addrs[pc] = None if concrete is None else key_renderer(concrete)
    load_addrs: dict[int, Address | None] = {}
    for pc, term in classification.load_keys:
        concrete = evaluate(term, arg_tuple, caller)
        load_addrs[pc] = None if concrete is None else key_renderer(concrete)

    resolved: list[tuple[Address, int]] = []
    for site in classification.sites:
        key_value = evaluate(site.key, arg_tuple, caller)
        delta_value = evaluate(site.delta, arg_tuple, caller)
        if key_value is None or delta_value is None:
            continue
        address = key_renderer(key_value)
        delta_mod = (site.sign * delta_value) % _WORD_MOD
        if delta_mod == 0:
            continue
        hazard = False
        for pc, other in store_addrs.items():
            if pc != site.pc and (other is None or other == address):
                hazard = True
                break
        if not hazard:
            for pc, other in load_addrs.items():
                if pc != site.load_pc and (other is None or other == address):
                    hazard = True
                    break
        if not hazard:
            resolved.append((address, delta_mod))
    return tuple(resolved)
