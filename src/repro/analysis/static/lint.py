"""Determinism/concurrency linter for consensus-critical Python.

Every replica must derive bit-identical state roots from the same DAG,
so the Python that builds blocks, orders transactions, and commits state
(``src/repro/core``, ``dag``, ``state``, ``node``) must be deterministic
and process-pool safe.  This AST pass flags the failure modes that have
actually bitten DAG-ledger reproductions:

* ``ND101`` — iterating an *unordered* ``set``/``frozenset`` into
  ordered output (hashes, lists, joins).  Python string hashing is
  randomized per process, so set order differs between replicas.
* ``ND102`` — wall-clock reads (``time.time``, ``datetime.now``) in a
  consensus path.  (Monotonic clocks like ``time.perf_counter`` are
  allowed: the repo uses them for phase metrics that never feed
  committed state.)
* ``ND103`` — the process-global ``random`` module (or an unseeded
  ``random.Random()``): different replicas draw different values.
* ``ND104`` — mutable default arguments: cross-call shared state that
  makes outcomes depend on call history.
* ``ND105`` — lambdas or nested functions shipped to a *process* pool:
  they cannot pickle, so the process execution backend would crash at
  dispatch time (thread pools are exempt — nothing pickles).

Suppression: append ``# nd: ignore`` to silence every rule on a line,
or ``# nd: ignore[ND102]`` (comma-separated codes) to silence specific
rules; a ``# nd: ignore-file`` comment in the first five lines skips the
whole file.  Suppressions are expected to carry a justification comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

RULES: dict[str, str] = {
    "ND101": "unordered set iteration feeds ordered output",
    "ND102": "wall-clock read in a consensus path",
    "ND103": "process-global or unseeded random number generator",
    "ND104": "mutable default argument",
    "ND105": "unpicklable callable shipped to a process pool",
}

DEFAULT_LINT_PACKAGES: tuple[str, ...] = ("core", "dag", "state", "node")
"""``repro`` sub-packages whose determinism is consensus-critical."""

_IGNORE_LINE = re.compile(r"#\s*nd:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")
_IGNORE_FILE = re.compile(r"#\s*nd:\s*ignore-file")

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.ctime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "seed",
    }
)

_POOL_CONSTRUCTORS = frozenset({"ProcessPoolExecutor", "Pool"})
_POOL_DISPATCH = frozenset(
    {"submit", "map", "apply", "apply_async", "imap", "imap_unordered", "starmap"}
)
_ORDERING_SINKS = frozenset({"tuple", "list", "iter", "enumerate", "next"})


@dataclass(frozen=True)
class LintFinding:
    """One determinism-lint diagnostic."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Attribute/Name chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, select: frozenset[str]) -> None:
        self.path = path
        self.select = select
        self.findings: list[LintFinding] = []
        self._function_depth = 0
        self._nested_function_names: set[str] = set()
        self._random_imports: set[str] = set()
        self._process_pools: set[str] = set()

    # ------------------------------------------------------------- helpers

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.select:
            return
        self.findings.append(
            LintFinding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _is_set_typed(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = _dotted_name(node.func)
            if callee in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_typed(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_typed(node.left) or self._is_set_typed(node.right)
        return False

    def _check_unordered_iteration(self, iterable: ast.AST, site: ast.AST) -> None:
        if self._is_set_typed(iterable):
            self._flag(
                "ND101",
                site,
                "iteration order of a set is not deterministic across "
                "processes; wrap the expression in sorted(...)",
            )

    # ------------------------------------------------------------- imports

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_RANDOM_FNS:
                    self._random_imports.add(alias.asname or alias.name)
        self.generic_visit(node)

    # ------------------------------------------------------- ND101 sinks

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iteration(node.iter, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_unordered_iteration(node.iter, node.iter)
        self.generic_visit(node)

    # ----------------------------------------------------------- functions

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._function_depth > 0:
            self._nested_function_names.add(node.name)
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._flag(
                    "ND104",
                    default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and allocate inside the function",
                )
            elif isinstance(default, ast.Call) and _dotted_name(default.func) in (
                "list",
                "dict",
                "set",
                "bytearray",
                "collections.defaultdict",
                "defaultdict",
            ):
                self._flag(
                    "ND104",
                    default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and allocate inside the function",
                )
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # ------------------------------------------------------- pool tracking

    def _is_process_pool_constructor(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = _dotted_name(node.func)
        if name is None:
            # e.g. multiprocessing.get_context("fork").Pool(...)
            return (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_CONSTRUCTORS
            )
        return name.rsplit(".", 1)[-1] in _POOL_CONSTRUCTORS

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_process_pool_constructor(node.value):
            for target in node.targets:
                dotted = _dotted_name(target)
                if dotted is not None:
                    self._process_pools.add(dotted)
        self.generic_visit(node)

    def _is_unpicklable_callable(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Lambda):
            return True
        if isinstance(node, ast.Name) and node.id in self._nested_function_names:
            return True
        return False

    # ---------------------------------------------------------- call sites

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted_name(node.func)

        # ND101: set-typed expression materialized into ordered output.
        if callee in _ORDERING_SINKS and node.args:
            self._check_unordered_iteration(node.args[0], node)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            self._check_unordered_iteration(node.args[0], node)

        # ND102: wall-clock reads.
        if callee is not None:
            suffix = callee.split(".", 1)[-1] if "." in callee else callee
            if callee in _WALL_CLOCK_CALLS or suffix in _WALL_CLOCK_CALLS:
                self._flag(
                    "ND102",
                    node,
                    f"{callee}() is wall-clock and differs between replicas; "
                    "consensus paths must derive time from block metadata",
                )

        # ND103: the process-global RNG, or an unseeded Random().
        if callee is not None and "." in callee:
            head, _, tail = callee.partition(".")
            if head == "random" and tail in _GLOBAL_RANDOM_FNS:
                self._flag(
                    "ND103",
                    node,
                    f"{callee}() uses the process-global RNG; use an "
                    "explicitly seeded random.Random(seed) instance",
                )
            if head == "random" and tail == "Random" and not node.args:
                self._flag(
                    "ND103",
                    node,
                    "random.Random() without a seed draws from OS entropy; "
                    "pass an explicit seed",
                )
        elif callee in self._random_imports:
            self._flag(
                "ND103",
                node,
                f"{callee}() was imported from the random module and uses "
                "the process-global RNG; use a seeded random.Random(seed)",
            )

        # ND105: unpicklable callables crossing the process boundary.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_DISPATCH
            and _dotted_name(node.func.value) in self._process_pools
        ):
            for argument in node.args:
                if self._is_unpicklable_callable(argument):
                    self._flag(
                        "ND105",
                        argument,
                        "lambda/nested function cannot pickle into a "
                        "process pool; pass a module-level function",
                    )
        if callee is not None and callee.rsplit(".", 1)[-1] == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target" and self._is_unpicklable_callable(
                    keyword.value
                ):
                    self._flag(
                        "ND105",
                        keyword.value,
                        "lambda/nested function cannot pickle as a Process "
                        "target; pass a module-level function",
                    )
        self.generic_visit(node)


def _suppressed_rules(line_text: str) -> frozenset[str] | None:
    """Rules suppressed on a line: empty set = all, None = none."""
    match = _IGNORE_LINE.search(line_text)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(code.strip() for code in codes.split(",") if code.strip())


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Lint one module's source text, honouring suppression comments."""
    selected = frozenset(RULES) if select is None else frozenset(select)
    lines = source.splitlines()
    for early in lines[:5]:
        if _IGNORE_FILE.search(early):
            return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                rule="ND100",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    linter = _Linter(path, selected)
    linter.visit(tree)
    kept: list[LintFinding] = []
    for finding in sorted(linter.findings, key=lambda f: (f.line, f.col, f.rule)):
        line_text = lines[finding.line - 1] if finding.line - 1 < len(lines) else ""
        suppressed = _suppressed_rules(line_text)
        if suppressed is not None and (not suppressed or finding.rule in suppressed):
            continue
        kept.append(finding)
    return kept


def lint_paths(
    paths: Sequence[Path | str],
    *,
    select: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Lint files and directory trees (``*.py``, deterministic order)."""
    findings: list[LintFinding] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            files = sorted(root.rglob("*.py"))
        else:
            files = [root]
        for file in files:
            findings.extend(
                lint_source(
                    file.read_text(encoding="utf-8"), str(file), select=select
                )
            )
    return findings


def default_lint_paths(repo_src: Path) -> list[Path]:
    """The consensus-critical packages under a ``src/repro`` root."""
    return [repo_src / package for package in DEFAULT_LINT_PACKAGES]
