"""Determinism/concurrency linter for consensus-critical Python.

Every replica must derive bit-identical state roots from the same DAG,
so the Python that builds blocks, orders transactions, and commits state
(``src/repro/core``, ``dag``, ``state``, ``node``) must be deterministic
and process-pool safe.  This AST pass flags the failure modes that have
actually bitten DAG-ledger reproductions:

* ``ND101`` — iterating an *unordered* ``set``/``frozenset`` into
  ordered output (hashes, lists, joins).  Python string hashing is
  randomized per process, so set order differs between replicas.
* ``ND102`` — wall-clock reads (``time.time``, ``datetime.now``) in a
  consensus path.  (Monotonic clocks like ``time.perf_counter`` are
  allowed: the repo uses them for phase metrics that never feed
  committed state.)
* ``ND103`` — the process-global ``random`` module (or an unseeded
  ``random.Random()``): different replicas draw different values.
* ``ND104`` — mutable default arguments: cross-call shared state that
  makes outcomes depend on call history.
* ``ND105`` — lambdas or nested functions shipped to a *process* pool:
  they cannot pickle, so the process execution backend would crash at
  dispatch time (thread pools are exempt — nothing pickles).

The ``ND2xx`` family covers *thread safety*.  Starting from every
thread-spawn/pool-dispatch site in a module (``Thread(target=...)``,
``pool.submit(fn, ...)``, ``pool.map(fn, ...)``), the linter walks the
intra-module call graph (``self.method()`` within a class, bare calls at
module level, one level of lambda bodies) and inside the reachable
functions flags writes to shared mutable attributes that are not proven
lock-protected (lexically inside ``with <...lock>:``):

* ``ND201`` — augmented assignment (``self.x += 1``) to an attribute:
  a read-modify-write is never GIL-atomic, so concurrent increments
  lose updates.
* ``ND202`` — plain assignment to a ``self`` attribute that other
  (non-thread-reachable) methods of the same class also touch: the
  write is published to threads that never synchronize with it.
* ``ND203`` — mutating container call (``self.buf.append(...)``,
  ``self.cache[k] = v``) on a shared ``self`` attribute (warning
  severity: single container ops *are* GIL-atomic, but check-then-act
  sequences around them are not, so each site needs a human verdict).

Suppression: append ``# nd: ignore`` to silence every rule on a line,
or ``# nd: ignore[ND102]`` (comma-separated codes) to silence specific
rules; a ``# nd: ignore-file`` comment in the first five lines skips the
whole file.  Suppressions are expected to carry a justification comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

RULES: dict[str, str] = {
    "ND101": "unordered set iteration feeds ordered output",
    "ND102": "wall-clock read in a consensus path",
    "ND103": "process-global or unseeded random number generator",
    "ND104": "mutable default argument",
    "ND105": "unpicklable callable shipped to a process pool",
    "ND201": "unsynchronized read-modify-write in thread-reachable code",
    "ND202": "shared attribute written in thread-reachable code without a lock",
    "ND203": "shared container mutated in thread-reachable code without a lock",
}

RULE_SEVERITIES: dict[str, str] = {"ND203": "warning"}
"""Rules that do not gate CI; everything absent defaults to ``error``."""

DEFAULT_LINT_PACKAGES: tuple[str, ...] = (
    "core",
    "dag",
    "state",
    "node",
    "storage",
    "obs",
)
"""``repro`` sub-packages whose determinism/thread-safety is critical.

``storage`` and ``obs`` joined the default set with the ND2xx rules:
background LSM compaction and the tracer are exactly the shared-state
surfaces the thread-safety family exists to police."""

_IGNORE_LINE = re.compile(r"#\s*nd:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")
_IGNORE_FILE = re.compile(r"#\s*nd:\s*ignore-file")

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.ctime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "seed",
    }
)

_POOL_CONSTRUCTORS = frozenset({"ProcessPoolExecutor", "Pool"})
_POOL_DISPATCH = frozenset(
    {"submit", "map", "apply", "apply_async", "imap", "imap_unordered", "starmap"}
)
_ORDERING_SINKS = frozenset({"tuple", "list", "iter", "enumerate", "next"})


@dataclass(frozen=True)
class LintFinding:
    """One determinism-lint diagnostic."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def severity(self) -> str:
        return RULE_SEVERITIES.get(self.rule, "error")

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Attribute/Name chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, select: frozenset[str]) -> None:
        self.path = path
        self.select = select
        self.findings: list[LintFinding] = []
        self._function_depth = 0
        self._nested_function_names: set[str] = set()
        self._random_imports: set[str] = set()
        self._process_pools: set[str] = set()

    # ------------------------------------------------------------- helpers

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.select:
            return
        self.findings.append(
            LintFinding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _is_set_typed(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = _dotted_name(node.func)
            if callee in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_typed(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_typed(node.left) or self._is_set_typed(node.right)
        return False

    def _check_unordered_iteration(self, iterable: ast.AST, site: ast.AST) -> None:
        if self._is_set_typed(iterable):
            self._flag(
                "ND101",
                site,
                "iteration order of a set is not deterministic across "
                "processes; wrap the expression in sorted(...)",
            )

    # ------------------------------------------------------------- imports

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_RANDOM_FNS:
                    self._random_imports.add(alias.asname or alias.name)
        self.generic_visit(node)

    # ------------------------------------------------------- ND101 sinks

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iteration(node.iter, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_unordered_iteration(node.iter, node.iter)
        self.generic_visit(node)

    # ----------------------------------------------------------- functions

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._function_depth > 0:
            self._nested_function_names.add(node.name)
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._flag(
                    "ND104",
                    default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and allocate inside the function",
                )
            elif isinstance(default, ast.Call) and _dotted_name(default.func) in (
                "list",
                "dict",
                "set",
                "bytearray",
                "collections.defaultdict",
                "defaultdict",
            ):
                self._flag(
                    "ND104",
                    default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and allocate inside the function",
                )
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # ------------------------------------------------------- pool tracking

    def _is_process_pool_constructor(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = _dotted_name(node.func)
        if name is None:
            # e.g. multiprocessing.get_context("fork").Pool(...)
            return (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_CONSTRUCTORS
            )
        return name.rsplit(".", 1)[-1] in _POOL_CONSTRUCTORS

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_process_pool_constructor(node.value):
            for target in node.targets:
                dotted = _dotted_name(target)
                if dotted is not None:
                    self._process_pools.add(dotted)
        self.generic_visit(node)

    def _is_unpicklable_callable(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Lambda):
            return True
        if isinstance(node, ast.Name) and node.id in self._nested_function_names:
            return True
        return False

    # ---------------------------------------------------------- call sites

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted_name(node.func)

        # ND101: set-typed expression materialized into ordered output.
        if callee in _ORDERING_SINKS and node.args:
            self._check_unordered_iteration(node.args[0], node)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            self._check_unordered_iteration(node.args[0], node)

        # ND102: wall-clock reads.
        if callee is not None:
            suffix = callee.split(".", 1)[-1] if "." in callee else callee
            if callee in _WALL_CLOCK_CALLS or suffix in _WALL_CLOCK_CALLS:
                self._flag(
                    "ND102",
                    node,
                    f"{callee}() is wall-clock and differs between replicas; "
                    "consensus paths must derive time from block metadata",
                )

        # ND103: the process-global RNG, or an unseeded Random().
        if callee is not None and "." in callee:
            head, _, tail = callee.partition(".")
            if head == "random" and tail in _GLOBAL_RANDOM_FNS:
                self._flag(
                    "ND103",
                    node,
                    f"{callee}() uses the process-global RNG; use an "
                    "explicitly seeded random.Random(seed) instance",
                )
            if head == "random" and tail == "Random" and not node.args:
                self._flag(
                    "ND103",
                    node,
                    "random.Random() without a seed draws from OS entropy; "
                    "pass an explicit seed",
                )
        elif callee in self._random_imports:
            self._flag(
                "ND103",
                node,
                f"{callee}() was imported from the random module and uses "
                "the process-global RNG; use a seeded random.Random(seed)",
            )

        # ND105: unpicklable callables crossing the process boundary.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_DISPATCH
            and _dotted_name(node.func.value) in self._process_pools
        ):
            for argument in node.args:
                if self._is_unpicklable_callable(argument):
                    self._flag(
                        "ND105",
                        argument,
                        "lambda/nested function cannot pickle into a "
                        "process pool; pass a module-level function",
                    )
        if callee is not None and callee.rsplit(".", 1)[-1] == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target" and self._is_unpicklable_callable(
                    keyword.value
                ):
                    self._flag(
                        "ND105",
                        keyword.value,
                        "lambda/nested function cannot pickle as a Process "
                        "target; pass a module-level function",
                    )
        self.generic_visit(node)


_THREAD_DISPATCH = frozenset({"submit", "map"})
_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

_FuncKey = tuple[str | None, str]  # (class name or None, function name)


def _self_attr(node: ast.AST) -> str | None:
    """``x`` for ``self.x``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_guard(node: ast.expr) -> bool:
    """True for ``with`` context expressions that name a lock."""
    target = node
    if isinstance(target, ast.Call):  # e.g. contextlib wrappers around a lock
        target = target.func
    dotted = _dotted_name(target)
    if dotted is None:
        return False
    return "lock" in dotted.rsplit(".", 1)[-1].lower()


class _ThreadAnalysis:
    """ND2xx: shared-attribute writes reachable from thread-spawn sites.

    Scope is one module: entry points are the callables handed to
    ``Thread(target=...)`` / ``pool.submit`` / ``pool.map`` (including
    callables named inside a dispatched lambda), closed over the
    intra-class ``self.method()`` / module-level call graph.  A write is
    "proven safe" only when lexically nested in a ``with`` block whose
    context expression names a lock; everything else in reachable code is
    flagged for a human verdict (suppress with ``# nd: ignore[ND2xx]``
    plus a justification).
    """

    def __init__(self, tree: ast.Module) -> None:
        self.module_funcs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.classes: dict[str, dict[str, ast.FunctionDef | ast.AsyncFunctionDef]] = {}
        self.attr_touchers: dict[str, dict[str, set[str]]] = {}
        self.entries: list[_FuncKey] = []
        self.entry_lambdas: list[tuple[str | None, ast.Lambda]] = []
        self._index(tree)
        self._collect_entries(tree)
        self.reachable = self._close_over_calls()

    # -- indexing ----------------------------------------------------------

    def _index(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_funcs[node.name] = node
            elif isinstance(node, ast.ClassDef):
                methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
                touchers: dict[str, set[str]] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[item.name] = item
                        for sub in ast.walk(item):
                            attr = _self_attr(sub)
                            if attr is not None:
                                touchers.setdefault(attr, set()).add(item.name)
                self.classes[node.name] = methods
                self.attr_touchers[node.name] = touchers

    def _resolve_callable(
        self, node: ast.expr, owner: str | None
    ) -> list[_FuncKey]:
        attr = _self_attr(node)
        if attr is not None and owner is not None and attr in self.classes.get(owner, {}):
            return [(owner, attr)]
        if isinstance(node, ast.Name) and node.id in self.module_funcs:
            return [(None, node.id)]
        if isinstance(node, ast.Lambda):
            resolved: list[_FuncKey] = []
            for sub in ast.walk(node.body):
                if isinstance(sub, ast.Call):
                    resolved.extend(self._resolve_callable(sub.func, owner))
            return resolved
        return []

    def _collect_entries(self, tree: ast.Module) -> None:
        def scan(body: Iterable[ast.AST], owner: str | None) -> None:
            for node in body:
                if isinstance(node, ast.ClassDef):
                    scan(node.body, node.name)
                    continue
                for sub in ast.walk(node):  # type: ignore[arg-type]
                    if not isinstance(sub, ast.Call):
                        continue
                    dispatched: ast.expr | None = None
                    if (
                        isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _THREAD_DISPATCH
                        and sub.args
                    ):
                        dispatched = sub.args[0]
                    else:
                        callee = _dotted_name(sub.func)
                        if callee is not None and callee.rsplit(".", 1)[-1] == "Thread":
                            for keyword in sub.keywords:
                                if keyword.arg == "target":
                                    dispatched = keyword.value
                    if dispatched is None:
                        continue
                    self.entries.extend(self._resolve_callable(dispatched, owner))
                    if isinstance(dispatched, ast.Lambda):
                        self.entry_lambdas.append((owner, dispatched))

        scan(tree.body, None)

    def _function(self, key: _FuncKey) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        owner, name = key
        if owner is None:
            return self.module_funcs.get(name)
        return self.classes.get(owner, {}).get(name)

    def _close_over_calls(self) -> set[_FuncKey]:
        seen: set[_FuncKey] = set()
        work = list(self.entries)
        while work:
            key = work.pop()
            if key in seen:
                continue
            node = self._function(key)
            if node is None:
                continue
            seen.add(key)
            owner = key[0]
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    work.extend(self._resolve_callable(sub.func, owner))
        return seen

    # -- flagging ----------------------------------------------------------

    def findings(self, path: str, select: frozenset[str]) -> list[LintFinding]:
        out: list[LintFinding] = []

        def flag(rule: str, node: ast.AST, message: str) -> None:
            if rule in select:
                out.append(
                    LintFinding(
                        rule=rule,
                        path=path,
                        line=getattr(node, "lineno", 1),
                        col=getattr(node, "col_offset", 0),
                        message=message,
                    )
                )

        for key in sorted(self.reachable, key=lambda k: (k[0] or "", k[1])):
            node = self._function(key)
            if node is not None:
                self._scan_function(key, node, flag)
        for owner, lam in self.entry_lambdas:
            self._scan_mutating_calls(
                (owner, "<lambda>"), owner, ast.walk(lam.body), False, flag
            )
        return out

    def _shared(self, owner: str | None, attr: str, func: str) -> bool:
        """True when other non-thread-reachable methods touch the attribute."""
        if owner is None:
            return False
        touchers = self.attr_touchers.get(owner, {}).get(attr, set())
        reachable_names = {name for cls, name in self.reachable if cls == owner}
        return bool(touchers - reachable_names - {"__init__"})

    def _scan_function(
        self,
        key: _FuncKey,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        flag: "Callable[[str, ast.AST, str], None]",
    ) -> None:
        owner, name = key
        label = f"{owner}.{name}" if owner else name

        def scan(stmts: Iterable[ast.stmt], locked: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    inner = locked or any(
                        _is_lock_guard(item.context_expr) for item in stmt.items
                    )
                    scan(stmt.body, inner)
                    continue
                if not locked:
                    self._flag_stmt(stmt, owner, name, label, flag)
                for field_name in ("body", "orelse", "finalbody"):
                    nested = getattr(stmt, field_name, None)
                    if isinstance(nested, list):
                        scan([s for s in nested if isinstance(s, ast.stmt)], locked)
                for handler in getattr(stmt, "handlers", []):
                    scan(handler.body, locked)

        scan(func.body, False)

    def _flag_stmt(
        self,
        stmt: ast.stmt,
        owner: str | None,
        func_name: str,
        label: str,
        flag: "Callable[[str, ast.AST, str], None]",
    ) -> None:
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Attribute):
            target = _dotted_name(stmt.target) or stmt.target.attr
            flag(
                "ND201",
                stmt,
                f"read-modify-write of {target} in thread-reachable "
                f"{label}(); += is not atomic, hold a lock or use a "
                "dedicated synchronized counter",
            )
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is not None and self._shared(owner, attr, func_name):
                    flag(
                        "ND202",
                        stmt,
                        f"self.{attr} is written in thread-reachable {label}() "
                        "and touched by other methods; publish under a lock",
                    )
                elif isinstance(target, ast.Subscript):
                    base = _self_attr(target.value)
                    if base is not None and self._shared(owner, base, func_name):
                        flag(
                            "ND203",
                            stmt,
                            f"self.{base}[...] is mutated in thread-reachable "
                            f"{label}(); verify the surrounding check-then-act "
                            "is safe or hold a lock",
                        )
        # Mutating container calls: scan simple statements whole, compound
        # statements only through their header expressions (their nested
        # bodies are scanned by the caller with their own lock state).
        scopes: list[ast.AST] = []
        if isinstance(stmt, (ast.If, ast.While)):
            scopes.append(stmt.test)
        elif isinstance(stmt, ast.For):
            scopes.append(stmt.iter)
        elif not hasattr(stmt, "body"):
            scopes.append(stmt)
        for scope in scopes:
            self._scan_mutating_calls(
                (owner, func_name), owner, ast.walk(scope), True, flag, label
            )

    def _scan_mutating_calls(
        self,
        key: _FuncKey,
        owner: str | None,
        nodes: Iterable[ast.AST],
        stmt_scope: bool,
        flag: "Callable[[str, ast.AST, str], None]",
        label: str | None = None,
    ) -> None:
        label = label or (f"{owner}.{key[1]}" if owner else key[1])
        for sub in nodes:
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATING_METHODS
            ):
                base = _self_attr(sub.func.value)
                if base is not None and self._shared(owner, base, key[1]):
                    flag(
                        "ND203",
                        sub,
                        f"self.{base}.{sub.func.attr}(...) in thread-reachable "
                        f"{label}(); verify the surrounding check-then-act is "
                        "safe or hold a lock",
                    )


def _suppressed_rules(line_text: str) -> frozenset[str] | None:
    """Rules suppressed on a line: empty set = all, None = none."""
    match = _IGNORE_LINE.search(line_text)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(code.strip() for code in codes.split(",") if code.strip())


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Lint one module's source text, honouring suppression comments."""
    selected = frozenset(RULES) if select is None else frozenset(select)
    lines = source.splitlines()
    for early in lines[:5]:
        if _IGNORE_FILE.search(early):
            return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                rule="ND100",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    linter = _Linter(path, selected)
    linter.visit(tree)
    linter.findings.extend(_ThreadAnalysis(tree).findings(path, selected))
    kept: list[LintFinding] = []
    for finding in sorted(linter.findings, key=lambda f: (f.line, f.col, f.rule)):
        line_text = lines[finding.line - 1] if finding.line - 1 < len(lines) else ""
        suppressed = _suppressed_rules(line_text)
        if suppressed is not None and (not suppressed or finding.rule in suppressed):
            continue
        kept.append(finding)
    return kept


def lint_paths(
    paths: Sequence[Path | str],
    *,
    select: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Lint files and directory trees (``*.py``, deterministic order)."""
    findings: list[LintFinding] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            files = sorted(root.rglob("*.py"))
        else:
            files = [root]
        for file in files:
            findings.extend(
                lint_source(
                    file.read_text(encoding="utf-8"), str(file), select=select
                )
            )
    return findings


def default_lint_paths(repo_src: Path) -> list[Path]:
    """The consensus-critical packages under a ``src/repro`` root."""
    return [repo_src / package for package in DEFAULT_LINT_PACKAGES]
