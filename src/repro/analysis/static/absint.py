"""Worklist abstract interpreter over SVM bytecode.

Explores every path reachable from pc 0 with an abstract stack of
:mod:`~repro.analysis.static.absdomain` terms, proving:

* **stack safety** — no underflow, no ``DUP``/``SWAP`` beyond the stack,
  no overflow past the interpreter's ``MAX_STACK_DEPTH``, and a single
  consistent stack depth at every join point (the classic JVM/Wasm
  verification discipline);
* **jump safety** — every ``JUMP``/``JUMPI`` target is a statically
  constant pc that lands on an instruction boundary inside the code
  (mid-immediate and out-of-range targets are rejected with the same
  wording the interpreter uses at runtime);
* **static RW keys** — every ``SLOAD``/``SSTORE`` key operand is
  captured as a symbolic term, giving a per-method over-approximate
  read/write key set.

Branch conditions that fold to constants prune the untaken edge, so the
analysis never reports defects on provably infeasible paths; symbolic
conditions explore both edges, which is what makes the result an
over-approximation of any concrete run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.vm.decoder import BytecodeLayout, truncation_message
from repro.vm.machine import MAX_STACK_DEPTH
from repro.vm.opcodes import Op

from repro.analysis.static.absdomain import (
    TOP,
    AbsVal,
    Arg,
    Caller,
    Const,
    Load,
    Top,
    apply_binary,
    apply_iszero,
    apply_not,
    join,
)

# Finding catalog (documented in docs/static-analysis.md).
UNKNOWN_OPCODE = "SV101"
JUMP_OUT_OF_RANGE = "SV102"
JUMP_MID_IMMEDIATE = "SV103"
JUMP_NOT_CONSTANT = "SV104"
TRUNCATED_IMMEDIATE = "SV105"
STACK_UNDERFLOW = "SV106"
STACK_OVERFLOW = "SV107"
INCONSISTENT_DEPTH = "SV108"
ARG_OUT_OF_RANGE = "SV109"
UNREACHABLE_CODE = "SV110"
IMPRECISE_KEY = "SV111"

_BINARY_OPS = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.LT, Op.GT, Op.EQ, Op.AND, Op.OR}
)


@dataclass(frozen=True)
class Finding:
    """One verifier diagnostic."""

    code: str
    severity: str
    """``"error"`` (verdict-affecting) or ``"warning"`` (informational)."""
    message: str
    pc: int | None = None
    line: int | None = None
    """Assembly source line, when debug info was supplied."""

    def to_json(self) -> dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "pc": self.pc,
            "line": self.line,
        }


@dataclass
class AbstractResult:
    """Everything one abstract-interpretation pass learned."""

    entry_stacks: dict[int, tuple[AbsVal, ...]] = field(default_factory=dict)
    visited: set[int] = field(default_factory=set)
    edges: dict[int, tuple[int, ...]] = field(default_factory=dict)
    """pc -> ordered successor pcs (jump targets before fallthrough)."""
    reads: list[AbsVal] = field(default_factory=list)
    writes: list[AbsVal] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    max_stack_depth: int = 0
    terminators: set[int] = field(default_factory=set)
    """pcs of RETURN/REVERT/STOP instructions (and implicit end-of-code)."""
    store_sites: dict[int, set[tuple[AbsVal, AbsVal]]] = field(default_factory=dict)
    """SSTORE pc -> every (key, value) term pair seen there (load tracking)."""
    load_sites: dict[int, set[AbsVal]] = field(default_factory=dict)
    """SLOAD pc -> every key term seen there (load tracking)."""
    branch_conditions: set[AbsVal] = field(default_factory=set)
    """Every non-constant JUMPI condition term (load tracking)."""

    @property
    def ok(self) -> bool:
        """Whether no error-severity finding was recorded."""
        return all(finding.severity != "error" for finding in self.findings)


class _Interpreter:
    def __init__(
        self,
        layout: BytecodeLayout,
        nargs: int | None,
        debug: dict[int, int] | None,
        track_loads: bool = False,
    ) -> None:
        self.layout = layout
        self.size = len(layout.code)
        self.nargs = nargs
        self.track_loads = track_loads
        self.debug = debug or {}
        self.result = AbstractResult()
        self._seen_findings: set[tuple[str, int | None, str]] = set()
        self._read_keys: set[AbsVal] = set()
        self._write_keys: set[AbsVal] = set()
        self._worklist: deque[int] = deque()

    # ------------------------------------------------------------ plumbing

    def _report(
        self, code: str, severity: str, message: str, pc: int | None
    ) -> None:
        key = (code, pc, message)
        if key in self._seen_findings:
            return
        self._seen_findings.add(key)
        line = self.debug.get(pc) if pc is not None else None
        self.result.findings.append(Finding(code, severity, message, pc, line))

    def _propagate(self, pc: int, stack: tuple[AbsVal, ...], origin: int) -> None:
        if pc >= self.size:
            # Falling off the end of the code is an implicit STOP.
            self.result.terminators.add(origin)
            return
        known = self.result.entry_stacks.get(pc)
        if known is None:
            self.result.entry_stacks[pc] = stack
            self._worklist.append(pc)
            return
        if len(known) != len(stack):
            self._report(
                INCONSISTENT_DEPTH,
                "error",
                f"inconsistent stack depth at join pc {pc}: "
                f"{len(known)} vs {len(stack)}",
                pc,
            )
            return
        merged = tuple(join(a, b) for a, b in zip(known, stack))
        if merged != known:
            self.result.entry_stacks[pc] = merged
            self._worklist.append(pc)

    def _record_key(self, kind: str, key: AbsVal, pc: int) -> None:
        target = self._read_keys if kind == "read" else self._write_keys
        if key in target:
            return
        target.add(key)
        if isinstance(key, Top):
            self._report(
                IMPRECISE_KEY,
                "warning",
                f"storage {kind} key at pc {pc} is not statically known; "
                f"the static {kind} set widens to the full key space",
                pc,
            )

    # ------------------------------------------------------------ main loop

    def run(self) -> AbstractResult:
        if self.size:
            self.result.entry_stacks[0] = ()
            self._worklist.append(0)
        while self._worklist:
            pc = self._worklist.popleft()
            self._step(pc)
        self.result.reads = sorted(self._read_keys, key=repr)
        self.result.writes = sorted(self._write_keys, key=repr)
        return self.result

    def _step(self, pc: int) -> None:
        self.result.visited.add(pc)
        instruction = self.layout.instruction_at(pc)
        assert instruction is not None, f"worklist pc {pc} off boundary"
        info = instruction.info
        if info is None:
            self._report(
                UNKNOWN_OPCODE,
                "error",
                f"unknown opcode 0x{instruction.opcode:02x} at pc {pc}",
                pc,
            )
            return
        if instruction.truncated:
            self._report(
                TRUNCATED_IMMEDIATE,
                "error",
                truncation_message(instruction, self.size),
                pc,
            )
            return
        stack = list(self.result.entry_stacks[pc])
        depth = len(stack)
        op = info.op
        immediate = instruction.immediate

        if not self._check_stack(op, immediate, depth, pc, info.stack_in):
            return

        next_pc = pc + instruction.size
        successors: list[int] = []

        if op in (Op.STOP, Op.REVERT):
            self.result.terminators.add(pc)
        elif op is Op.RETURN:
            stack.pop()
            self.result.terminators.add(pc)
        elif op is Op.PUSH:
            assert immediate is not None
            stack.append(Const(immediate))
        elif op is Op.POP:
            stack.pop()
        elif op is Op.DUP:
            assert immediate is not None
            stack.append(stack[-immediate])
        elif op is Op.SWAP:
            assert immediate is not None
            stack[-1], stack[-immediate - 1] = stack[-immediate - 1], stack[-1]
        elif op is Op.ARG:
            assert immediate is not None
            stack.append(Arg(immediate))
        elif op is Op.CALLER:
            stack.append(Caller())
        elif op in _BINARY_OPS:
            b, a = stack.pop(), stack.pop()
            stack.append(apply_binary(op, a, b))
        elif op is Op.ISZERO:
            if self.track_loads:
                # EQ-with-zero has identical concrete semantics but keeps
                # symbolic (Load-carrying) operands alive instead of
                # widening them to ⊤ — the classifier must see every
                # branch that inspects a stored value.
                stack.append(apply_binary(Op.EQ, stack.pop(), Const(0)))
            else:
                stack.append(apply_iszero(stack.pop()))
        elif op is Op.NOT:
            stack.append(apply_not(stack.pop()))
        elif op is Op.JUMP:
            target = stack.pop()
            resolved = self._resolve_jump(target, pc)
            if resolved is not None:
                successors.append(resolved)
        elif op is Op.JUMPI:
            condition, target = stack.pop(), stack.pop()
            take_jump = True
            take_fallthrough = True
            if isinstance(condition, Const):
                take_jump = condition.value != 0
                take_fallthrough = not take_jump
            elif self.track_loads:
                self.result.branch_conditions.add(condition)
            if take_jump:
                resolved = self._resolve_jump(target, pc)
                if resolved is not None:
                    successors.append(resolved)
            if take_fallthrough:
                successors.append(next_pc)
        elif op is Op.SLOAD:
            key = stack.pop()
            self._record_key("read", key, pc)
            if self.track_loads:
                self.result.load_sites.setdefault(pc, set()).add(key)
                stack.append(Load(key, pc))
            else:
                stack.append(TOP)
        elif op is Op.SSTORE:
            value, key = stack.pop(), stack.pop()
            self._record_key("write", key, pc)
            if self.track_loads:
                self.result.store_sites.setdefault(pc, set()).add((key, value))
        elif op is Op.LOG:
            stack.pop()
            stack.pop()
        else:  # pragma: no cover - opcode table and dispatch are in sync
            raise AssertionError(f"unhandled opcode {op.name}")

        if len(stack) > MAX_STACK_DEPTH:
            self._report(
                STACK_OVERFLOW, "error", f"stack overflow at pc {pc}", pc
            )
            return
        self.result.max_stack_depth = max(self.result.max_stack_depth, len(stack))

        if op not in (Op.STOP, Op.RETURN, Op.REVERT, Op.JUMP, Op.JUMPI):
            successors.append(next_pc)
        if successors:
            self.result.edges[pc] = tuple(successors)
        out = tuple(stack)
        for successor in successors:
            self._propagate(successor, out, pc)

    def _check_stack(
        self, op: Op, immediate: int | None, depth: int, pc: int, stack_in: int
    ) -> bool:
        if op is Op.DUP:
            assert immediate is not None
            if immediate < 1 or immediate > depth:
                self._report(
                    STACK_UNDERFLOW,
                    "error",
                    f"DUP {immediate} beyond stack at pc {pc}",
                    pc,
                )
                return False
            return True
        if op is Op.SWAP:
            assert immediate is not None
            if immediate < 1 or immediate + 1 > depth:
                self._report(
                    STACK_UNDERFLOW,
                    "error",
                    f"SWAP {immediate} beyond stack at pc {pc}",
                    pc,
                )
                return False
            return True
        if op is Op.ARG and self.nargs is not None:
            assert immediate is not None
            if immediate >= self.nargs:
                self._report(
                    ARG_OUT_OF_RANGE,
                    "error",
                    f"ARG {immediate} out of range at pc {pc}",
                    pc,
                )
                return False
        if depth < stack_in:
            self._report(
                STACK_UNDERFLOW,
                "error",
                f"stack underflow at pc {pc} ({op.name})",
                pc,
            )
            return False
        return True

    def _resolve_jump(self, target: AbsVal, pc: int) -> int | None:
        if not isinstance(target, Const):
            self._report(
                JUMP_NOT_CONSTANT,
                "error",
                f"jump target at pc {pc} is not statically constant",
                pc,
            )
            return None
        value = target.value
        if value >= self.size:
            self._report(
                JUMP_OUT_OF_RANGE,
                "error",
                f"jump to {value} beyond code size {self.size} (pc {pc})",
                pc,
            )
            return None
        if value not in self.layout.boundaries:
            self._report(
                JUMP_MID_IMMEDIATE,
                "error",
                f"jump to {value} lands inside an instruction immediate (pc {pc})",
                pc,
            )
            return None
        return value


def interpret(
    layout: BytecodeLayout,
    *,
    nargs: int | None = None,
    debug: dict[int, int] | None = None,
    track_loads: bool = False,
) -> AbstractResult:
    """Run the abstract interpreter over a decoded bytecode layout.

    ``nargs`` (when known) bounds ``ARG`` indices statically, matching
    the interpreter's dynamic range check; ``debug`` is an optional
    pc -> source-line map from :func:`repro.vm.assembler.assemble_with_debug`.
    ``track_loads`` switches ``SLOAD`` results from ⊤ to symbolic
    :class:`~repro.analysis.static.absdomain.Load` terms and records
    store sites, load sites, and branch conditions for the commutative
    delta classifier; the default mode is byte-identical to before the
    flag existed.
    """
    return _Interpreter(layout, nargs, debug, track_loads=track_loads).run()
