"""Control-flow graph over verified bytecode.

Built *after* abstract interpretation, because SVM jump targets live on
the stack: only the abstract pass can resolve them to constants.  The
CFG covers the reachable instructions, split into basic blocks at every
jump, terminator, and join point, and supports two analyses:

* :func:`gas_bound` — the worst-case gas cost over any acyclic path
  from the entry block (``None`` when the graph contains a cycle that
  the analysis cannot reduce to a constant trip count, i.e. the cost is
  reported as *unbounded*);
* :func:`unreachable_ranges` — byte ranges the abstract pass never
  visited (dead blocks, trailing junk).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.decoder import BytecodeLayout, Instruction

from repro.analysis.static.absint import AbstractResult


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line run of reachable instructions."""

    start: int
    instructions: tuple[Instruction, ...]
    successors: tuple[int, ...]
    gas: int
    """Sum of the static gas charge of every instruction in the block."""
    terminal: bool
    """Whether execution can end in this block (RETURN/REVERT/STOP/end)."""

    @property
    def end(self) -> int:
        """First pc past the block."""
        last = self.instructions[-1]
        return last.pc + last.size


@dataclass(frozen=True)
class CFG:
    """Blocks keyed by start pc; entry is pc 0 when any code is reachable."""

    blocks: dict[int, BasicBlock]
    entry: int = 0

    @property
    def block_count(self) -> int:
        return len(self.blocks)


def build_cfg(layout: BytecodeLayout, result: AbstractResult) -> CFG:
    """Assemble basic blocks from the abstract pass's resolved edges."""
    visited = result.visited
    if not visited:
        return CFG(blocks={})
    # Leaders: the entry, every resolved jump target, and every
    # instruction that follows a multi-successor or non-fallthrough
    # instruction (i.e. any pc with more than one predecessor edge shape).
    leaders: set[int] = {0} if 0 in visited else set()
    fallthrough_of: dict[int, int] = {}
    for pc in visited:
        instruction = layout.instruction_at(pc)
        if instruction is not None:
            fallthrough_of[pc] = pc + instruction.size
    for pc, successors in result.edges.items():
        plain_fallthrough = successors == (fallthrough_of.get(pc),)
        for successor in successors:
            if successor in visited and not plain_fallthrough:
                leaders.add(successor)
        if pc in result.terminators or not plain_fallthrough:
            follower = fallthrough_of.get(pc)
            if follower in visited:
                leaders.add(follower)
    for pc in result.terminators:
        follower = fallthrough_of.get(pc)
        if follower is not None and follower in visited:
            leaders.add(follower)
    # Any visited pc with two or more distinct predecessors is a join.
    predecessor_count: dict[int, int] = {}
    for successors in result.edges.values():
        for successor in successors:
            predecessor_count[successor] = predecessor_count.get(successor, 0) + 1
    for pc, count in predecessor_count.items():
        if count > 1 and pc in visited:
            leaders.add(pc)

    blocks: dict[int, BasicBlock] = {}
    for leader in sorted(leaders):
        instructions: list[Instruction] = []
        pc = leader
        terminal = False
        successors: tuple[int, ...] = ()
        while pc in visited:
            instruction = layout.instruction_at(pc)
            if instruction is None:  # pragma: no cover - visited implies decoded
                break
            instructions.append(instruction)
            if pc in result.terminators:
                terminal = True
            edge = result.edges.get(pc, ())
            following = pc + instruction.size
            ends_block = (
                edge != (following,)
                or following in leaders
                or following not in visited
            )
            if ends_block:
                successors = tuple(s for s in edge if s in visited)
                break
            pc = following
        if instructions:
            gas = sum(i.info.gas for i in instructions if i.info is not None)
            blocks[leader] = BasicBlock(
                start=leader,
                instructions=tuple(instructions),
                successors=successors,
                gas=gas,
                terminal=terminal,
            )
    return CFG(blocks=blocks)


def gas_bound(cfg: CFG) -> int | None:
    """Worst-case gas over any acyclic path; ``None`` when cyclic.

    A cycle means some path re-enters a block, and without a constant
    trip count no finite bound exists — callers report it as
    ``unbounded`` (the interpreter still stops such programs via its gas
    and step limits).
    """
    if not cfg.blocks:
        return 0
    # Kahn's topological sort doubles as the cycle check.
    indegree: dict[int, int] = {start: 0 for start in cfg.blocks}
    for block in cfg.blocks.values():
        for successor in block.successors:
            indegree[successor] += 1
    queue = sorted(start for start, degree in indegree.items() if degree == 0)
    order: list[int] = []
    while queue:
        start = queue.pop()
        order.append(start)
        for successor in cfg.blocks[start].successors:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                queue.append(successor)
    if len(order) != len(cfg.blocks):
        return None
    # Longest-path DP in topological order: worst[b] is the maximum gas
    # spent along any path from the entry through the end of block b.
    worst: dict[int, int] = {}
    for start in order:
        block = cfg.blocks[start]
        cost = worst.setdefault(start, block.gas)
        for successor in block.successors:
            candidate = cost + cfg.blocks[successor].gas
            if candidate > worst.get(successor, -1):
                worst[successor] = candidate
    return max(worst.values(), default=0)


def unreachable_ranges(
    layout: BytecodeLayout, visited: set[int]
) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` byte ranges never visited."""
    ranges: list[tuple[int, int]] = []
    for instruction in layout.instructions:
        if instruction.pc in visited:
            continue
        end = instruction.pc + instruction.size
        if ranges and ranges[-1][1] == instruction.pc:
            ranges[-1] = (ranges[-1][0], end)
        else:
            ranges.append((instruction.pc, end))
    return ranges
