"""SVM bytecode verifier: the user-facing facade.

Ties the decoder, abstract interpreter, and CFG analyses together into a
:class:`MethodReport` per bytecode unit, and implements the containment
check that anchors Nezha's correctness story: the verifier's *static*
read/write key sets must be a superset of whatever ``LoggedStorage``
observes when the same method actually executes (static ⊇ dynamic).  An
under-declared write would be a serializability hole the ACG sorter can
never repair, so the check runs over every shipped contract in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.txn.rwset import RWSet
from repro.vm.decoder import decode
from repro.vm.machine import KeyRenderer, default_key_renderer

from repro.analysis.static.absdomain import AbsVal, evaluate, is_exact
from repro.analysis.static.absint import (
    UNREACHABLE_CODE,
    Finding,
    interpret,
)
from repro.analysis.static.cfg import CFG, build_cfg, gas_bound, unreachable_ranges


@dataclass(frozen=True)
class MethodReport:
    """Verification result for one bytecode unit (one contract method)."""

    contract: str | None
    method: str | None
    code_size: int
    instruction_count: int
    block_count: int
    ok: bool
    """True when no error-severity finding was raised."""
    findings: tuple[Finding, ...]
    gas_bound: int | None
    """Worst-case acyclic-path gas; ``None`` means unbounded (cycles)."""
    max_stack_depth: int
    static_reads: tuple[AbsVal, ...]
    static_writes: tuple[AbsVal, ...]

    @property
    def gas_unbounded(self) -> bool:
        return self.gas_bound is None

    @property
    def reads_exact(self) -> bool:
        """Whether every read key concretizes to one key per input."""
        return all(is_exact(key) for key in self.static_reads)

    @property
    def writes_exact(self) -> bool:
        """Whether every write key concretizes to one key per input."""
        return all(is_exact(key) for key in self.static_writes)

    def concrete_keys(
        self, args: tuple[int, ...], caller: int = 0
    ) -> tuple[set[int] | None, set[int] | None]:
        """Static key sets under concrete inputs.

        ``None`` means the corresponding set widened to the full key
        space (some key was not statically evaluable), which is still a
        sound — if useless — over-approximation.
        """
        reads = _concretize(self.static_reads, args, caller)
        writes = _concretize(self.static_writes, args, caller)
        return reads, writes

    def static_addresses(
        self,
        args: tuple[int, ...],
        caller: int = 0,
        key_renderer: KeyRenderer = default_key_renderer,
    ) -> tuple[set[str] | None, set[str] | None]:
        """Static key sets rendered through the contract's key renderer."""
        reads, writes = self.concrete_keys(args, caller)
        rendered_reads = None if reads is None else {key_renderer(k) for k in reads}
        rendered_writes = None if writes is None else {key_renderer(k) for k in writes}
        return rendered_reads, rendered_writes

    def to_json(self) -> dict[str, object]:
        """Machine-readable summary (the ``analyze bytecode`` report)."""
        return {
            "contract": self.contract,
            "method": self.method,
            "ok": self.ok,
            "code_size": self.code_size,
            "instruction_count": self.instruction_count,
            "block_count": self.block_count,
            "gas_bound": self.gas_bound,
            "gas_unbounded": self.gas_unbounded,
            "max_stack_depth": self.max_stack_depth,
            "static_reads": [repr(key) for key in self.static_reads],
            "static_writes": [repr(key) for key in self.static_writes],
            "reads_exact": self.reads_exact,
            "writes_exact": self.writes_exact,
            "findings": [finding.to_json() for finding in self.findings],
        }


def _concretize(
    keys: tuple[AbsVal, ...], args: tuple[int, ...], caller: int
) -> set[int] | None:
    concrete: set[int] = set()
    for key in keys:
        value = evaluate(key, args, caller)
        if value is None:
            return None
        concrete.add(value)
    return concrete


def verify_bytecode(
    code: bytes,
    *,
    contract: str | None = None,
    method: str | None = None,
    nargs: int | None = None,
    debug: dict[int, int] | None = None,
) -> MethodReport:
    """Statically verify one bytecode unit."""
    layout = decode(code)
    result = interpret(layout, nargs=nargs, debug=debug)
    cfg: CFG = build_cfg(layout, result)
    findings = list(result.findings)
    for start, end in unreachable_ranges(layout, result.visited):
        findings.append(
            Finding(
                UNREACHABLE_CODE,
                "warning",
                f"unreachable code at pc {start}..{end}",
                start,
                (debug or {}).get(start),
            )
        )
    findings.sort(key=lambda f: (f.pc if f.pc is not None else -1, f.code))
    ok = all(finding.severity != "error" for finding in findings)
    bound = gas_bound(cfg) if ok else None
    return MethodReport(
        contract=contract,
        method=method,
        code_size=len(code),
        instruction_count=len(layout.instructions),
        block_count=cfg.block_count,
        ok=ok,
        findings=tuple(findings),
        gas_bound=bound,
        max_stack_depth=result.max_stack_depth,
        static_reads=tuple(result.reads),
        static_writes=tuple(result.writes),
    )


def verify_contract(
    name: str,
    functions: Mapping[str, bytes],
    *,
    arities: Mapping[str, int] | None = None,
    debug: Mapping[str, dict[int, int]] | None = None,
) -> dict[str, MethodReport]:
    """Verify every method of a deployed contract."""
    reports: dict[str, MethodReport] = {}
    for method in sorted(functions):
        reports[method] = verify_bytecode(
            functions[method],
            contract=name,
            method=method,
            nargs=None if arities is None else arities.get(method),
            debug=None if debug is None else debug.get(method),
        )
    return reports


@dataclass(frozen=True)
class ContainmentResult:
    """Outcome of one static ⊇ dynamic RW-set comparison."""

    ok: bool
    missing_reads: frozenset[str] = field(default_factory=frozenset)
    """Addresses the execution read that the static set does not cover."""
    missing_writes: frozenset[str] = field(default_factory=frozenset)
    """Addresses the execution wrote that the static set does not cover."""


def check_containment(
    report: MethodReport,
    observed: RWSet,
    args: tuple[int, ...],
    caller: int = 0,
    key_renderer: KeyRenderer = default_key_renderer,
) -> ContainmentResult:
    """Check static ⊇ dynamic for one concrete execution.

    ``observed`` is the RW-set ``LoggedStorage`` recorded while running
    the same method with the same ``args``/``caller``.  A widened static
    set (``None``) trivially contains everything and passes.
    """
    static_reads, static_writes = report.static_addresses(args, caller, key_renderer)
    missing_reads: frozenset[str] = frozenset()
    missing_writes: frozenset[str] = frozenset()
    if static_reads is not None:
        missing_reads = frozenset(set(observed.reads) - static_reads)
    if static_writes is not None:
        missing_writes = frozenset(set(observed.writes) - static_writes)
    return ContainmentResult(
        ok=not missing_reads and not missing_writes,
        missing_reads=missing_reads,
        missing_writes=missing_writes,
    )
