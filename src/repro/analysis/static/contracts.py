"""Shipped-contract bridge for the static analyzer.

Knows every contract the repo deploys (SmallBank and the token), their
assembly sources, per-method arities, and key renderers, and implements
the seeded *containment sweep*: execute each method's bytecode under
random-but-valid arguments and assert that the verifier's static RW key
set covers everything ``LoggedStorage`` observed (static ⊇ dynamic).
Both the CI gate (``repro-nezha analyze bytecode --check-containment``)
and the differential test suite drive this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from repro.vm.assembler import assemble_with_debug
from repro.vm.contracts.smallbank import (
    SMALLBANK_ARITIES,
    SMALLBANK_ASSEMBLY,
    smallbank_key_renderer,
)
from repro.vm.contracts.smallbank import CONTRACT_NAME as SMALLBANK_NAME
from repro.vm.contracts.token import (
    TOKEN_ARITIES,
    TOKEN_ASSEMBLY,
    token_key_renderer,
)
from repro.vm.contracts.token import CONTRACT_NAME as TOKEN_NAME
from repro.vm.logger import LoggedStorage
from repro.vm.machine import SVM, ExecutionContext, KeyRenderer

from repro.analysis.static.verifier import (
    ContainmentResult,
    MethodReport,
    check_containment,
    verify_contract,
)

_SWEEP_IDS = 64
"""Account/holder ids are drawn from ``[0, _SWEEP_IDS)`` — small enough
to collide (exercising self-transfers) and within every contract's id
encoding (20-bit token holders, 32-bit SmallBank customers)."""

_SWEEP_AMOUNT = 30_000
"""Amounts are drawn from ``[0, _SWEEP_AMOUNT)``; the default balance in
the sweep state is 10k, so roughly a third of mutating calls revert,
covering the revert paths' RW-sets too."""

_DEFAULT_BALANCE = 10_000
_SWEEP_GAS_LIMIT = 1_000_000


@dataclass(frozen=True)
class ShippedContract:
    """One contract the repo deploys, with everything the analyzer needs."""

    name: str
    assembly: Mapping[str, str]
    arities: Mapping[str, int]
    key_renderer: KeyRenderer


def shipped_contracts() -> tuple[ShippedContract, ...]:
    """Every contract deployed by the repo, in deterministic order."""
    return (
        ShippedContract(
            name=SMALLBANK_NAME,
            assembly=SMALLBANK_ASSEMBLY,
            arities=SMALLBANK_ARITIES,
            key_renderer=smallbank_key_renderer,
        ),
        ShippedContract(
            name=TOKEN_NAME,
            assembly=TOKEN_ASSEMBLY,
            arities=TOKEN_ARITIES,
            key_renderer=token_key_renderer,
        ),
    )


def verify_shipped_contract(contract: ShippedContract) -> dict[str, MethodReport]:
    """Verify every method, with assembler debug info threaded through."""
    units = {
        method: assemble_with_debug(source)
        for method, source in contract.assembly.items()
    }
    return verify_contract(
        contract.name,
        {method: unit.code for method, unit in units.items()},
        arities=contract.arities,
        debug={method: unit.lines for method, unit in units.items()},
    )


@dataclass(frozen=True)
class ContainmentFailure:
    """One execution whose observed RW-set escaped the static set."""

    contract: str
    method: str
    args: tuple[int, ...]
    caller: int
    result: ContainmentResult

    def to_json(self) -> dict[str, object]:
        return {
            "contract": self.contract,
            "method": self.method,
            "args": list(self.args),
            "caller": self.caller,
            "missing_reads": sorted(self.result.missing_reads),
            "missing_writes": sorted(self.result.missing_writes),
        }


@dataclass
class SweepResult:
    """Outcome of a containment sweep over one contract."""

    contract: str
    reports: dict[str, MethodReport]
    executions: int = 0
    reverted: int = 0
    failures: list[ContainmentFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All methods verified clean and no containment violations."""
        return not self.failures and all(r.ok for r in self.reports.values())


def sample_args(arity: int, rng: random.Random) -> tuple[int, ...]:
    """One random argument vector: ids and amounts, interleaved odds."""
    values: list[int] = []
    for _ in range(arity):
        if rng.random() < 0.5:
            values.append(rng.randrange(_SWEEP_IDS))
        else:
            values.append(rng.randrange(_SWEEP_AMOUNT))
    return tuple(values)


def run_containment_sweep(
    contract: ShippedContract,
    *,
    sweeps: int = 40,
    seed: int = 0,
) -> SweepResult:
    """Execute each method ``sweeps`` times and check static ⊇ dynamic."""
    reports = verify_shipped_contract(contract)
    bytecode = {
        method: assemble_with_debug(source).code
        for method, source in contract.assembly.items()
    }
    result = SweepResult(contract=contract.name, reports=reports)
    vm = SVM()
    for method in sorted(bytecode):
        report = reports[method]
        arity = contract.arities[method]
        rng = random.Random((seed, contract.name, method).__repr__())
        for _ in range(sweeps):
            args = sample_args(arity, rng)
            caller = rng.randrange(_SWEEP_IDS)
            storage = LoggedStorage(lambda _address: _DEFAULT_BALANCE)
            context = ExecutionContext(
                storage=storage,
                args=args,
                caller=caller,
                gas_limit=_SWEEP_GAS_LIMIT,
                key_renderer=contract.key_renderer,
            )
            receipt = vm.execute(bytecode[method], context)
            result.executions += 1
            if receipt.error == "reverted":
                result.reverted += 1
            containment = check_containment(
                report, receipt.rwset, args, caller, contract.key_renderer
            )
            if not containment.ok:
                result.failures.append(
                    ContainmentFailure(
                        contract=contract.name,
                        method=method,
                        args=args,
                        caller=caller,
                        result=containment,
                    )
                )
    return result
