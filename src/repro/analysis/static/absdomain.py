"""Abstract value domain for the SVM verifier.

The verifier interprets bytecode over an abstract stack whose slots are
:class:`AbsVal` terms — a constant-propagation lattice extended with
*symbolic expressions* over the execution inputs (``ARG i``/``CALLER``).
Symbolic terms are what make static read/write **key** sets possible:
SmallBank computes its checking key as ``arg0 + 2**32`` and the token
contract derives allowance keys from ``caller``, so a purely constant
domain would collapse every interesting key to ⊤.

The lattice (ordered by precision)::

    Const(v)   --  exactly the 64-bit word v
    Arg(i), Caller, BinExpr, NotExpr  -- symbolic over the inputs
    TOP        --  any word (SLOAD results, widened expressions)

Join is equality-based: ``a ⊔ b = a`` when structurally equal, ``TOP``
otherwise — each slot can only coarsen once, so fixpoints terminate.
``evaluate`` replays a symbolic term under concrete inputs with exactly
the interpreter's modular semantics (wrap-around, ``DIV``/``MOD`` by
zero yielding zero), which is what lets a symbolic key set be checked
for containment against a concrete :class:`~repro.vm.logger.LoggedStorage`
observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.opcodes import WORD_MASK, Op

_MAX_EXPR_NODES = 32
"""Symbolic terms wider than this widen to TOP (keeps states small)."""


class AbsVal:
    """Base class for abstract words; concrete subclasses are frozen."""

    __slots__ = ()


@dataclass(frozen=True)
class Top(AbsVal):
    """Any 64-bit word (unknown)."""

    def __repr__(self) -> str:
        return "⊤"


TOP = Top()


@dataclass(frozen=True)
class Const(AbsVal):
    """Exactly one 64-bit word."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Arg(AbsVal):
    """The transaction argument at a fixed index."""

    index: int

    def __repr__(self) -> str:
        return f"arg{self.index}"


@dataclass(frozen=True)
class Caller(AbsVal):
    """The transaction sender id (the ``CALLER`` opcode)."""

    def __repr__(self) -> str:
        return "caller"


@dataclass(frozen=True)
class Load(AbsVal):
    """The word an ``SLOAD`` at ``pc`` read from storage key ``key``.

    Only produced in the interpreter's load-tracking mode (the default
    mode widens loads straight to ⊤): the delta classifier needs to see
    *which* stored values flow into which store operands and branch
    conditions.  ``evaluate`` cannot concretize a ``Load`` — its value
    lives in storage, not in the inputs — so any term containing one
    evaluates to ``None``.
    """

    key: AbsVal
    pc: int

    def __repr__(self) -> str:
        return f"load[{self.pc}]({self.key!r})"


@dataclass(frozen=True)
class BinExpr(AbsVal):
    """A binary operation over two abstract words (``left op right``)."""

    op: Op
    left: AbsVal
    right: AbsVal

    def __repr__(self) -> str:
        symbol = _OP_SYMBOLS.get(self.op, self.op.name)
        return f"({self.left!r} {symbol} {self.right!r})"


@dataclass(frozen=True)
class NotExpr(AbsVal):
    """Bitwise complement of an abstract word."""

    operand: AbsVal

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


_OP_SYMBOLS = {
    Op.ADD: "+",
    Op.SUB: "-",
    Op.MUL: "*",
    Op.DIV: "//",
    Op.MOD: "%",
    Op.AND: "&",
    Op.OR: "|",
    Op.LT: "<",
    Op.GT: ">",
    Op.EQ: "==",
}


def _node_count(value: AbsVal) -> int:
    if isinstance(value, BinExpr):
        return 1 + _node_count(value.left) + _node_count(value.right)
    if isinstance(value, NotExpr):
        return 1 + _node_count(value.operand)
    if isinstance(value, Load):
        return 1 + _node_count(value.key)
    return 1


def _fold(op: Op, a: int, b: int) -> int:
    """Concrete binary semantics, byte-identical to the interpreter."""
    if op is Op.ADD:
        return (a + b) & WORD_MASK
    if op is Op.SUB:
        return (a - b) & WORD_MASK
    if op is Op.MUL:
        return (a * b) & WORD_MASK
    if op is Op.DIV:
        return 0 if b == 0 else a // b
    if op is Op.MOD:
        return 0 if b == 0 else a % b
    if op is Op.LT:
        return 1 if a < b else 0
    if op is Op.GT:
        return 1 if a > b else 0
    if op is Op.EQ:
        return 1 if a == b else 0
    if op is Op.AND:
        return a & b
    if op is Op.OR:
        return a | b
    raise ValueError(f"not a binary opcode: {op.name}")


def apply_binary(op: Op, left: AbsVal, right: AbsVal) -> AbsVal:
    """Abstract transfer for a binary opcode (``left`` is the deeper slot)."""
    if isinstance(left, Const) and isinstance(right, Const):
        return Const(_fold(op, left.value, right.value))
    if isinstance(left, Top) or isinstance(right, Top):
        return TOP
    expr = BinExpr(op, left, right)
    if _node_count(expr) > _MAX_EXPR_NODES:
        return TOP
    return expr


def apply_not(operand: AbsVal) -> AbsVal:
    """Abstract transfer for ``NOT``."""
    if isinstance(operand, Const):
        return Const(operand.value ^ WORD_MASK)
    if isinstance(operand, Top):
        return TOP
    expr = NotExpr(operand)
    if _node_count(expr) > _MAX_EXPR_NODES:
        return TOP
    return expr


def apply_iszero(operand: AbsVal) -> AbsVal:
    """Abstract transfer for ``ISZERO`` (non-constant operands widen)."""
    if isinstance(operand, Const):
        return Const(1 if operand.value == 0 else 0)
    return TOP


def join(a: AbsVal, b: AbsVal) -> AbsVal:
    """Lattice join: equal terms stay, differing terms widen to TOP."""
    if a == b:
        return a
    return TOP


def evaluate(value: AbsVal, args: tuple[int, ...], caller: int) -> int | None:
    """Concretize a term under inputs; ``None`` when it contains TOP.

    Mirrors the interpreter exactly: arguments and the caller are
    reduced modulo 2**64 on use, and every operation wraps.
    """
    if isinstance(value, Const):
        return value.value
    if isinstance(value, Arg):
        if value.index >= len(args):
            return None
        return args[value.index] & WORD_MASK
    if isinstance(value, Caller):
        return caller & WORD_MASK
    if isinstance(value, BinExpr):
        left = evaluate(value.left, args, caller)
        right = evaluate(value.right, args, caller)
        if left is None or right is None:
            return None
        return _fold(value.op, left, right)
    if isinstance(value, NotExpr):
        operand = evaluate(value.operand, args, caller)
        if operand is None:
            return None
        return operand ^ WORD_MASK
    return None  # TOP


def is_exact(value: AbsVal) -> bool:
    """Whether a term concretizes to exactly one key per input vector."""
    return not isinstance(value, Top)
