"""Static analysis: SVM bytecode verification and determinism linting.

Two engines with one goal — catch correctness hazards *before* they
reach the scheduler:

* the **bytecode verifier** (:mod:`verifier`) decodes SVM bytecode into
  a CFG, abstract-interprets it over a constant/symbolic stack lattice,
  proves stack and jump safety, bounds gas on acyclic paths, and derives
  the static over-approximate read/write key set whose containment of
  every runtime :class:`~repro.vm.logger.LoggedStorage` observation is
  Nezha's soundness obligation;
* the **determinism linter** (:mod:`lint`) walks consensus-critical
  Python ASTs for nondeterminism and process-pool pickling hazards.

See ``docs/static-analysis.md`` for the abstract domain, the soundness
claim, and the lint rule catalog.
"""

from repro.analysis.static.absdomain import (
    TOP,
    AbsVal,
    Arg,
    BinExpr,
    Caller,
    Const,
    Load,
    NotExpr,
    Top,
    evaluate,
)
from repro.analysis.static.absint import AbstractResult, Finding, interpret
from repro.analysis.static.cfg import CFG, BasicBlock, build_cfg, gas_bound
from repro.analysis.static.deltas import (
    EMPTY_CLASSIFICATION,
    DeltaClassification,
    DeltaSite,
    classify_bytecode,
    classify_contract,
    resolve_sites,
)
from repro.analysis.static.contracts import (
    ContainmentFailure,
    ShippedContract,
    SweepResult,
    run_containment_sweep,
    shipped_contracts,
    verify_shipped_contract,
)
from repro.analysis.static.lint import (
    DEFAULT_LINT_PACKAGES,
    RULES,
    LintFinding,
    default_lint_paths,
    lint_paths,
    lint_source,
)
from repro.analysis.static.verifier import (
    ContainmentResult,
    MethodReport,
    check_containment,
    verify_bytecode,
    verify_contract,
)

__all__ = [
    "AbsVal",
    "AbstractResult",
    "Arg",
    "BasicBlock",
    "BinExpr",
    "CFG",
    "Caller",
    "ContainmentFailure",
    "ContainmentResult",
    "Const",
    "DEFAULT_LINT_PACKAGES",
    "DeltaClassification",
    "DeltaSite",
    "EMPTY_CLASSIFICATION",
    "Finding",
    "LintFinding",
    "Load",
    "MethodReport",
    "NotExpr",
    "RULES",
    "ShippedContract",
    "SweepResult",
    "TOP",
    "Top",
    "build_cfg",
    "check_containment",
    "classify_bytecode",
    "classify_contract",
    "default_lint_paths",
    "evaluate",
    "gas_bound",
    "interpret",
    "resolve_sites",
    "lint_paths",
    "lint_source",
    "run_containment_sweep",
    "shipped_contracts",
    "verify_bytecode",
    "verify_contract",
    "verify_shipped_contract",
]
