"""Rendering for static-analysis results: human tables and JSON.

The CLI (``repro-nezha analyze``) and the CI gate share these renderers
so the machine-readable report is always generated from the same data
the human-readable one is.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.analysis.static.contracts import SweepResult
from repro.analysis.static.lint import RULES, LintFinding


def bytecode_report_json(
    sweeps: Sequence[SweepResult], *, containment_checked: bool
) -> str:
    """The ``analyze bytecode`` JSON document."""
    payload: dict[str, object] = {
        "report": "svm-bytecode-verifier",
        "ok": all(s.ok for s in sweeps),
        "containment_checked": containment_checked,
        "contracts": [
            {
                "contract": sweep.contract,
                "ok": sweep.ok,
                "executions": sweep.executions,
                "reverted": sweep.reverted,
                "containment_failures": [f.to_json() for f in sweep.failures],
                "methods": [
                    sweep.reports[m].to_json() for m in sorted(sweep.reports)
                ],
            }
            for sweep in sweeps
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def bytecode_report_text(
    sweeps: Sequence[SweepResult], *, containment_checked: bool
) -> str:
    """Human-readable summary of the verifier run."""
    lines: list[str] = []
    for sweep in sweeps:
        lines.append(f"contract {sweep.contract}:")
        for method in sorted(sweep.reports):
            report = sweep.reports[method]
            verdict = "ok" if report.ok else "REJECTED"
            gas = "unbounded" if report.gas_unbounded else str(report.gas_bound)
            reads = ", ".join(repr(k) for k in report.static_reads) or "-"
            writes = ", ".join(repr(k) for k in report.static_writes) or "-"
            lines.append(
                f"  {method}: {verdict}  blocks={report.block_count} "
                f"gas<={gas} stack<={report.max_stack_depth}"
            )
            lines.append(f"    reads:  {reads}")
            lines.append(f"    writes: {writes}")
            for finding in report.findings:
                where = f"pc {finding.pc}" if finding.pc is not None else "-"
                if finding.line is not None:
                    where += f" (line {finding.line})"
                lines.append(
                    f"    {finding.code} {finding.severity} @ {where}: "
                    f"{finding.message}"
                )
        if containment_checked:
            status = "ok" if not sweep.failures else "VIOLATED"
            lines.append(
                f"  containment (static ⊇ dynamic): {status} over "
                f"{sweep.executions} executions ({sweep.reverted} reverted)"
            )
            for failure in sweep.failures:
                lines.append(
                    f"    {failure.method}{failure.args} caller={failure.caller}: "
                    f"missing reads {sorted(failure.result.missing_reads)} "
                    f"writes {sorted(failure.result.missing_writes)}"
                )
    return "\n".join(lines)


def lint_report_json(
    findings: Sequence[LintFinding], *, paths: Sequence[str]
) -> str:
    """The ``analyze lint`` JSON document."""
    payload: dict[str, object] = {
        "report": "determinism-lint",
        "ok": not findings,
        "paths": list(paths),
        "rules": dict(RULES),
        "findings": [finding.to_json() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def lint_report_text(
    findings: Sequence[LintFinding], *, paths: Sequence[str]
) -> str:
    """Human-readable lint summary."""
    if not findings:
        scanned = ", ".join(paths)
        return f"determinism lint clean over {scanned}"
    lines = [finding.render() for finding in findings]
    counts: Mapping[str, int] = _count_by_rule(findings)
    summary = ", ".join(f"{rule}: {count}" for rule, count in sorted(counts.items()))
    lines.append(f"{len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def _count_by_rule(findings: Sequence[LintFinding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts
