"""Statistical helpers for benchmark reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of repeated measurements."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Summary":
        """Summarise a non-empty sample list."""
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        count = len(ordered)
        mean = sum(ordered) / count
        variance = sum((x - mean) ** 2 for x in ordered) / count
        return cls(
            count=count,
            mean=mean,
            stdev=math.sqrt(variance),
            minimum=ordered[0],
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            maximum=ordered[-1],
        )


def percentile(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    return baseline / improved if improved else math.inf


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 when empty)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))
